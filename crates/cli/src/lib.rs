//! Implementation of the `drtopk` command-line tool.
//!
//! All command logic lives in this library so it is unit-testable; the
//! binary (`src/main.rs`) only forwards `std::env::args` and maps errors
//! to exit codes.
//!
//! ```text
//! drtopk generate --dist ant --dims 4 --n 20000 --seed 7 --out data.drt
//! drtopk import   --csv hotels.csv --columns 1:low,2:high,3:low --out data.drt
//! drtopk build    --data data.drt --out index.drt [--variant dl+|dl|dg|dg+] [--parallel] [--threads T] [--stats]
//! drtopk stats    --index index.drt
//! drtopk query    --index index.drt --weights 0.3,0.3,0.4 --k 10
//! drtopk batch    --index index.drt --weights-file queries.txt --k 10 [--threads T]
//! drtopk recover  --dir store/ [--variant dl+|dl|dg|dg+] [--checkpoint]
//! drtopk wal      --dir store/
//! drtopk serve    --index index.drt [--addr HOST:PORT] [--workers W] [--cache]
//! drtopk serve    --shard-dir store/ --shard-id 0 --addr HOST:PORT
//! drtopk serve    --topology cluster.topo --addr HOST:PORT
//! drtopk topology check cluster.topo
//! drtopk health   --connect HOST:PORT
//! drtopk query    --connect HOST:PORT --weights 0.3,0.3,0.4 --k 10
//! drtopk drain    --connect HOST:PORT
//! ```
//!
//! Query and batch accept `--deadline-ms` / `--max-cost` budgets; a
//! tripped budget exits with code 4 unless `--partial` accepts the
//! truncated answer prefix. Corrupt persisted data exits with code 3.
//! `serve` / `query --connect` speak the wire protocol documented in
//! `PROTOCOL.md`; operational guidance lives in `OPERATIONS.md`.

use drtopk_common::{
    relation_from_csv, ColumnSpec, Direction, Distribution, Weights, WorkloadSpec,
    ZipfWeightWorkload,
};
use drtopk_core::{BatchExecutor, DlOptions, DualLayerIndex, ZeroMode};
use drtopk_storage::{
    load_index, load_relation, read_wal, save_index, save_relation, DurableDynamicIndex,
    DurableOptions, WalRecord,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A CLI failure: message for stderr plus the process exit code.
///
/// Exit codes are part of the tool's contract (scripts branch on them):
/// `1` generic runtime failure, `2` usage error, `3` corrupt or
/// unreadable persisted data, `4` a query budget tripped and `--partial`
/// was not given.
#[derive(Debug)]
pub struct CliError {
    pub message: String,
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }

    fn runtime(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }

    fn corrupt(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 3,
        }
    }

    fn budget(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 4,
        }
    }
}

impl From<drtopk_common::Error> for CliError {
    fn from(e: drtopk_common::Error) -> Self {
        match e {
            drtopk_common::Error::Corrupt(_) => CliError::corrupt(e.to_string()),
            _ => CliError::runtime(e.to_string()),
        }
    }
}

impl From<drtopk_storage::FormatError> for CliError {
    fn from(e: drtopk_storage::FormatError) -> Self {
        CliError::from(drtopk_common::Error::from(e))
    }
}

/// Parsed `--flag value` arguments after the subcommand.
struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(CliError::usage(format!(
                    "unexpected positional argument {a:?}"
                )));
            };
            // Boolean switches take no value.
            if name == "parallel"
                || name == "stats"
                || name == "partial"
                || name == "checkpoint"
                || name == "cache"
            {
                switches.push(name.to_string());
                i += 1;
                continue;
            }
            const KNOWN: &[&str] = &[
                "dist",
                "dims",
                "n",
                "seed",
                "out",
                "csv",
                "columns",
                "data",
                "variant",
                "clusters",
                "index",
                "weights",
                "weights-file",
                "k",
                "threads",
                "format",
                "probe",
                "dir",
                "deadline-ms",
                "max-cost",
                "connect",
                "addr",
                "workers",
                "batch-max",
                "batch-window-us",
                "queue-depth",
                "duration-s",
                "shards",
                "shard-dir",
                "shard",
                "shard-id",
                "topology",
                "connect-retries",
                "connect-backoff-ms",
            ];
            if !KNOWN.contains(&name) {
                return Err(CliError::usage(format!("unknown flag --{name}")));
            }
            let Some(v) = args.get(i + 1) else {
                return Err(CliError::usage(format!("--{name} requires a value")));
            };
            values.insert(name.to_string(), v.clone());
            i += 2;
        }
        Ok(Flags { values, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::usage(format!("missing required --{name}")))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Entry point used by the binary and by tests. Returns the text that
/// should go to stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    if cmd == "topology" {
        // `topology check FILE` takes a positional file, unlike every
        // other command — validate before the flag parser rejects it.
        return cmd_topology(&args[1..]);
    }
    let flags = Flags::parse(&args[1..])?;
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "import" => cmd_import(&flags),
        "build" => cmd_build(&flags),
        "stats" => cmd_stats(&flags),
        "query" => cmd_query(&flags),
        "batch" => cmd_batch(&flags),
        "recover" => cmd_recover(&flags),
        "wal" => cmd_wal(&flags),
        "serve" => cmd_serve(&flags),
        "drain" => cmd_drain(&flags),
        "health" => cmd_health(&flags),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

fn usage() -> String {
    "\
drtopk — dual-resolution layer indexing for top-k queries

commands:
  generate  --dist ind|ant|cor --dims D --n N [--seed S] --out FILE
  import    --csv FILE --columns IDX:low|high[,...] --out FILE
  build     --data FILE --out FILE [--variant dl+|dl|dg|dg+] [--parallel]
            [--threads T] [--stats]
  stats     --index FILE [--format text|json|prom] [--probe N] [--seed S]
            [--cache]
  query     --index FILE --weights W1,W2,... [--k K]
            [--deadline-ms MS] [--max-cost C] [--partial]
  query     --connect HOST:PORT --weights W1,W2,... [--k K]
            [--deadline-ms MS] [--max-cost C] [--partial]
            [--connect-retries R] [--connect-backoff-ms MS]
  batch     --index FILE --weights-file FILE [--k K] [--threads T]
            [--deadline-ms MS] [--max-cost C] [--partial] [--cache]
  recover   --dir DIR [--shard N] [--variant dl+|dl|dg|dg+] [--checkpoint]
  wal       --dir DIR
  serve     --index FILE [--addr HOST:PORT] [--workers W] [--batch-max B]
            [--batch-window-us US] [--queue-depth Q] [--cache]
            [--duration-s S]
  serve     --shard-dir DIR [--shards P --data FILE] [--addr HOST:PORT]
            [--workers W] [--batch-max B] [--batch-window-us US]
            [--queue-depth Q] [--duration-s S]
  serve     --shard-dir DIR --shard-id N [--addr HOST:PORT] [...]
  serve     --topology FILE [--addr HOST:PORT] [...]
  topology  check FILE
  health    --connect HOST:PORT
  drain     --connect HOST:PORT
  help

serve listens on --addr (default 127.0.0.1:7071; port 0 picks a free
port) and answers the wire protocol in PROTOCOL.md plus HTTP GET
/metrics on the same port. With --shard-dir it serves a sharded durable
deployment (creating it from --data when the directory is empty); a
shard that fails recovery is served *around* with degraded coverage —
see OPERATIONS.md for the shard runbook. With --shard-dir --shard-id N
it serves exactly one shard's directory as a *shard node*; with
--topology FILE it is the *router node* of a multi-node deployment,
fanning out to the shard nodes the file names (OPERATIONS.md §10).
health summarizes a node's shard/endpoint health from its metrics and
exits non-zero when any shard is Down.

exit codes: 0 ok, 1 runtime error, 2 usage, 3 corrupt data,
            4 budget tripped or coverage degraded without --partial
"
    .to_string()
}

/// Builds the optional query budget from `--deadline-ms` / `--max-cost`.
/// `None` when neither flag was given (use the unguarded fast path).
fn parse_budget(f: &Flags) -> Result<Option<drtopk_core::QueryBudget>, CliError> {
    let deadline_ms: u64 = f.parse_num("deadline-ms", 0)?;
    let max_cost: u64 = f.parse_num("max-cost", 0)?;
    if f.get("deadline-ms").is_none() && f.get("max-cost").is_none() {
        return Ok(None);
    }
    if f.get("deadline-ms").is_some() && deadline_ms == 0 {
        return Err(CliError::usage("--deadline-ms must be > 0".to_string()));
    }
    if f.get("max-cost").is_some() && max_cost == 0 {
        return Err(CliError::usage("--max-cost must be > 0".to_string()));
    }
    let mut budget = drtopk_core::QueryBudget::unlimited();
    if deadline_ms > 0 {
        budget = budget.with_timeout(std::time::Duration::from_millis(deadline_ms));
    }
    if max_cost > 0 {
        budget = budget.with_max_cost(max_cost);
    }
    Ok(Some(budget))
}

fn cmd_generate(f: &Flags) -> Result<String, CliError> {
    let dist = match f.require("dist")? {
        "ind" => Distribution::Independent,
        "ant" => Distribution::AntiCorrelated,
        "cor" => Distribution::Correlated,
        other => {
            return Err(CliError::usage(format!(
                "--dist must be ind|ant|cor, got {other}"
            )))
        }
    };
    let dims: usize = f.parse_num("dims", 0)?;
    let n: usize = f.parse_num("n", 0)?;
    if dims < 2 || n == 0 {
        return Err(CliError::usage(
            "--dims (>= 2) and --n (> 0) are required".to_string(),
        ));
    }
    let seed: u64 = f.parse_num("seed", 42)?;
    let out = PathBuf::from(f.require("out")?);
    let rel = WorkloadSpec::new(dist, dims, n, seed).generate();
    save_relation(&rel, &out).map_err(|e| CliError::runtime(e.to_string()))?;
    Ok(format!(
        "wrote {} tuples (d={dims}, {}) to {}\n",
        rel.len(),
        dist.code(),
        out.display()
    ))
}

fn cmd_import(f: &Flags) -> Result<String, CliError> {
    let csv_path = PathBuf::from(f.require("csv")?);
    let columns = parse_columns(f.require("columns")?)?;
    let out = PathBuf::from(f.require("out")?);
    let file = std::fs::File::open(&csv_path)
        .map_err(|e| CliError::runtime(format!("{}: {e}", csv_path.display())))?;
    let (rel, _norm) = relation_from_csv(std::io::BufReader::new(file), &columns)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    save_relation(&rel, &out).map_err(|e| CliError::runtime(e.to_string()))?;
    Ok(format!(
        "imported {} tuples × {} attributes into {}\n",
        rel.len(),
        rel.dims(),
        out.display()
    ))
}

/// Parses `1:low,2:high,4:low` into column specs.
fn parse_columns(spec: &str) -> Result<Vec<ColumnSpec>, CliError> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (col, dir) = part
            .split_once(':')
            .ok_or_else(|| CliError::usage(format!("column spec {part:?} must be IDX:low|high")))?;
        let column: usize = col
            .trim()
            .parse()
            .map_err(|_| CliError::usage(format!("bad column index {col:?}")))?;
        let direction = match dir.trim() {
            "low" => Direction::LowerIsBetter,
            "high" => Direction::HigherIsBetter,
            other => {
                return Err(CliError::usage(format!(
                    "direction must be low|high, got {other}"
                )))
            }
        };
        out.push(ColumnSpec { column, direction });
    }
    if out.is_empty() {
        return Err(CliError::usage(
            "--columns must select at least one column".to_string(),
        ));
    }
    Ok(out)
}

fn variant_options(name: &str) -> Result<DlOptions, CliError> {
    Ok(match name {
        "dl+" => DlOptions::dl_plus(),
        "dl" => DlOptions::dl(),
        "dg" => DlOptions::dg(),
        "dg+" => DlOptions::dg_plus(),
        other => {
            return Err(CliError::usage(format!(
                "--variant must be dl+|dl|dg|dg+, got {other}"
            )))
        }
    })
}

fn cmd_build(f: &Flags) -> Result<String, CliError> {
    let data = PathBuf::from(f.require("data")?);
    let out = PathBuf::from(f.require("out")?);
    let mut opts = variant_options(f.get("variant").unwrap_or("dl+"))?;
    opts.parallel = f.has("parallel");
    opts.build_threads = f.parse_num("threads", 0)?;
    if let Some(c) = f.get("clusters") {
        let clusters: usize = c
            .parse()
            .map_err(|_| CliError::usage(format!("--clusters: bad value {c:?}")))?;
        opts.zero = ZeroMode::Clustered { clusters };
    }
    let rel = load_relation(&data).map_err(CliError::from)?;
    let (idx, profile) = DualLayerIndex::build_with_profile(&rel, opts);
    save_index(&idx, &out).map_err(|e| CliError::runtime(e.to_string()))?;
    let s = idx.stats();
    let mut text = format!(
        "built in {:.2}s: {} coarse / {} fine layers, {} ∀-edges, {} ∃-edges, {} pseudo\nwrote {}\n",
        profile.total_seconds,
        s.coarse_layers,
        s.fine_layers,
        s.forall_edges,
        s.exists_edges,
        s.pseudo_tuples,
        out.display()
    );
    if f.has("stats") {
        let _ = writeln!(text, "{profile}");
    }
    Ok(text)
}

fn stats_text(idx: &DualLayerIndex, path: &Path) -> String {
    let s = idx.stats();
    let mut out = String::new();
    let _ = writeln!(out, "index {}", path.display());
    let _ = writeln!(out, "  tuples            {}", s.n);
    let _ = writeln!(out, "  dimensionality    {}", s.dims);
    let _ = writeln!(out, "  coarse layers     {}", s.coarse_layers);
    let _ = writeln!(out, "  fine sublayers    {}", s.fine_layers);
    let _ = writeln!(out, "  ∀-dominance edges {}", s.forall_edges);
    let _ = writeln!(out, "  ∃-dominance edges {}", s.exists_edges);
    let _ = writeln!(out, "  pseudo-tuples     {}", s.pseudo_tuples);
    let _ = writeln!(out, "  first layer |L1|  {}", s.first_layer_size);
    let _ = writeln!(out, "  first fine |L11|  {}", s.first_fine_size);
    let _ = writeln!(out, "  query seeds       {}", s.seeds);
    out
}

/// Drives `n` seeded top-k queries through `idx` so the metrics registry
/// has live data to export (an offline stand-in for scraping a serving
/// process). With a cache the probes draw from a small Zipf-skewed weight
/// pool — repeated traffic, the shape the cache exists for — so the cache
/// counters carry signal; without one they are independent random weights.
fn run_probes(idx: &DualLayerIndex, n: usize, seed: u64, cache: Option<&drtopk_core::ResultCache>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut scratch = drtopk_core::QueryScratch::for_index(idx);
    match cache {
        Some(c) => {
            let pool = 16.min(n.max(1));
            for w in ZipfWeightWorkload::new(idx.dims(), pool, n, 1.0, seed).generate() {
                c.topk_with_scratch(idx, &w, 10, &mut scratch);
            }
        }
        None => {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..n {
                let w = Weights::random(idx.dims(), &mut rng);
                idx.topk_with_scratch(&w, 10, &mut scratch);
            }
        }
    }
}

/// The structural index gauges as `(name, help, value)` rows — shared by
/// the JSON and Prometheus stats renderers.
fn index_gauge_rows(idx: &DualLayerIndex) -> Vec<(&'static str, &'static str, u64)> {
    let s = idx.stats();
    vec![
        ("tuples", "Tuples in the indexed relation", s.n as u64),
        ("dims", "Attribute dimensionality", s.dims as u64),
        ("coarse_layers", "Coarse layers", s.coarse_layers as u64),
        ("fine_sublayers", "Fine sublayers", s.fine_layers as u64),
        (
            "forall_edges",
            "Forall-dominance edges",
            s.forall_edges as u64,
        ),
        (
            "exists_edges",
            "Exists-dominance edges",
            s.exists_edges as u64,
        ),
        (
            "pseudo_tuples",
            "Zero-layer pseudo-tuples",
            s.pseudo_tuples as u64,
        ),
        (
            "first_layer_size",
            "Tuples in L1",
            s.first_layer_size as u64,
        ),
        ("first_fine_size", "Tuples in L11", s.first_fine_size as u64),
        ("query_seeds", "Initially-free query seeds", s.seeds as u64),
    ]
}

fn stats_json(idx: &DualLayerIndex, snap: &drtopk_obs::MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"index\": {\n");
    let rows = index_gauge_rows(idx);
    for (i, (name, _help, value)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value}{comma}");
    }
    let _ = write!(
        out,
        "  }},\n  \"metrics\": {}\n}}\n",
        snap.to_json_indented(1)
    );
    out
}

fn stats_prometheus(idx: &DualLayerIndex, snap: &drtopk_obs::MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in index_gauge_rows(idx) {
        drtopk_obs::snapshot::prom_gauge(
            &mut out,
            &format!("drtopk_index_{name}"),
            help,
            value as f64,
        );
    }
    out.push_str(&snap.to_prometheus());
    out
}

fn cmd_stats(f: &Flags) -> Result<String, CliError> {
    let path = PathBuf::from(f.require("index")?);
    let idx = load_index(&path).map_err(CliError::from)?;
    let probes: usize = f.parse_num("probe", 0)?;
    if probes > 0 {
        let cache = f.has("cache").then(drtopk_core::ResultCache::default);
        run_probes(&idx, probes, f.parse_num("seed", 42)?, cache.as_ref());
    }
    let snap = drtopk_obs::metrics().snapshot();
    match f.get("format").unwrap_or("text") {
        "text" => {
            let mut out = stats_text(&idx, &path);
            if snap.queries > 0 {
                let _ = writeln!(out, "query metrics (this process)");
                let _ = writeln!(out, "  queries           {}", snap.queries);
                let _ = writeln!(out, "  tuples evaluated  {}", snap.tuples_evaluated);
                let _ = writeln!(out, "  pseudo evaluated  {}", snap.pseudo_evaluated);
                let _ = writeln!(
                    out,
                    "  cost p50/p95/p99  {:.0} / {:.0} / {:.0}",
                    snap.query_cost.p50(),
                    snap.query_cost.p95(),
                    snap.query_cost.p99()
                );
                let _ = writeln!(
                    out,
                    "  latency p50/p99   {:.1} µs / {:.1} µs",
                    snap.query_latency_ns.p50() / 1e3,
                    snap.query_latency_ns.p99() / 1e3
                );
                if snap.scratch_touched.count() > 0 {
                    let _ = writeln!(
                        out,
                        "  scratch touched   p50 {:.0} / p99 {:.0} nodes per query",
                        snap.scratch_touched.p50(),
                        snap.scratch_touched.p99()
                    );
                }
                if snap.kernel_block_tuples.count() > 0 {
                    let _ = writeln!(
                        out,
                        "  kernel blocks     {} scored, mean {:.1} tuples each",
                        snap.kernel_block_tuples.count(),
                        snap.kernel_block_tuples.mean()
                    );
                }
            }
            let cache_lookups = snap.cache_hits + snap.cache_misses;
            if cache_lookups > 0 {
                let _ = writeln!(out, "result cache (this process)");
                let _ = writeln!(
                    out,
                    "  hits / misses     {} / {} ({:.1}% hit rate)",
                    snap.cache_hits,
                    snap.cache_misses,
                    100.0 * snap.cache_hits as f64 / cache_lookups as f64
                );
                let _ = writeln!(out, "  cert rejects      {}", snap.cache_cert_rejects);
                let _ = writeln!(out, "  invalidations     {}", snap.cache_invalidations);
            }
            Ok(out)
        }
        "json" => Ok(stats_json(&idx, &snap)),
        "prom" => Ok(stats_prometheus(&idx, &snap)),
        other => Err(CliError::usage(format!(
            "--format must be text|json|prom, got {other}"
        ))),
    }
}

fn cmd_query(f: &Flags) -> Result<String, CliError> {
    let raw: Vec<f64> = f
        .require("weights")?
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| CliError::usage("--weights must be comma-separated numbers".to_string()))?;
    let k: usize = f.parse_num("k", 10)?;
    if let Some(addr) = f.get("connect") {
        return query_over_network(f, addr, &raw, k);
    }
    let path = PathBuf::from(f.require("index")?);
    let idx = load_index(&path).map_err(CliError::from)?;
    let w = Weights::new(raw).map_err(|e| CliError::usage(e.to_string()))?;
    if w.dims() != idx.dims() {
        return Err(CliError::usage(format!(
            "index has {} attributes but {} weights were given",
            idx.dims(),
            w.dims()
        )));
    }
    let budget = parse_budget(f)?;
    let t0 = std::time::Instant::now();
    let (ids, cost, truncated) = match &budget {
        None => {
            let res = idx.topk(&w, k);
            (res.ids, res.cost, None)
        }
        Some(b) => {
            let res = idx.topk_guarded(&w, k, b);
            (res.ids, res.cost, res.truncated)
        }
    };
    let micros = t0.elapsed().as_micros();
    if let Some(reason) = truncated {
        if !f.has("partial") {
            return Err(CliError::budget(format!(
                "query stopped after {} of {k} answers: {reason} \
                 (pass --partial to accept the prefix)",
                ids.len()
            )));
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "rank  tuple        score  attributes");
    for (rank, &t) in ids.iter().enumerate() {
        let tv = idx.relation().tuple(t);
        let attrs: Vec<String> = tv.iter().map(|x| format!("{x:.4}")).collect();
        let _ = writeln!(
            out,
            "{:>4}  {:>6} {:>11.6}  [{}]",
            rank + 1,
            t,
            w.score(tv),
            attrs.join(", ")
        );
    }
    if let Some(reason) = truncated {
        let _ = writeln!(
            out,
            "TRUNCATED after {} of {k} answers: {reason}",
            ids.len()
        );
    }
    let _ = writeln!(
        out,
        "evaluated {} of {} tuples ({} pseudo) in {micros} µs",
        cost.total(),
        idx.len(),
        cost.pseudo_evaluated
    );
    Ok(out)
}

/// Maps a server-side failure onto the CLI exit-code contract: protocol
/// rejections (`BadRequest`) are usage errors (code 2), everything else
/// — overload, drain, transport loss — is a runtime failure (code 1).
fn client_error(e: drtopk_server::ClientError) -> CliError {
    match &e {
        drtopk_server::ClientError::Server { code, .. }
            if *code == drtopk_server::ErrorCode::BadRequest =>
        {
            CliError::usage(e.to_string())
        }
        _ => CliError::runtime(e.to_string()),
    }
}

/// Human-readable reason for a TOPK `truncated` flag (PROTOCOL.md §4.1).
fn truncation_reason(flag: u8) -> &'static str {
    match flag {
        1 => "deadline expired",
        2 => "cost budget exhausted",
        3 => "cancelled",
        _ => "truncated",
    }
}

/// Connects per the CLI's reconnect policy: `--connect-retries` bounded
/// re-attempts (default 3) after transient connect/hello failures, with
/// jittered exponential backoff from `--connect-backoff-ms` (default
/// 100). `--connect-retries 0` restores single-attempt behavior. The
/// exit-code contract is unchanged: a connection that never comes up is
/// still a runtime error (code 1).
fn connect_with_policy(f: &Flags, addr: &str) -> Result<drtopk_server::Client, CliError> {
    let retries: u32 = f.parse_num("connect-retries", 3)?;
    let backoff_ms: u64 = f.parse_num("connect-backoff-ms", 100)?;
    drtopk_server::Client::connect_with_retry(
        addr,
        retries,
        std::time::Duration::from_millis(backoff_ms),
    )
    .map_err(|e| CliError::runtime(format!("{addr}: {e}")))
}

/// `query --connect HOST:PORT`: ship the raw weight vector to a running
/// `drtopk serve` instance instead of loading an index locally. The
/// server normalises weights exactly as the in-process path does, so the
/// answer ids are bit-identical to `query --index` on the same data.
fn query_over_network(f: &Flags, addr: &str, raw: &[f64], k: usize) -> Result<String, CliError> {
    let deadline_ms: u64 = f.parse_num("deadline-ms", 0)?;
    let max_cost: u64 = f.parse_num("max-cost", 0)?;
    let deadline_ms = u32::try_from(deadline_ms)
        .map_err(|_| CliError::usage("--deadline-ms too large for the wire format"))?;
    let k32 = u32::try_from(k).map_err(|_| CliError::usage("--k too large for the wire format"))?;
    let mut client = connect_with_policy(f, addr)?;
    let t0 = std::time::Instant::now();
    let reply = client
        .query(raw, k32, deadline_ms, max_cost)
        .map_err(client_error)?;
    let micros = t0.elapsed().as_micros();
    if !reply.is_complete() && !f.has("partial") {
        return Err(CliError::budget(format!(
            "query stopped after {} of {k} answers: {} \
             (pass --partial to accept the prefix)",
            reply.ids.len(),
            truncation_reason(reply.truncated)
        )));
    }
    if let Some(cov) = &reply.coverage {
        // Degraded coverage is a partial answer in the shard dimension:
        // same contract as a truncated prefix — explicit opt-in.
        if !f.has("partial") {
            return Err(CliError::budget(format!(
                "answer covers {} of {} shards (skipped {:?}); \
                 pass --partial to accept degraded coverage",
                cov.shards as usize - cov.skipped().len(),
                cov.shards,
                cov.skipped()
            )));
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "rank  tuple");
    for (rank, t) in reply.ids.iter().enumerate() {
        let _ = writeln!(out, "{:>4}  {:>6}", rank + 1, t);
    }
    if !reply.is_complete() {
        let _ = writeln!(
            out,
            "TRUNCATED after {} of {k} answers: {}",
            reply.ids.len(),
            truncation_reason(reply.truncated)
        );
    }
    if let Some(cov) = &reply.coverage {
        let _ = writeln!(
            out,
            "DEGRADED coverage: {} of {} shards answered (skipped {:?})",
            cov.shards as usize - cov.skipped().len(),
            cov.shards,
            cov.skipped()
        );
    }
    let _ = writeln!(
        out,
        "evaluated {} tuples ({} pseudo) via {addr} in {micros} µs",
        reply.evaluated + reply.pseudo_evaluated,
        reply.pseudo_evaluated
    );
    Ok(out)
}

/// `serve --index FILE`: run the network index service until killed, or
/// for `--duration-s` seconds when given (used by smoke tests and timed
/// benchmarks). The bound address is announced on stderr immediately so
/// operators (and scripts) can connect before the command returns.
fn cmd_serve(f: &Flags) -> Result<String, CliError> {
    let addr = f.get("addr").unwrap_or("127.0.0.1:7071");
    let workers: usize = f.parse_num("workers", 2)?;
    let batch_max: usize = f.parse_num("batch-max", 32)?;
    let window_us: u64 = f.parse_num("batch-window-us", 200)?;
    let queue_depth: usize = f.parse_num("queue-depth", 1024)?;
    let duration_s: u64 = f.parse_num("duration-s", 0)?;
    let cfg = drtopk_server::ServerConfig::new()
        .addr(addr)
        .workers(workers)
        .batch_max(batch_max)
        .batch_window(std::time::Duration::from_micros(window_us))
        .queue_depth(queue_depth)
        .cache(f.has("cache"));
    let handle = if let Some(topo) = f.get("topology") {
        serve_router(Path::new(topo), cfg)?
    } else if let Some(root) = f.get("shard-dir") {
        if f.get("shard-id").is_some() {
            serve_shard_node(f, PathBuf::from(root), cfg)?
        } else {
            serve_sharded(f, PathBuf::from(root), cfg)?
        }
    } else {
        let path = PathBuf::from(f.require("index")?);
        let idx = std::sync::Arc::new(load_index(&path).map_err(CliError::from)?);
        drtopk_server::Server::start(idx, cfg)
            .map_err(|e| CliError::runtime(format!("serve: {e}")))?
    };
    let bound = handle.addr();
    eprintln!(
        "drtopk serving on {bound} ({workers} workers, batch <= {batch_max} \
         or {window_us} µs, queue depth {queue_depth}, cache {})",
        if f.has("cache") { "on" } else { "off" }
    );
    if duration_s > 0 {
        std::thread::sleep(std::time::Duration::from_secs(duration_s));
        handle.shutdown();
        Ok(format!("served on {bound} for {duration_s} s, drained\n"))
    } else {
        // Runs until a client sends a DRAIN frame (`drtopk drain`) or the
        // process is killed.
        handle.wait();
        Ok(format!("served on {bound}, drained\n"))
    }
}

/// The `serve --shard-dir` path: open an existing sharded deployment
/// (shard.0000, shard.0001, ... under `root`) or create one from
/// `--shards P --data FILE` when the directory holds none. A shard that
/// fails recovery is served *around*: it gets an unavailable slot, is
/// cordoned, and every answer that would have touched it carries the
/// degraded-coverage extension until `drtopk recover --shard N` repairs
/// its directory and the server is restarted (or the shard is replaced
/// in process by an embedding caller).
fn serve_sharded(
    f: &Flags,
    root: PathBuf,
    cfg: drtopk_server::ServerConfig,
) -> Result<drtopk_server::ServerHandle, CliError> {
    let opts = DurableOptions::default();
    let existing = if root.is_dir() {
        drtopk_storage::list_shard_dirs(&root).map_err(CliError::from)?
    } else {
        Vec::new()
    };
    let (shards, failed): (Vec<drtopk_server::ServedShard>, Vec<(usize, String)>) =
        if existing.is_empty() {
            let p: usize = f.parse_num("shards", 0)?;
            if p == 0 {
                return Err(CliError::usage(format!(
                    "{} holds no shards; pass --shards P --data FILE to create a deployment",
                    root.display()
                )));
            }
            let data = PathBuf::from(f.require("data")?);
            let rel = load_relation(&data).map_err(CliError::from)?;
            let stores =
                drtopk_storage::create_sharded(&root, &rel, p, &opts).map_err(CliError::from)?;
            (
                stores
                    .into_iter()
                    .enumerate()
                    .map(|(s, st)| drtopk_server::ServedShard::new(s, st))
                    .collect(),
                Vec::new(),
            )
        } else {
            // Open every shard independently; a failure quarantines to
            // that shard's slot instead of refusing the deployment.
            let mut opened = Vec::with_capacity(existing.len());
            for (s, dir) in existing.iter().enumerate() {
                opened.push((s, DurableDynamicIndex::open(dir, opts.clone())));
            }
            let dims = opened
                .iter()
                .find_map(|(_, r)| r.as_ref().ok().map(|(st, _)| st.index().dims()))
                .ok_or_else(|| {
                    CliError::corrupt(format!(
                        "{}: every shard failed recovery; repair at least one \
                         with `drtopk recover --dir {} --shard N`",
                        root.display(),
                        root.display()
                    ))
                })?;
            let mut shards = Vec::with_capacity(opened.len());
            let mut failed = Vec::new();
            for (s, r) in opened {
                match r {
                    Ok((st, report)) => {
                        if report.replayed > 0 || report.snapshots_skipped > 0 {
                            eprintln!(
                                "shard {s}: recovered (replayed {}, snapshots skipped {})",
                                report.replayed, report.snapshots_skipped
                            );
                        }
                        shards.push(drtopk_server::ServedShard::new(s, st));
                    }
                    Err(e) => {
                        let reason = e.to_string();
                        shards.push(drtopk_server::ServedShard::unavailable(s, dims, &reason));
                        failed.push((s, reason));
                    }
                }
            }
            (shards, failed)
        };
    let shard_count = shards.len();
    let router = std::sync::Arc::new(
        drtopk_core::ShardRouter::new(shards, drtopk_core::RouterConfig::default())
            .map_err(|e| CliError::runtime(format!("serve: {e}")))?,
    );
    for (s, reason) in &failed {
        router.cordon(*s);
        eprintln!("shard {s}: UNAVAILABLE ({reason}); serving degraded around it");
    }
    eprintln!(
        "sharded deployment at {}: {} of {shard_count} shards up",
        root.display(),
        shard_count - failed.len()
    );
    drtopk_server::Server::start_sharded(router, cfg)
        .map_err(|e| CliError::runtime(format!("serve: {e}")))
}

/// The `serve --topology FILE` path: this process is the *router node*
/// of a multi-node deployment. Client QUERY frames fan out as
/// SHARD_QUERY probes to the shard-node endpoints the file names, with
/// replica failover per shard and a background health pinger feeding
/// the router's Up/Degraded/Down slots (OPERATIONS.md §10).
fn serve_router(
    path: &Path,
    cfg: drtopk_server::ServerConfig,
) -> Result<drtopk_server::ServerHandle, CliError> {
    let topo = drtopk_server::Topology::load(path).map_err(CliError::from)?;
    eprintln!("router node: {}", topo.summary().trim_end());
    let router = topo.build_router().map_err(CliError::from)?;
    drtopk_server::Server::start_router(router, Some(topo.pinger_config()), cfg)
        .map_err(|e| CliError::runtime(format!("serve: {e}")))
}

/// The `serve --shard-dir DIR --shard-id N` path: this process is one
/// *shard node* — it opens exactly `DIR/shard.NNNN` and answers
/// SHARD_QUERY probes (scores attached) from a router node, plus plain
/// QUERY for debugging. Unlike the in-process sharded path there is no
/// serving *around* a bad shard here: a directory that fails recovery
/// refuses to start (exit 3) so the operator repairs it with
/// `drtopk recover` while replicas carry the traffic.
fn serve_shard_node(
    f: &Flags,
    root: PathBuf,
    cfg: drtopk_server::ServerConfig,
) -> Result<drtopk_server::ServerHandle, CliError> {
    let s: usize = f.parse_num("shard-id", 0)?;
    let dir = drtopk_storage::shards::shard_dir(&root, s);
    let (store, report) =
        DurableDynamicIndex::open(&dir, DurableOptions::default()).map_err(|e| {
            let base = CliError::from(e);
            CliError {
                message: format!(
                    "shard {s} at {}: {}; repair with `drtopk recover --dir {} --shard {s}` \
                     and restart this node",
                    dir.display(),
                    base.message,
                    root.display()
                ),
                code: base.code,
            }
        })?;
    if report.replayed > 0 || report.snapshots_skipped > 0 {
        eprintln!(
            "shard {s}: recovered (replayed {}, snapshots skipped {})",
            report.replayed, report.snapshots_skipped
        );
    }
    eprintln!(
        "shard node {s}: {} tuples from {}",
        store.len(),
        dir.display()
    );
    let shard = std::sync::Arc::new(drtopk_server::ServedShard::new(s, store));
    drtopk_server::Server::start_shard_node(shard, cfg)
        .map_err(|e| CliError::runtime(format!("serve: {e}")))
}

/// `topology check FILE`: parse and validate a topology file without
/// serving anything; prints the parsed summary on success. The one
/// command with a positional argument, so it bypasses [`Flags::parse`].
fn cmd_topology(args: &[String]) -> Result<String, CliError> {
    match args {
        [sub, path] if sub == "check" => {
            let t = drtopk_server::Topology::load(path).map_err(CliError::from)?;
            Ok(format!("{path}: OK\n{}", t.summary()))
        }
        _ => Err(CliError::usage("usage: drtopk topology check FILE")),
    }
}

/// Value of label `key` inside a Prometheus label block
/// (`k1="v1",k2="v2",...`).
fn prom_label<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
    labels.split(',').find_map(|kv| {
        let (k, v) = kv.split_once("=\"")?;
        (k == key).then(|| v.trim_end_matches('"'))
    })
}

/// `health --connect HOST:PORT`: fetch the node's metrics and print a
/// human-readable shard/endpoint health summary. Exits non-zero (code 1,
/// summary on stderr) when any shard is Down, so scripts and runbooks
/// can branch on it; a single-node server with no shard series is
/// healthy by definition.
fn cmd_health(f: &Flags) -> Result<String, CliError> {
    let addr = f.require("connect")?;
    let mut client = connect_with_policy(f, addr)?;
    let text = client.metrics_text().map_err(client_error)?;
    let mut out = String::new();
    let mut shards = 0usize;
    let mut down: Vec<String> = Vec::new();
    let mut endpoints = String::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("drtopk_shard_health{shard=\"") {
            let Some((id, v)) = rest.split_once("\"} ") else {
                continue;
            };
            shards += 1;
            let state = match v.trim() {
                "0" => "up",
                "1" => "DEGRADED",
                _ => "DOWN",
            };
            if state == "DOWN" {
                down.push(id.to_string());
            }
            let _ = writeln!(out, "  shard {id}: {state}");
        } else if let Some(rest) = line.strip_prefix("drtopk_endpoint_up{") {
            let Some((labels, v)) = rest.split_once("} ") else {
                continue;
            };
            let (Some(s), Some(r), Some(a)) = (
                prom_label(labels, "shard"),
                prom_label(labels, "replica"),
                prom_label(labels, "addr"),
            ) else {
                continue;
            };
            let state = if v.trim() == "1" { "up" } else { "down" };
            let _ = writeln!(endpoints, "  shard {s} replica {r} {a}: {state}");
        }
    }
    if shards == 0 {
        return Ok(format!("{addr}: single-node server, reachable\n"));
    }
    let mut report = format!(
        "{addr}: {} of {shards} shard(s) up\n{out}",
        shards - down.len()
    );
    if !endpoints.is_empty() {
        report.push_str("endpoints:\n");
        report.push_str(&endpoints);
    }
    if down.is_empty() {
        Ok(report)
    } else {
        Err(CliError::runtime(format!(
            "{report}shard(s) [{}] are DOWN",
            down.join(", ")
        )))
    }
}

/// `drain --connect HOST:PORT`: ask a running server to stop accepting
/// work, finish its queue, and exit (PROTOCOL.md §3.4).
fn cmd_drain(f: &Flags) -> Result<String, CliError> {
    let addr = f.require("connect")?;
    let mut client = connect_with_policy(f, addr)?;
    client.drain().map_err(client_error)?;
    Ok(format!("drain acknowledged by {addr}\n"))
}

/// Parses a weights file: one comma-separated weight vector per line;
/// blank lines and `#` comments are skipped.
fn parse_weights_file(text: &str, dims: usize) -> Result<Vec<Weights>, CliError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let raw: Vec<f64> = line
            .split(',')
            .map(|p| p.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| {
                CliError::usage(format!(
                    "weights file line {}: cannot parse {line:?}",
                    lineno + 1
                ))
            })?;
        let w = Weights::new(raw)
            .map_err(|e| CliError::usage(format!("weights file line {}: {e}", lineno + 1)))?;
        if w.dims() != dims {
            return Err(CliError::usage(format!(
                "weights file line {}: index has {dims} attributes but {} weights were given",
                lineno + 1,
                w.dims()
            )));
        }
        out.push(w);
    }
    if out.is_empty() {
        return Err(CliError::usage(
            "weights file contains no weight vectors".to_string(),
        ));
    }
    Ok(out)
}

fn cmd_batch(f: &Flags) -> Result<String, CliError> {
    let path = PathBuf::from(f.require("index")?);
    let weights_path = PathBuf::from(f.require("weights-file")?);
    let k: usize = f.parse_num("k", 10)?;
    let threads: usize = f.parse_num("threads", 0)?;
    let idx = load_index(&path).map_err(CliError::from)?;
    let text = std::fs::read_to_string(&weights_path)
        .map_err(|e| CliError::runtime(format!("{}: {e}", weights_path.display())))?;
    let queries = parse_weights_file(&text, idx.dims())?;
    let budget = parse_budget(f)?;
    let cache = f.has("cache").then(drtopk_core::ResultCache::default);
    let mut exec = BatchExecutor::with_threads(&idx, threads);
    if let Some(c) = &cache {
        exec = exec.with_cache(c);
    }
    let t0 = std::time::Instant::now();
    // The guarded path carries per-request outcomes; the plain path is
    // mapped into the same shape so one report loop serves both.
    let results: Vec<Result<drtopk_core::GuardedTopk, drtopk_core::RequestError>> = match &budget {
        None => exec
            .run_uniform(&queries, k)
            .into_iter()
            .map(|r| {
                Ok(drtopk_core::GuardedTopk {
                    ids: r.ids,
                    cost: r.cost,
                    truncated: None,
                })
            })
            .collect(),
        Some(b) => {
            let requests: Vec<(Weights, usize)> = queries.iter().map(|w| (w.clone(), k)).collect();
            exec.run_guarded(&requests, b)
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    let mut out = String::new();
    let mut total_cost = 0u64;
    let mut answered = 0usize;
    let mut truncated = 0usize;
    let mut failed = 0usize;
    for (qi, r) in results.iter().enumerate() {
        match r {
            Ok(g) => {
                let ids: Vec<String> = g.ids.iter().map(|t| t.to_string()).collect();
                let marker = match g.truncated {
                    None => String::new(),
                    Some(reason) => {
                        truncated += 1;
                        format!(" TRUNCATED ({reason})")
                    }
                };
                let _ = writeln!(
                    out,
                    "query {qi}: cost {} top-{} [{}]{marker}",
                    g.cost.total(),
                    g.ids.len(),
                    ids.join(", ")
                );
                total_cost += g.cost.total();
                answered += 1;
            }
            Err(e) => {
                failed += 1;
                let _ = writeln!(out, "query {qi}: FAILED ({e})");
            }
        }
    }
    if truncated > 0 && !f.has("partial") {
        return Err(CliError::budget(format!(
            "{truncated} of {} queries stopped early on the batch budget \
             (pass --partial to accept prefixes)",
            results.len()
        )));
    }
    let qps = if secs > 0.0 {
        results.len() as f64 / secs
    } else {
        f64::INFINITY
    };
    let _ = writeln!(
        out,
        "{} queries on {} threads in {:.3}s ({:.0} queries/s, mean cost {:.1})",
        results.len(),
        exec.effective_threads(queries.len()),
        secs,
        qps,
        total_cost as f64 / answered.max(1) as f64
    );
    if failed > 0 {
        let _ = writeln!(out, "{failed} queries failed; the rest are unaffected");
    }
    if let Some(c) = &cache {
        let s = c.stats();
        let lookups = s.hits + s.misses;
        let _ = writeln!(
            out,
            "cache: {} hits / {} misses ({:.1}% hit rate), {} cert rejects",
            s.hits,
            s.misses,
            100.0 * s.hits as f64 / lookups.max(1) as f64,
            s.cert_rejects
        );
    }
    Ok(out)
}

/// `recover --dir DIR`: opens a durable dynamic store, replaying its WAL
/// over the newest loadable snapshot, and reports what recovery did.
fn cmd_recover(f: &Flags) -> Result<String, CliError> {
    let mut dir = PathBuf::from(f.require("dir")?);
    if f.get("shard").is_some() {
        // `--dir` names the deployment root; `--shard N` selects one
        // shard's own directory. Recovery stays single-shard: peers'
        // WALs and snapshots are never read, let alone written.
        let shard: usize = f.parse_num("shard", 0)?;
        dir = drtopk_storage::shard_dir(&dir, shard);
    }
    let opts = DurableOptions {
        opts: variant_options(f.get("variant").unwrap_or("dl+"))?,
        ..DurableOptions::default()
    };
    let (mut store, report) = DurableDynamicIndex::open(&dir, opts).map_err(CliError::from)?;
    let mut out = String::new();
    let _ = writeln!(out, "store {}", dir.display());
    let _ = writeln!(out, "  base generation    {}", report.generation);
    let _ = writeln!(out, "  current generation {}", store.generation());
    let _ = writeln!(out, "  records replayed   {}", report.replayed);
    let _ = writeln!(out, "  torn tail          {}", report.torn_tail);
    let _ = writeln!(out, "  snapshots skipped  {}", report.snapshots_skipped);
    let _ = writeln!(out, "  live tuples        {}", store.len());
    if f.has("checkpoint") {
        let generation = store.checkpoint().map_err(CliError::from)?;
        let _ = writeln!(out, "checkpointed to generation {generation}");
    }
    Ok(out)
}

/// `wal --dir DIR`: read-only inspection of every WAL file in a durable
/// store directory — record counts, torn tails, and valid prefix sizes.
fn cmd_wal(f: &Flags) -> Result<String, CliError> {
    let dir = PathBuf::from(f.require("dir")?);
    let mut files: Vec<(u64, PathBuf)> = Vec::new();
    let entries = std::fs::read_dir(&dir)
        .map_err(|e| CliError::runtime(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| CliError::runtime(e.to_string()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = name
            .strip_prefix("wal.")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|g| g.parse::<u64>().ok())
        {
            files.push((gen, entry.path()));
        }
    }
    if files.is_empty() {
        return Err(CliError::runtime(format!(
            "no WAL files found in {}",
            dir.display()
        )));
    }
    files.sort();
    let mut out = String::new();
    for (gen, path) in files {
        match read_wal(&path, gen) {
            Ok(replay) => {
                let inserts = replay
                    .records
                    .iter()
                    .filter(|r| matches!(r, WalRecord::Insert { .. }))
                    .count();
                let tail = if replay.torn { ", TORN TAIL" } else { "" };
                let _ = writeln!(
                    out,
                    "wal generation {gen}: {} records ({inserts} inserts, {} deletes), \
                     {} valid bytes{tail}",
                    replay.records.len(),
                    replay.records.len() - inserts,
                    replay.valid_bytes,
                );
            }
            Err(e) => {
                let _ = writeln!(out, "wal generation {gen}: UNREADABLE ({e})");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("drtopk_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_pipeline() {
        let data = tmp("pipe.data.drt");
        let index = tmp("pipe.index.drt");
        let out = run(&argv(&[
            "generate",
            "--dist",
            "ant",
            "--dims",
            "3",
            "--n",
            "500",
            "--seed",
            "5",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("500 tuples"));

        let out = run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
            "--variant",
            "dl+",
            "--parallel",
            "--threads",
            "2",
            "--stats",
        ]))
        .unwrap();
        assert!(out.contains("coarse"));
        // --stats appends the per-phase profile table.
        assert!(out.contains("coarse peel"), "{out}");
        assert!(out.contains("dominance tests"), "{out}");

        let out = run(&argv(&["stats", "--index", index.to_str().unwrap()])).unwrap();
        assert!(out.contains("tuples            500"));

        let out = run(&argv(&[
            "query",
            "--index",
            index.to_str().unwrap(),
            "--weights",
            "0.2,0.5,0.3",
            "--k",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("rank"));
        assert_eq!(
            out.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count(),
            5
        );
    }

    #[test]
    fn stats_formats_and_probe() {
        let data = tmp("statsfmt.data.drt");
        let index = tmp("statsfmt.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ant",
            "--dims",
            "2",
            "--n",
            "400",
            "--seed",
            "11",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();

        let json = run(&argv(&[
            "stats",
            "--index",
            index.to_str().unwrap(),
            "--format",
            "json",
            "--probe",
            "5",
        ]))
        .unwrap();
        assert!(json.contains("\"tuples\": 400"), "{json}");
        assert!(json.contains("\"queries\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let prom = run(&argv(&[
            "stats",
            "--index",
            index.to_str().unwrap(),
            "--format",
            "prom",
            "--probe",
            "5",
        ]))
        .unwrap();
        assert!(prom.contains("drtopk_index_tuples 400"), "{prom}");
        assert!(
            prom.contains("# TYPE drtopk_queries_total counter"),
            "{prom}"
        );
        assert!(
            prom.contains("# TYPE drtopk_query_latency_seconds histogram"),
            "{prom}"
        );
        if drtopk_obs::COMPILED {
            // The registry is process-global and other tests also run
            // queries, so assert a floor, not an exact count.
            let queries: u64 = prom
                .lines()
                .find(|l| l.starts_with("drtopk_queries_total "))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap();
            assert!(queries >= 5, "{prom}");
        }

        let text = run(&argv(&[
            "stats",
            "--index",
            index.to_str().unwrap(),
            "--probe",
            "5",
        ]))
        .unwrap();
        if drtopk_obs::COMPILED {
            assert!(text.contains("scratch touched"), "{text}");
            assert!(text.contains("kernel blocks"), "{text}");
        }

        let err = run(&argv(&[
            "stats",
            "--index",
            index.to_str().unwrap(),
            "--format",
            "yaml",
        ]))
        .unwrap_err();
        assert!(err.message.contains("text|json|prom"));
    }

    /// Audit of the Prometheus exposition: every sample family — including
    /// the new cache counters — must be preceded by both a HELP and a TYPE
    /// line, per the text-format contract scrapers rely on.
    #[test]
    fn prom_output_has_help_and_type_for_every_family() {
        let data = tmp("promaudit.data.drt");
        let index = tmp("promaudit.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ant",
            "--dims",
            "2",
            "--n",
            "300",
            "--seed",
            "3",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        let prom = run(&argv(&[
            "stats",
            "--index",
            index.to_str().unwrap(),
            "--format",
            "prom",
            "--probe",
            "40",
            "--cache",
        ]))
        .unwrap();
        let mut helped: Vec<String> = Vec::new();
        let mut typed: Vec<String> = Vec::new();
        for line in prom.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.push(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.push(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            let sample = line.split([' ', '{']).next().unwrap();
            if sample.is_empty() {
                continue;
            }
            // Histogram samples belong to their base family name.
            let family = sample
                .strip_suffix("_bucket")
                .or_else(|| sample.strip_suffix("_sum"))
                .or_else(|| sample.strip_suffix("_count"))
                .unwrap_or(sample);
            assert!(
                helped.iter().any(|h| h == family),
                "sample {sample:?} has no preceding HELP: {prom}"
            );
            assert!(
                typed.iter().any(|t| t == family),
                "sample {sample:?} has no preceding TYPE: {prom}"
            );
        }
        for name in [
            "drtopk_cache_hits_total",
            "drtopk_cache_misses_total",
            "drtopk_cache_cert_rejects_total",
            "drtopk_cache_invalidations_total",
        ] {
            assert!(
                prom.contains(&format!("# TYPE {name} counter")),
                "{name} missing TYPE: {prom}"
            );
        }
        if drtopk_obs::COMPILED {
            // Zipf probes over a 16-weight pool must actually hit.
            let hits: u64 = prom
                .lines()
                .find(|l| l.starts_with("drtopk_cache_hits_total "))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap();
            assert!(hits > 0, "{prom}");
        }
    }

    #[test]
    fn batch_with_cache_matches_uncached_answers() {
        let data = tmp("cachebatch.data.drt");
        let index = tmp("cachebatch.index.drt");
        let wfile = tmp("cachebatch.weights.txt");
        run(&argv(&[
            "generate",
            "--dist",
            "ind",
            "--dims",
            "2",
            "--n",
            "250",
            "--seed",
            "9",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        // Three distinct vectors, each repeated: repeats must hit.
        let mut lines = String::new();
        for _ in 0..5 {
            lines.push_str("0.3,0.7\n0.5,0.5\n0.8,0.2\n");
        }
        std::fs::write(&wfile, lines).unwrap();
        let base = argv(&[
            "batch",
            "--index",
            index.to_str().unwrap(),
            "--weights-file",
            wfile.to_str().unwrap(),
            "--k",
            "5",
            "--threads",
            "1",
        ]);
        let plain = run(&base).unwrap();
        let mut with_cache = base.clone();
        with_cache.push("--cache".into());
        let cached = run(&with_cache).unwrap();
        for (p, c) in plain.lines().zip(cached.lines()) {
            if p.starts_with("query ") {
                // Same answers; costs may differ (hit semantics).
                let strip = |l: &str| l.split('[').nth(1).map(|s| s.to_string());
                assert_eq!(strip(p), strip(c), "plain: {p}\ncached: {c}");
            }
        }
        let summary = cached
            .lines()
            .find(|l| l.starts_with("cache: "))
            .expect("cache summary line");
        let hits: u64 = summary
            .strip_prefix("cache: ")
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(hits >= 12, "repeated weights must hit: {summary}");
    }

    #[test]
    fn import_csv() {
        let csv = tmp("cat.csv");
        std::fs::write(&csv, "name,price,rating\na,10,4.5\nb,20,5.0\nc,5,1.0\n").unwrap();
        let data = tmp("cat.drt");
        let out = run(&argv(&[
            "import",
            "--csv",
            csv.to_str().unwrap(),
            "--columns",
            "1:low,2:high",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("3 tuples × 2 attributes"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv(&["unknown"])).is_err());
        assert!(run(&argv(&["generate", "--dist", "weird"])).is_err());
        assert!(
            run(&argv(&["build", "--data"])).is_err(),
            "flag without value"
        );
        assert!(run(&argv(&[
            "query",
            "--index",
            "/nonexistent",
            "--weights",
            "1,1"
        ]))
        .is_err());
        let e = run(&argv(&["generate", "--dist", "ind", "--out", "/tmp/x"])).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn weight_arity_checked() {
        let data = tmp("arity.data.drt");
        let index = tmp("arity.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ind",
            "--dims",
            "2",
            "--n",
            "50",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&argv(&[
            "query",
            "--index",
            index.to_str().unwrap(),
            "--weights",
            "1,1,1",
        ]))
        .unwrap_err();
        assert!(err.message.contains("2 attributes"));
    }

    #[test]
    fn batch_subcommand_runs_weights_file() {
        let data = tmp("batch.data.drt");
        let index = tmp("batch.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ind",
            "--dims",
            "3",
            "--n",
            "300",
            "--seed",
            "9",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();

        let wf = tmp("batch.weights.txt");
        std::fs::write(
            &wf,
            "# one weight vector per line\n0.2, 0.5, 0.3\n\n0.6,0.2,0.2\n0.1,0.1,0.8\n",
        )
        .unwrap();
        let out = run(&argv(&[
            "batch",
            "--index",
            index.to_str().unwrap(),
            "--weights-file",
            wf.to_str().unwrap(),
            "--k",
            "5",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("query 0:"), "{out}");
        assert!(out.contains("query 2:"), "{out}");
        // Three queries are below the per-worker chunking threshold, so the
        // executor collapses them onto one worker regardless of the host's
        // core count.
        assert!(out.contains("3 queries on 1 threads"), "{out}");

        // Batch answers must match single-query answers.
        let single = run(&argv(&[
            "query",
            "--index",
            index.to_str().unwrap(),
            "--weights",
            "0.2,0.5,0.3",
            "--k",
            "5",
        ]))
        .unwrap();
        let first_id = single
            .lines()
            .nth(1)
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .to_string();
        assert!(out
            .lines()
            .next()
            .unwrap()
            .contains(&format!("[{first_id}")));
    }

    #[test]
    fn batch_rejects_bad_weights_files() {
        let data = tmp("batchbad.data.drt");
        let index = tmp("batchbad.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ind",
            "--dims",
            "2",
            "--n",
            "60",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        for (name, content, want) in [
            ("empty.txt", "# only comments\n\n", "no weight vectors"),
            ("arity.txt", "0.3,0.3,0.4\n", "2 attributes"),
            ("garbage.txt", "0.5,banana\n", "cannot parse"),
        ] {
            let wf = tmp(name);
            std::fs::write(&wf, content).unwrap();
            let err = run(&argv(&[
                "batch",
                "--index",
                index.to_str().unwrap(),
                "--weights-file",
                wf.to_str().unwrap(),
            ]))
            .unwrap_err();
            assert!(err.message.contains(want), "{name}: {}", err.message);
        }
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&argv(&["help"])).unwrap().contains("commands:"));
        assert!(run(&[]).unwrap().contains("commands:"));
    }

    /// Builds a small index file and returns its path.
    fn build_index(stem: &str, dims: usize, n: usize) -> PathBuf {
        let data = tmp(&format!("{stem}.data.drt"));
        let index = tmp(&format!("{stem}.index.drt"));
        run(&argv(&[
            "generate",
            "--dist",
            "ant",
            "--dims",
            &dims.to_string(),
            "--n",
            &n.to_string(),
            "--seed",
            "3",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        index
    }

    #[test]
    fn corrupt_index_exits_3() {
        let path = tmp("exit3.index.drt");
        std::fs::write(&path, b"not an index file at all").unwrap();
        let err = run(&argv(&[
            "query",
            "--index",
            path.to_str().unwrap(),
            "--weights",
            "0.5,0.5",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 3, "{}", err.message);

        // A bit-flipped but otherwise well-formed file is also code 3.
        let good = build_index("exit3b", 2, 80);
        let mut bytes = std::fs::read(&good).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&good, &bytes).unwrap();
        let err = run(&argv(&[
            "query",
            "--index",
            good.to_str().unwrap(),
            "--weights",
            "0.5,0.5",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 3, "{}", err.message);
    }

    #[test]
    fn tripped_budget_exits_4_unless_partial() {
        let index = build_index("budget", 3, 400);
        // A cost cap of 1 cannot answer k=20.
        let base = [
            "query",
            "--index",
            index.to_str().unwrap(),
            "--weights",
            "0.3,0.3,0.4",
            "--k",
            "20",
            "--max-cost",
            "1",
        ];
        let err = run(&argv(&base)).unwrap_err();
        assert_eq!(err.code, 4, "{}", err.message);
        assert!(err.message.contains("--partial"), "{}", err.message);

        let mut with_partial = base.to_vec();
        with_partial.push("--partial");
        let out = run(&argv(&with_partial)).unwrap();
        assert!(out.contains("TRUNCATED"), "{out}");
        assert!(out.contains("cost cap"), "{out}");

        // An ample budget answers fully through the guarded path.
        let out = run(&argv(&[
            "query",
            "--index",
            index.to_str().unwrap(),
            "--weights",
            "0.3,0.3,0.4",
            "--k",
            "5",
            "--max-cost",
            "100000",
            "--deadline-ms",
            "60000",
        ]))
        .unwrap();
        assert!(!out.contains("TRUNCATED"), "{out}");
        assert_eq!(
            out.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count(),
            5
        );
    }

    #[test]
    fn batch_budget_marks_truncated_queries() {
        let index = build_index("batchbudget", 2, 300);
        let wf = tmp("batchbudget.weights.txt");
        std::fs::write(&wf, "0.5,0.5\n0.9,0.1\n").unwrap();
        let base = [
            "batch",
            "--index",
            index.to_str().unwrap(),
            "--weights-file",
            wf.to_str().unwrap(),
            "--k",
            "30",
            "--max-cost",
            "1",
        ];
        let err = run(&argv(&base)).unwrap_err();
        assert_eq!(err.code, 4, "{}", err.message);

        let mut with_partial = base.to_vec();
        with_partial.push("--partial");
        let out = run(&argv(&with_partial)).unwrap();
        assert!(out.contains("TRUNCATED"), "{out}");
        assert!(out.contains("2 queries on"), "{out}");
    }

    #[test]
    fn budget_flags_are_validated() {
        let index = build_index("budgetval", 2, 50);
        for bad in [["--deadline-ms", "0"], ["--max-cost", "0"]] {
            let err = run(&argv(&[
                "query",
                "--index",
                index.to_str().unwrap(),
                "--weights",
                "0.5,0.5",
                bad[0],
                bad[1],
            ]))
            .unwrap_err();
            assert_eq!(err.code, 2, "{}", err.message);
        }
    }

    /// Creates a durable dynamic store with a few logged mutations.
    fn make_store(stem: &str) -> PathBuf {
        let dir = tmp(&format!("{stem}.store"));
        let _ = std::fs::remove_dir_all(&dir);
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 40, 7).generate();
        let mut store = DurableDynamicIndex::create(
            &dir,
            &rel,
            DurableOptions {
                opts: DlOptions::dl_plus(),
                ..DurableOptions::default()
            },
        )
        .unwrap();
        store.insert(&[0.3, 0.6]).unwrap();
        store.insert(&[0.7, 0.2]).unwrap();
        store.delete(5).unwrap();
        dir
    }

    #[test]
    fn recover_reports_replay_and_checkpoints() {
        let dir = make_store("recover");
        let out = run(&argv(&["recover", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("records replayed   3"), "{out}");
        assert!(out.contains("live tuples        41"), "{out}");
        assert!(out.contains("torn tail          false"), "{out}");

        let out = run(&argv(&[
            "recover",
            "--dir",
            dir.to_str().unwrap(),
            "--checkpoint",
        ]))
        .unwrap();
        assert!(out.contains("checkpointed to generation 1"), "{out}");
        // After the checkpoint the WAL backlog is folded into the snapshot.
        let out = run(&argv(&["recover", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("records replayed   0"), "{out}");

        // A store with a torn interior WAL under a committed snapshot is
        // acked-data loss: recover must exit 3.
        let wal0 = dir.join(format!("wal.{:016}.log", 0));
        if wal0.exists() {
            std::fs::remove_file(&wal0).unwrap();
        }
        let snap1 = dir.join(format!("snapshot.{:016}.drt", 1));
        let mut bytes = std::fs::read(&snap1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&snap1, &bytes).unwrap();
        // snapshot.1 corrupt -> fall back to snapshot.0; wal.1 intact so
        // recovery succeeds, but tearing wal.1's tail below snapshot.1's
        // commit marker... wal.1 IS >= the newest snapshot generation, so
        // a torn tail there is tolerated. Corrupting snapshot.0 as well
        // leaves nothing loadable: exit 3.
        let snap0 = dir.join(format!("snapshot.{:016}.drt", 0));
        let mut bytes = std::fs::read(&snap0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&snap0, &bytes).unwrap();
        let err = run(&argv(&["recover", "--dir", dir.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.code, 3, "{}", err.message);
    }

    #[test]
    fn wal_inspector_reports_records_and_tears() {
        let dir = make_store("walcmd");
        let out = run(&argv(&["wal", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(
            out.contains("wal generation 0: 3 records (2 inserts, 1 deletes)"),
            "{out}"
        );
        assert!(!out.contains("TORN"), "{out}");

        // Chop bytes off the tail: the inspector flags the tear.
        let wal0 = dir.join(format!("wal.{:016}.log", 0));
        let full = std::fs::read(&wal0).unwrap();
        std::fs::write(&wal0, &full[..full.len() - 3]).unwrap();
        let out = run(&argv(&["wal", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("TORN TAIL"), "{out}");
        assert!(out.contains("2 records"), "{out}");

        let err = run(&argv(&["wal", "--dir", "/nonexistent-dir"])).unwrap_err();
        assert_eq!(err.code, 1);
    }

    /// The `serve` / `query --connect` / `drain` loop end to end: the
    /// network answer carries the same tuple ids as the local path, the
    /// budget exit-code contract survives the wire, and a DRAIN frame
    /// stops the serve command.
    #[test]
    fn network_query_matches_local_and_drain_stops_the_server() {
        let data = tmp("serve.data.drt");
        let index = tmp("serve.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ant",
            "--dims",
            "2",
            "--n",
            "300",
            "--seed",
            "21",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();

        // Reserve an ephemeral port, release it, then serve on it from a
        // background thread (the tiny reuse window is fine for a test).
        let port = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let addr = format!("127.0.0.1:{port}");
        let serve_args = argv(&[
            "serve",
            "--index",
            index.to_str().unwrap(),
            "--addr",
            &addr,
            "--workers",
            "1",
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        for _ in 0..200 {
            if std::net::TcpStream::connect(&addr).is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let local = run(&argv(&[
            "query",
            "--index",
            index.to_str().unwrap(),
            "--weights",
            "0.4,0.6",
            "--k",
            "7",
        ]))
        .unwrap();
        let remote = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.4,0.6",
            "--k",
            "7",
        ]))
        .unwrap();
        let ids = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .map(|l| l.split_whitespace().nth(1).unwrap().to_string())
                .collect()
        };
        assert_eq!(
            ids(&local),
            ids(&remote),
            "local: {local}\nremote: {remote}"
        );
        assert_eq!(ids(&remote).len(), 7);

        // A tripped budget without --partial is exit code 4, same as the
        // local path; with --partial the prefix is printed and flagged.
        let err = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.4,0.6",
            "--k",
            "7",
            "--max-cost",
            "2",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 4, "{}", err.message);
        let partial = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.4,0.6",
            "--k",
            "7",
            "--max-cost",
            "2",
            "--partial",
        ]))
        .unwrap();
        assert!(partial.contains("TRUNCATED"), "{partial}");
        assert!(partial.contains("cost budget exhausted"), "{partial}");

        // Wrong arity is rejected server-side as BadRequest -> usage (2).
        let err = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.2,0.3,0.5",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        let out = run(&argv(&["drain", "--connect", &addr])).unwrap();
        assert!(out.contains("drain acknowledged"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("drained"), "{served}");

        // Draining an already-stopped server is a runtime error (1).
        let err = run(&argv(&["drain", "--connect", &addr])).unwrap_err();
        assert_eq!(err.code, 1);
        // drain without --connect is a usage error (2).
        assert_eq!(run(&argv(&["drain"])).unwrap_err().code, 2);
    }

    /// `--duration-s` bounds the serve command without an external drain
    /// — the shape CI smoke tests and timed benchmarks rely on.
    #[test]
    fn serve_duration_flag_drains_on_its_own() {
        let data = tmp("timed.data.drt");
        let index = tmp("timed.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ind",
            "--dims",
            "2",
            "--n",
            "100",
            "--seed",
            "4",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&argv(&[
            "serve",
            "--index",
            index.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--duration-s",
            "1",
            "--cache",
        ]))
        .unwrap();
        assert!(out.contains("drained"), "{out}");
    }

    /// Sharded serving end to end through the CLI: create a deployment
    /// from `--data`, query it with full coverage, reopen it from disk,
    /// then corrupt one shard wholesale and verify the reopened server
    /// serves *around* it — degraded coverage is exit 4 without
    /// `--partial`, explicit with it, and never leaks tuples from the
    /// dead shard's residue class.
    #[test]
    fn sharded_serve_creates_reopens_and_degrades_around_a_dead_shard() {
        let data = tmp("shardcli.data.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ind",
            "--dims",
            "2",
            "--n",
            "240",
            "--seed",
            "33",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let root = tmp("shardcli.deploy");
        let _ = std::fs::remove_dir_all(&root);
        let ids = |s: &str| -> Vec<u64> {
            s.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
                .collect()
        };
        let reserve = || {
            let port = std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
                .port();
            format!("127.0.0.1:{port}")
        };
        let wait_up = |addr: &str| {
            for _ in 0..200 {
                if std::net::TcpStream::connect(addr).is_ok() {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            panic!("server on {addr} never came up");
        };

        // Phase 1: create the deployment from --data and serve it.
        let addr = reserve();
        let serve_args = argv(&[
            "serve",
            "--shard-dir",
            root.to_str().unwrap(),
            "--shards",
            "3",
            "--data",
            data.to_str().unwrap(),
            "--addr",
            &addr,
            "--workers",
            "1",
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        wait_up(&addr);
        let full = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.5,0.5",
            "--k",
            "9",
        ]))
        .unwrap();
        assert!(!full.contains("DEGRADED"), "{full}");
        let full_ids = ids(&full);
        assert_eq!(full_ids.len(), 9, "{full}");
        run(&argv(&["drain", "--connect", &addr])).unwrap();
        server.join().unwrap().unwrap();
        for s in 0..3 {
            assert!(root.join(format!("shard.{s:04}")).is_dir());
        }

        // Single-shard recovery names only that shard's directory.
        let out = run(&argv(&[
            "recover",
            "--dir",
            root.to_str().unwrap(),
            "--shard",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("shard.0002"), "{out}");

        // Phase 2: trash every file under shard 1, reopen the
        // deployment, and it serves degraded around the corpse.
        for entry in std::fs::read_dir(root.join("shard.0001")).unwrap() {
            std::fs::write(entry.unwrap().path(), b"not a drtopk file").unwrap();
        }
        let addr = reserve();
        let serve_args = argv(&[
            "serve",
            "--shard-dir",
            root.to_str().unwrap(),
            "--addr",
            &addr,
            "--workers",
            "1",
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        wait_up(&addr);
        let err = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.5,0.5",
            "--k",
            "9",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 4, "{}", err.message);
        assert!(err.message.contains("degraded coverage"), "{}", err.message);
        let partial = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.5,0.5",
            "--k",
            "9",
            "--partial",
        ]))
        .unwrap();
        assert!(
            partial.contains("DEGRADED coverage: 2 of 3 shards answered (skipped [1])"),
            "{partial}"
        );
        let degraded_ids = ids(&partial);
        assert_eq!(degraded_ids.len(), 9, "{partial}");
        // Shard s holds handles with h % 3 == s; nothing from the dead
        // residue class may appear, and the answer must be exactly the
        // full answer with shard 1's tuples dropped and backfilled.
        assert!(degraded_ids.iter().all(|t| t % 3 != 1), "{partial}");
        let expected: Vec<u64> = full_ids.iter().copied().filter(|t| t % 3 != 1).collect();
        assert_eq!(&degraded_ids[..expected.len()], &expected[..], "{partial}");
        run(&argv(&["drain", "--connect", &addr])).unwrap();
        server.join().unwrap().unwrap();

        // An empty shard dir without --shards/--data is a usage error.
        let empty = tmp("shardcli.empty");
        let _ = std::fs::remove_dir_all(&empty);
        std::fs::create_dir_all(&empty).unwrap();
        let err = run(&argv(&[
            "serve",
            "--shard-dir",
            empty.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
    }

    /// `--connect-retries` rides out a server that is still starting:
    /// the client backs off and reconnects instead of failing the first
    /// refused connection, and `--connect-retries 0` restores the old
    /// single-attempt contract (runtime error, exit 1).
    #[test]
    fn query_connect_retries_until_the_server_appears() {
        let data = tmp("retry.data.drt");
        let index = tmp("retry.index.drt");
        run(&argv(&[
            "generate",
            "--dist",
            "ind",
            "--dims",
            "2",
            "--n",
            "80",
            "--seed",
            "5",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        let port = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let addr = format!("127.0.0.1:{port}");

        // No listener yet: zero retries fails immediately with exit 1.
        let err = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.5,0.5",
            "--connect-retries",
            "0",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 1, "{}", err.message);

        // Start the server late; the retrying client waits it out.
        let serve_args = argv(&[
            "serve",
            "--index",
            index.to_str().unwrap(),
            "--addr",
            &addr,
            "--workers",
            "1",
        ]);
        let server = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(300));
            run(&serve_args)
        });
        let out = run(&argv(&[
            "query",
            "--connect",
            &addr,
            "--weights",
            "0.5,0.5",
            "--k",
            "5",
            "--connect-retries",
            "10",
            "--connect-backoff-ms",
            "50",
        ]))
        .unwrap();
        assert!(out.contains("rank  tuple"), "{out}");
        run(&argv(&["drain", "--connect", &addr])).unwrap();
        server.join().unwrap().unwrap();
    }
}
