//! The `drtopk` binary: thin shell around [`drtopk_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match drtopk_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
