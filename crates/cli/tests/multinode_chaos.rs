//! Cross-process multi-node chaos: real `drtopk` processes — shard
//! nodes, a router node — killed, stalled, and corrupted mid-traffic.
//!
//! The contract under test (OPERATIONS.md §10):
//! * killing a replicated shard's primary (`kill -9`) costs failovers,
//!   never answers: every reply stays bit-identical to the unsharded
//!   oracle with full coverage — zero degraded replies;
//! * killing an unreplicated shard degrades *coverage*, not
//!   availability: replies carry the exact survivor-partition top-k and
//!   a mask naming the dead shard, `drtopk health` exits non-zero, and
//!   a node started on a listed standby endpoint rejoins without a
//!   router restart;
//! * a stalled node (SIGSTOP: accepts TCP, answers nothing) is a
//!   timeout, not a hang — hedged probes and the pinger route around it
//!   and back after SIGCONT;
//! * a rotted snapshot is repaired by `drtopk recover` from the shard's
//!   own directory; one trashed beyond recovery refuses to serve with
//!   exit 3 instead of serving wrong answers.
//!
//! Every child is guarded: dropped guards SIGCONT + SIGKILL their
//! process, so a failing assertion cannot leak orphans.

use drtopk_common::{Distribution, Relation, Weights, WorkloadSpec};
use drtopk_core::shard::shard_of;
use drtopk_core::{DlOptions, DynamicIndex, Handle};
use drtopk_server::Client;
use drtopk_storage::{create_sharded, shards::shard_dir, DurableOptions};
use std::fs;
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_drtopk")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drtopk_mnchaos_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One guarded child process. Dropping it SIGCONTs (in case the test
/// stopped it) then SIGKILLs and reaps — a panicking test leaves no
/// orphan serving a port.
struct Node {
    name: String,
    child: Child,
    addr: String,
}

impl Node {
    fn signal(&self, sig: &str) {
        let st = Command::new("kill")
            .arg(sig)
            .arg(self.child.id().to_string())
            .status()
            .unwrap();
        assert!(st.success(), "kill {sig} {}", self.name);
    }

    fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = Command::new("kill")
            .arg("-CONT")
            .arg(self.child.id().to_string())
            .status();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `drtopk serve` and waits for its "serving on ADDR" stderr
/// announcement, so port 0 auto-assignment works across processes.
fn spawn_serving(name: &str, args: &[&str]) -> Node {
    let mut child = Command::new(bin())
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            let status = child.wait().unwrap();
            panic!("{name} exited before announcing an address ({status})");
        }
        if let Some(rest) = line.split("drtopk serving on ").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Node {
        name: name.to_string(),
        child,
        addr,
    }
}

fn spawn_shard_node(root: &Path, s: usize, addr: &str) -> Node {
    spawn_serving(
        &format!("shard{s}@{addr}"),
        &[
            "serve",
            "--shard-dir",
            root.to_str().unwrap(),
            "--shard-id",
            &s.to_string(),
            "--addr",
            addr,
        ],
    )
}

fn spawn_router(topology: &Path) -> Node {
    spawn_serving(
        "router",
        &[
            "serve",
            "--topology",
            topology.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ],
    )
}

/// An address that is free right now — for standby endpoints a test
/// binds later.
fn free_addr() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(addr, 40, Duration::from_millis(25)).unwrap()
}

/// Runs the CLI to completion; returns (exit code, stdout).
fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(bin()).args(args).output().unwrap();
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// The exact top-k oracle over the partitions not in `dead`, keeping
/// global handles (same construction as the in-process chaos suite).
fn survivor_oracle(rel: &Relation, shards: usize, dead: &[usize]) -> DynamicIndex {
    let dims = rel.dims();
    let mut flat = Vec::new();
    let mut handles = Vec::new();
    for (t, row) in rel.iter() {
        if !dead.contains(&shard_of(t as Handle, shards)) {
            flat.extend_from_slice(row);
            handles.push(t as Handle);
        }
    }
    DynamicIndex::with_handles(
        &Relation::from_flat_unchecked(dims, flat),
        handles,
        DlOptions::default(),
        0.5,
    )
    .unwrap()
}

/// Creates a sharded durable deployment under `root`; returns the data.
fn make_deployment(root: &Path, p: usize, n: usize, seed: u64) -> Relation {
    let rel = WorkloadSpec::new(Distribution::Independent, 2, n, seed).generate();
    drop(create_sharded(root, &rel, p, &DurableOptions::default()).unwrap());
    rel
}

/// Byte-for-byte copy of one shard directory into another deployment
/// root — how a replica is seeded.
fn seed_replica(src_root: &Path, dst_root: &Path, s: usize) {
    let src = shard_dir(src_root, s);
    let dst = shard_dir(dst_root, s);
    fs::create_dir_all(&dst).unwrap();
    for e in fs::read_dir(&src).unwrap() {
        let e = e.unwrap();
        fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

fn write_topology(path: &Path, shards: &[Vec<String>], extra: &str) {
    let mut text = String::from("dims 2\n");
    for (s, eps) in shards.iter().enumerate() {
        text.push_str(&format!("shard {s} {}\n", eps.join(" ")));
    }
    text.push_str(extra);
    fs::write(path, text).unwrap();
}

/// Polls the router until `pred` holds on its metrics text.
fn await_metrics(client: &mut Client, what: &str, pred: impl Fn(&str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let text = client.metrics_text().unwrap();
        if pred(&text) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out awaiting {what}:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// kill -9 on a replicated shard's primary mid-traffic: zero degraded
/// answers, every reply bit-identical to the unsharded oracle, the
/// pinger marks the dead endpoint down while the shard stays Up, and
/// `drtopk health` agrees.
#[test]
fn kill9_with_replica_loses_no_answers() {
    let p = 2;
    let root = tmpdir("kill9_replica");
    let replica_root = root.join("replicas");
    let rel = make_deployment(&root, p, 300, 7);

    let mut nodes = Vec::new();
    let mut endpoints: Vec<Vec<String>> = Vec::new();
    for s in 0..p {
        seed_replica(&root, &replica_root, s);
        let primary = spawn_shard_node(&root, s, "127.0.0.1:0");
        let replica = spawn_shard_node(&replica_root, s, "127.0.0.1:0");
        endpoints.push(vec![primary.addr.clone(), replica.addr.clone()]);
        nodes.push(primary);
        nodes.push(replica);
    }
    let topo = root.join("cluster.topo");
    write_topology(
        &topo,
        &endpoints,
        "probe-timeout-ms 500\nping-interval-ms 100\nping-timeout-ms 100\n",
    );
    let router = spawn_router(&topo);
    let mut client = connect(&router.addr);

    let w = vec![0.3, 0.7];
    let k = 10;
    let weights = Weights::new(w.clone()).unwrap();
    let oracle_ids = survivor_oracle(&rel, p, &[]).topk(&weights, k).0;

    let reply = client.query(&w, k as u32, 0, 0).unwrap();
    assert_eq!(
        reply.ids, oracle_ids,
        "healthy baseline == unsharded oracle"
    );
    assert!(reply.is_full_coverage());

    // SIGKILL shard 1's primary; every answer must keep coming, full
    // coverage, bit-identical — the replica absorbs the loss.
    let dead_addr = endpoints[1][0].clone();
    nodes.remove(2).kill9();
    for round in 0..5 {
        let reply = client.query(&w, k as u32, 0, 0).unwrap();
        assert_eq!(reply.ids, oracle_ids, "round {round}: bit-identity");
        assert!(
            reply.is_full_coverage(),
            "round {round}: a replicated shard must never degrade coverage"
        );
        assert_eq!(reply.truncated, 0, "round {round}");
    }

    // The pinger notices the corpse without taking the shard down.
    await_metrics(&mut client, "dead endpoint marked down", |text| {
        text.lines().any(|l| {
            l.starts_with("drtopk_endpoint_up{shard=\"1\"")
                && l.contains(&format!("addr=\"{dead_addr}\""))
                && l.ends_with(" 0")
        }) && text.contains("drtopk_shard_health{shard=\"1\"} 0")
    });
    let (code, out) = run_cli(&["health", "--connect", &router.addr]);
    assert_eq!(
        code, 0,
        "health exits 0 while every shard is served:\n{out}"
    );
    assert!(out.contains("2 of 2 shard(s) up"), "{out}");

    let _ = fs::remove_dir_all(&root);
}

/// kill -9 on an *unreplicated* shard: availability survives but
/// coverage degrades — replies carry the exact survivor top-k and a
/// mask naming the shard, plain `query --connect` refuses the degraded
/// answer with exit 4 unless `--partial`, `health` exits 1 — and a node
/// started on the listed standby endpoint rejoins with no router
/// restart.
#[test]
fn kill9_without_replica_degrades_then_rejoins() {
    let p = 2;
    let root = tmpdir("kill9_solo");
    let rel = make_deployment(&root, p, 300, 13);

    let node0 = spawn_shard_node(&root, 0, "127.0.0.1:0");
    let node1 = spawn_shard_node(&root, 1, "127.0.0.1:0");
    let standby = free_addr();
    let topo = root.join("cluster.topo");
    write_topology(
        &topo,
        &[
            vec![node0.addr.clone()],
            vec![node1.addr.clone(), standby.clone()],
        ],
        "probe-timeout-ms 500\nping-interval-ms 100\nping-timeout-ms 100\ndown-after 1\n",
    );
    let router = spawn_router(&topo);
    let mut client = connect(&router.addr);

    let w = vec![0.5, 0.5];
    let k = 10;
    let weights = Weights::new(w.clone()).unwrap();
    let full_ids = survivor_oracle(&rel, p, &[]).topk(&weights, k).0;
    let survivor_ids = survivor_oracle(&rel, p, &[1]).topk(&weights, k).0;

    let reply = client.query(&w, k as u32, 0, 0).unwrap();
    assert_eq!(reply.ids, full_ids, "healthy baseline");

    node1.kill9();
    let reply = client.query(&w, k as u32, 0, 0).unwrap();
    assert_eq!(
        reply.ids, survivor_ids,
        "degraded ids are the exact survivor-partition top-k"
    );
    assert_eq!(reply.truncated, 0, "degraded is not truncated");
    let cov = reply.coverage.expect("reply names the dead shard");
    assert_eq!(cov.skipped(), vec![1]);

    // The CLI honors the partial-answer contract across the wire.
    let (code, _) = run_cli(&[
        "query",
        "--connect",
        &router.addr,
        "--weights",
        "0.5,0.5",
        "--k",
        "10",
    ]);
    assert_eq!(code, 4, "degraded coverage without --partial exits 4");
    let (code, out) = run_cli(&[
        "query",
        "--connect",
        &router.addr,
        "--weights",
        "0.5,0.5",
        "--k",
        "10",
        "--partial",
    ]);
    assert_eq!(code, 0, "--partial accepts degraded coverage");
    assert!(out.contains("DEGRADED coverage"), "{out}");

    // Once the pinger cordons the shard, health says so and exits 1.
    await_metrics(&mut client, "shard 1 cordoned", |text| {
        text.contains("drtopk_shard_health{shard=\"1\"} 2")
    });
    let (code, _) = run_cli(&["health", "--connect", &router.addr]);
    assert_eq!(code, 1, "health exits non-zero while a shard is Down");

    // Rejoin: bring a node up on the standby endpoint the topology
    // already lists. The pinger re-admits the shard; answers return to
    // the full oracle without touching the router.
    let _standby_node = spawn_shard_node(&root, 1, &standby);
    await_metrics(&mut client, "shard 1 rejoined", |text| {
        text.contains("drtopk_shard_health{shard=\"1\"} 0")
    });
    let reply = client.query(&w, k as u32, 0, 0).unwrap();
    assert_eq!(reply.ids, full_ids, "post-rejoin bit-identity");
    assert!(reply.is_full_coverage(), "post-rejoin coverage");
    let (code, out) = run_cli(&["health", "--connect", &router.addr]);
    assert_eq!(code, 0, "health exits 0 after rejoin:\n{out}");

    let _ = fs::remove_dir_all(&root);
}

/// SIGSTOP mid-traffic: the stalled primary accepts TCP but answers
/// nothing — probes must time out inside their carved window and hedge
/// or fail over to the replica, bit-identically; after SIGCONT the
/// pinger restores the endpoint.
#[test]
fn sigstop_stall_fails_over_and_recovers() {
    let root = tmpdir("sigstop");
    let replica_root = root.join("replicas");
    let rel = make_deployment(&root, 1, 250, 19);
    seed_replica(&root, &replica_root, 0);

    let primary = spawn_shard_node(&root, 0, "127.0.0.1:0");
    let replica = spawn_shard_node(&replica_root, 0, "127.0.0.1:0");
    let topo = root.join("cluster.topo");
    write_topology(
        &topo,
        &[vec![primary.addr.clone(), replica.addr.clone()]],
        "probe-timeout-ms 200\nhedge-ms 100\nping-interval-ms 100\nping-timeout-ms 100\n",
    );
    let router = spawn_router(&topo);
    let mut client = connect(&router.addr);

    let w = vec![0.6, 0.4];
    let k = 10;
    let weights = Weights::new(w.clone()).unwrap();
    let oracle_ids = survivor_oracle(&rel, 1, &[]).topk(&weights, k).0;

    let reply = client.query(&w, k as u32, 0, 0).unwrap();
    assert_eq!(reply.ids, oracle_ids, "healthy baseline");

    primary.signal("-STOP");
    for round in 0..4 {
        let reply = client.query(&w, k as u32, 0, 0).unwrap();
        assert_eq!(
            reply.ids, oracle_ids,
            "round {round}: stall costs a failover, not an answer"
        );
        assert!(reply.is_full_coverage(), "round {round}");
    }
    let primary_addr = primary.addr.clone();
    await_metrics(&mut client, "stalled endpoint marked down", |text| {
        text.lines()
            .any(|l| l.contains(&format!("addr=\"{primary_addr}\"")) && l.ends_with(" 0"))
    });

    primary.signal("-CONT");
    await_metrics(&mut client, "woken endpoint restored", |text| {
        text.lines()
            .any(|l| l.contains(&format!("addr=\"{primary_addr}\"")) && l.ends_with(" 1"))
    });
    let reply = client.query(&w, k as u32, 0, 0).unwrap();
    assert_eq!(reply.ids, oracle_ids, "post-wake bit-identity");

    let _ = fs::remove_dir_all(&root);
}

/// Rots one byte in the middle of `path`. Additive, not an XOR flip:
/// corrupting an already-corrupted file must not restore it.
fn corrupt(path: &Path) {
    let mut bytes = fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    fs::write(path, bytes).unwrap();
}

fn snapshots(dir: &Path) -> Vec<PathBuf> {
    let mut snaps: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|f| {
            f.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snapshot."))
        })
        .collect();
    snaps.sort();
    snaps
}

/// A rotted newest snapshot is repaired offline by `drtopk recover`
/// (falling back to the previous generation + WAL, rewriting a clean
/// checkpoint), after which the shard node serves bit-identical
/// answers; a directory with *every* snapshot trashed refuses to serve
/// with exit 3 — never wrong answers.
#[test]
fn corrupt_snapshot_recovers_or_refuses() {
    let root = tmpdir("corrupt");
    let rel = WorkloadSpec::new(Distribution::Independent, 2, 250, 31).generate();
    {
        // Give shard 0 history: generation 0 plus a checkpoint.
        let mut stores = create_sharded(&root, &rel, 1, &DurableOptions::default()).unwrap();
        stores[0].checkpoint().unwrap();
    }
    let dir = shard_dir(&root, 0);
    let snaps = snapshots(&dir);
    assert!(
        snaps.len() >= 2,
        "need a fallback generation, got {snaps:?}"
    );
    corrupt(snaps.last().unwrap());

    // Offline repair from the shard's own directory.
    let (code, _) = run_cli(&["recover", "--dir", root.to_str().unwrap(), "--shard", "0"]);
    assert_eq!(code, 0, "recover repairs a rotted newest snapshot");

    let node = spawn_shard_node(&root, 0, "127.0.0.1:0");
    let topo = root.join("cluster.topo");
    write_topology(&topo, &[vec![node.addr.clone()]], "");
    let router = spawn_router(&topo);
    let mut client = connect(&router.addr);
    let w = vec![0.5, 0.5];
    let weights = Weights::new(w.clone()).unwrap();
    let oracle_ids = survivor_oracle(&rel, 1, &[]).topk(&weights, 10).0;
    let reply = client.query(&w, 10, 0, 0).unwrap();
    assert_eq!(reply.ids, oracle_ids, "post-recover bit-identity");
    node.kill9();

    // Beyond recovery: every snapshot rotted. The node must refuse to
    // start (exit 3, the corrupt-data code) instead of serving garbage.
    for snap in snapshots(&dir) {
        corrupt(&snap);
    }
    let out = Command::new(bin())
        .args([
            "serve",
            "--shard-dir",
            root.to_str().unwrap(),
            "--shard-id",
            "0",
            "--addr",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "unrecoverable shard dir must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = fs::remove_dir_all(&root);
}

/// `drtopk topology check` validates without serving: OK on a sound
/// file, usage-class rejection on a broken one.
#[test]
fn topology_check_validates_files() {
    let dir = tmpdir("topocheck");
    fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.topo");
    fs::write(
        &good,
        "dims 2\nshard 0 127.0.0.1:7001 127.0.0.1:7101\nshard 1 127.0.0.1:7002\n",
    )
    .unwrap();
    let (code, out) = run_cli(&["topology", "check", good.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("OK") && out.contains("2 shard(s)"), "{out}");

    let bad = dir.join("bad.topo");
    fs::write(
        &bad,
        "dims 2\nshard 0 127.0.0.1:7001\nshard 2 127.0.0.1:7002\n",
    )
    .unwrap();
    let (code, _) = run_cli(&["topology", "check", bad.to_str().unwrap()]);
    assert_ne!(code, 0, "a shard-id gap must be rejected");

    let (code, _) = run_cli(&["topology", "check"]);
    assert_eq!(code, 2, "missing file is a usage error");

    let _ = fs::remove_dir_all(&dir);
}
