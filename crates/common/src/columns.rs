//! Column-major (SoA) mirror of a [`Relation`] with a fused scoring kernel.
//!
//! The traversal engine scores tuples in blocks — a seed set or a batch of
//! newly freed nodes per pop — and the row-major [`Relation`] layout makes
//! that a strided gather per attribute. [`Columns`] transposes the data
//! once at build time so [`Columns::score_block`] can sweep one contiguous
//! column per dimension with an auto-vectorizable inner loop.
//!
//! Bit-identity contract: for every id, `score_block` produces *exactly*
//! the `f64` that [`Weights::score`] produces on the same row — the kernel
//! accumulates per row in the same dimension order (`0.0 + w_0·x_0 +
//! w_1·x_1 + …`), so batching never perturbs score-based orderings.

use crate::relation::Relation;
use crate::weights::Weights;

/// Column-major copy of a set of rows (a relation, optionally followed by
/// extra rows such as pseudo-tuples).
#[derive(Debug, Clone, PartialEq)]
pub struct Columns {
    dims: usize,
    len: usize,
    /// Column j occupies `data[j*len .. (j+1)*len]`.
    data: Vec<f64>,
}

impl Columns {
    /// Transposes a relation into column-major layout.
    pub fn from_relation(rel: &Relation) -> Self {
        Columns::from_flat_rows(rel.dims(), rel.flat())
    }

    /// Transposes a relation followed by extra row-major rows (the index's
    /// zero-layer pseudo-tuples), so node ids `0..n+p` index directly.
    ///
    /// # Panics
    /// Panics if `extra.len()` is not a multiple of the relation's arity.
    pub fn from_relation_with_extra(rel: &Relation, extra: &[f64]) -> Self {
        let dims = rel.dims();
        assert_eq!(
            extra.len() % dims,
            0,
            "extra rows must match the relation's arity"
        );
        let n = rel.len();
        let p = extra.len() / dims;
        let len = n + p;
        let mut data = vec![0.0; dims * len];
        if len == 0 {
            return Columns { dims, len, data };
        }
        for (j, col) in data.chunks_exact_mut(len).enumerate() {
            let (real, pseudo) = col.split_at_mut(n);
            for (i, v) in real.iter_mut().enumerate() {
                *v = rel.flat()[i * dims + j];
            }
            for (i, v) in pseudo.iter_mut().enumerate() {
                *v = extra[i * dims + j];
            }
        }
        Columns { dims, len, data }
    }

    /// Transposes a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dims` is zero or `rows.len()` is not a multiple of it.
    pub fn from_flat_rows(dims: usize, rows: &[f64]) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert_eq!(
            rows.len() % dims,
            0,
            "flat buffer length must be a multiple of dims"
        );
        let len = rows.len() / dims;
        let mut data = vec![0.0; rows.len()];
        if len == 0 {
            return Columns { dims, len, data };
        }
        for (j, col) in data.chunks_exact_mut(len).enumerate() {
            for (i, v) in col.iter_mut().enumerate() {
                *v = rows[i * dims + j];
            }
        }
        Columns { dims, len, data }
    }

    /// Number of attributes per row.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows attribute column `j`.
    ///
    /// # Panics
    /// Panics if `j >= dims`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.len..(j + 1) * self.len]
    }

    /// Scores rows `ids` under `w` into `out` (resized to `ids.len()`):
    /// `out[p] = F(row ids[p])`, bit-identical to [`Weights::score`] per row.
    ///
    /// Dispatches once per block on `dims`: for d ≤ 8 an unrolled fixed-d
    /// kernel processes ids in 4-wide blocks with an array-of-lanes
    /// accumulator (a shape the compiler reliably vectorizes); higher
    /// dimensionalities fall back to the generic column sweep. Every path
    /// accumulates per row in the same dimension order (`0.0 + w₀x₀ + w₁x₁
    /// + …`), so the result is bitwise independent of the kernel chosen.
    ///
    /// # Panics
    /// Panics if `w`'s dimensionality differs or any id is out of range.
    pub fn score_block(&self, w: &Weights, ids: &[u32], out: &mut Vec<f64>) {
        assert_eq!(w.dims(), self.dims, "weight dimensionality mismatch");
        out.clear();
        out.resize(ids.len(), 0.0);
        match self.dims {
            1 => self.score_block_fixed::<1>(w, ids, out),
            2 => self.score_block_fixed::<2>(w, ids, out),
            3 => self.score_block_fixed::<3>(w, ids, out),
            4 => self.score_block_fixed::<4>(w, ids, out),
            5 => self.score_block_fixed::<5>(w, ids, out),
            6 => self.score_block_fixed::<6>(w, ids, out),
            7 => self.score_block_fixed::<7>(w, ids, out),
            8 => self.score_block_fixed::<8>(w, ids, out),
            _ => self.score_block_generic(w, ids, out),
        }
    }

    /// Fixed-dimensionality kernel: ids are consumed in 4-wide blocks, each
    /// block held in an array-of-lanes accumulator whose per-lane update is
    /// fully unrolled over `D`. Each lane's sum is built in dimension order
    /// starting from `0.0`, matching the scalar fold bit-for-bit (products
    /// are non-negative, so `0.0 + p` is bitwise `p`).
    fn score_block_fixed<const D: usize>(&self, w: &Weights, ids: &[u32], out: &mut [f64]) {
        debug_assert_eq!(self.dims, D);
        let mut ws = [0.0f64; D];
        ws.copy_from_slice(w.as_slice());
        let len = self.len;
        let data = &self.data[..];
        let mut id_blocks = ids.chunks_exact(4);
        let mut out_blocks = out.chunks_exact_mut(4);
        for (idb, ob) in (&mut id_blocks).zip(&mut out_blocks) {
            let rows = [
                idb[0] as usize,
                idb[1] as usize,
                idb[2] as usize,
                idb[3] as usize,
            ];
            let mut acc = [0.0f64; 4];
            for j in 0..D {
                let col = &data[j * len..(j + 1) * len];
                for l in 0..4 {
                    acc[l] += ws[j] * col[rows[l]];
                }
            }
            ob.copy_from_slice(&acc);
        }
        for (&id, o) in id_blocks
            .remainder()
            .iter()
            .zip(out_blocks.into_remainder())
        {
            let row = id as usize;
            let mut acc = 0.0f64;
            for (j, &wj) in ws.iter().enumerate() {
                acc += wj * data[j * len + row];
            }
            *o = acc;
        }
    }

    /// Generic column sweep for dimensionalities above the unrolled range:
    /// the first dimension initializes the accumulators, each further
    /// dimension does a fused gather-multiply-add over one contiguous
    /// column.
    fn score_block_generic(&self, w: &Weights, ids: &[u32], out: &mut [f64]) {
        for (j, &wj) in w.as_slice().iter().enumerate() {
            let col = self.col(j);
            if j == 0 {
                for (o, &id) in out.iter_mut().zip(ids) {
                    // Matches the scalar iterator-sum fold, which starts
                    // at 0.0: products here are non-negative, so 0.0 + p
                    // is bitwise p.
                    *o = wj * col[id as usize];
                }
            } else {
                for (o, &id) in out.iter_mut().zip(ids) {
                    *o += wj * col[id as usize];
                }
            }
        }
    }

    /// Scores a single row, through the same per-row accumulation order as
    /// [`Columns::score_block`].
    pub fn score_one(&self, w: &Weights, id: u32) -> f64 {
        assert_eq!(w.dims(), self.dims, "weight dimensionality mismatch");
        let mut acc = 0.0;
        for (j, &wj) in w.as_slice().iter().enumerate() {
            acc += wj * self.col(j)[id as usize];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_relation(rng: &mut StdRng, d: usize, n: usize) -> Relation {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0f64)).collect())
            .collect();
        Relation::from_rows(d, &rows).unwrap()
    }

    #[test]
    fn transpose_roundtrip() {
        let rel =
            Relation::from_rows(2, &[vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]).unwrap();
        let cols = Columns::from_relation(&rel);
        assert_eq!((cols.dims(), cols.len()), (2, 3));
        assert_eq!(cols.col(0), &[0.1, 0.3, 0.5]);
        assert_eq!(cols.col(1), &[0.2, 0.4, 0.6]);
    }

    #[test]
    fn kernel_matches_scalar_bit_for_bit() {
        // The satellite contract: score_block == Weights::score to the last
        // bit, across every unrolled dispatch arm (d = 1..=8) plus the
        // generic fallback (d = 9, 10), and across block lengths that do
        // and do not divide the 4-wide lane width.
        let mut rng = StdRng::seed_from_u64(0xC0);
        for d in 1..=10 {
            for n in [61usize, 64] {
                let rel = random_relation(&mut rng, d, n);
                let cols = Columns::from_relation(&rel);
                let w = Weights::random(d, &mut rng);
                let ids: Vec<u32> = (0..rel.len() as u32).collect();
                let mut out = Vec::new();
                cols.score_block(&w, &ids, &mut out);
                for (&id, &got) in ids.iter().zip(&out) {
                    let want = w.score(rel.tuple(id));
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "d={d} n={n} id={id}: {got} vs {want}"
                    );
                    assert_eq!(cols.score_one(&w, id).to_bits(), want.to_bits());
                }
            }
        }
    }

    #[test]
    fn fixed_and_generic_kernels_agree_bitwise() {
        // The unrolled kernels must be a pure reordering of *loads*, never
        // of per-row accumulation: force both paths over the same data.
        let mut rng = StdRng::seed_from_u64(0xC3);
        for d in 1..=8 {
            let rel = random_relation(&mut rng, d, 37);
            let cols = Columns::from_relation(&rel);
            let w = Weights::random(d, &mut rng);
            let ids: Vec<u32> = (0..rel.len() as u32).rev().collect();
            let mut fixed = vec![0.0; ids.len()];
            let mut generic = vec![0.0; ids.len()];
            match d {
                1 => cols.score_block_fixed::<1>(&w, &ids, &mut fixed),
                2 => cols.score_block_fixed::<2>(&w, &ids, &mut fixed),
                3 => cols.score_block_fixed::<3>(&w, &ids, &mut fixed),
                4 => cols.score_block_fixed::<4>(&w, &ids, &mut fixed),
                5 => cols.score_block_fixed::<5>(&w, &ids, &mut fixed),
                6 => cols.score_block_fixed::<6>(&w, &ids, &mut fixed),
                7 => cols.score_block_fixed::<7>(&w, &ids, &mut fixed),
                8 => cols.score_block_fixed::<8>(&w, &ids, &mut fixed),
                _ => unreachable!(),
            }
            cols.score_block_generic(&w, &ids, &mut generic);
            for (a, b) in fixed.iter().zip(&generic) {
                assert_eq!(a.to_bits(), b.to_bits(), "d={d}");
            }
        }
    }

    #[test]
    fn kernel_handles_duplicate_and_unordered_ids() {
        let mut rng = StdRng::seed_from_u64(0xC1);
        let rel = random_relation(&mut rng, 3, 32);
        let cols = Columns::from_relation(&rel);
        let w = Weights::random(3, &mut rng);
        let ids = [7u32, 7, 0, 31, 7, 2, 2];
        let mut out = Vec::new();
        cols.score_block(&w, &ids, &mut out);
        assert_eq!(out.len(), ids.len());
        for (&id, &got) in ids.iter().zip(&out) {
            assert_eq!(got.to_bits(), w.score(rel.tuple(id)).to_bits());
        }
    }

    #[test]
    fn extra_rows_are_addressable_past_n() {
        let rel = Relation::from_rows(2, &[vec![0.1, 0.9], vec![0.5, 0.5]]).unwrap();
        let extra = [0.2, 0.3, 0.8, 0.7]; // two pseudo rows
        let cols = Columns::from_relation_with_extra(&rel, &extra);
        assert_eq!(cols.len(), 4);
        let w = Weights::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(
            cols.score_one(&w, 2).to_bits(),
            w.score(&[0.2, 0.3]).to_bits()
        );
        assert_eq!(
            cols.score_one(&w, 3).to_bits(),
            w.score(&[0.8, 0.7]).to_bits()
        );
    }

    #[test]
    fn empty_block_and_empty_columns() {
        let cols = Columns::from_flat_rows(3, &[]);
        assert!(cols.is_empty());
        let w = Weights::uniform(3);
        let mut out = vec![1.0; 5];
        cols.score_block(&w, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reuses_output_capacity() {
        let mut rng = StdRng::seed_from_u64(0xC2);
        let rel = random_relation(&mut rng, 2, 16);
        let cols = Columns::from_relation(&rel);
        let w = Weights::uniform(2);
        let mut out = Vec::new();
        cols.score_block(&w, &[0, 1, 2, 3], &mut out);
        let cap = out.capacity();
        cols.score_block(&w, &[4, 5], &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.capacity() >= cap.min(4));
    }
}
