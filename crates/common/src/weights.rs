//! Weight vectors and linear scoring functions.
//!
//! The paper assumes scoring functions are linear combinations
//! `F(t) = Σ w_i t_i` with `w_i > 0` and `Σ w_i = 1` (Section II); such
//! functions are monotone, which all layer-based indexes rely on.

use crate::error::Error;
use rand::Rng;

/// A validated, normalized weight vector defining a linear scoring function.
#[derive(Debug, Clone, PartialEq)]
pub struct Weights {
    w: Vec<f64>,
}

impl Weights {
    /// Validates and normalizes a weight vector: all entries must be finite
    /// and strictly positive; entries are rescaled so they sum to 1.
    pub fn new(w: Vec<f64>) -> Result<Self, Error> {
        if w.is_empty() {
            return Err(Error::InvalidWeights("empty weight vector".into()));
        }
        let mut sum = 0.0;
        for &x in &w {
            if !x.is_finite() || x <= 0.0 {
                return Err(Error::InvalidWeights(format!(
                    "entry {x} must be finite and > 0"
                )));
            }
            sum += x;
        }
        if sum <= 0.0 || !sum.is_finite() {
            return Err(Error::InvalidWeights(format!("weight sum {sum} invalid")));
        }
        let w = w.into_iter().map(|x| x / sum).collect();
        Ok(Weights { w })
    }

    /// The uniform weight vector `(1/d, …, 1/d)`.
    pub fn uniform(dims: usize) -> Self {
        Weights {
            w: vec![1.0 / dims as f64; dims],
        }
    }

    /// Samples a random weight vector with `0 < w_i < 1` and `Σ w_i = 1`,
    /// as in the paper's experimental settings (Section VI-A).
    ///
    /// Uses the standard symmetric Dirichlet(1) construction: d independent
    /// exponentials normalized by their sum, so the vector is uniform on the
    /// open probability simplex.
    pub fn random<R: Rng + ?Sized>(dims: usize, rng: &mut R) -> Self {
        loop {
            let raw: Vec<f64> = (0..dims)
                .map(|_| -f64::ln(rng.gen_range(f64::MIN_POSITIVE..1.0)))
                .collect();
            let sum: f64 = raw.iter().sum();
            if sum > 0.0 && raw.iter().all(|&x| x > 0.0) {
                return Weights {
                    w: raw.into_iter().map(|x| x / sum).collect(),
                };
            }
        }
    }

    /// Dimensionality of the weight vector.
    #[inline]
    pub fn dims(&self) -> usize {
        self.w.len()
    }

    /// Borrows the normalized weight entries.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// Evaluates the scoring function `F(t) = Σ w_i t_i`.
    #[inline]
    pub fn score(&self, t: &[f64]) -> f64 {
        debug_assert_eq!(t.len(), self.w.len());
        self.w.iter().zip(t).map(|(w, x)| w * x).sum()
    }
}

/// A total order over `(score, tuple-id)` pairs for deterministic tie
/// breaking, as the paper assumes ties are broken by tuple identifiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredTuple {
    /// The tuple's score under some weight vector.
    pub score: f64,
    /// The scored tuple.
    pub id: crate::relation::TupleId,
}

impl Eq for ScoredTuple {}

impl PartialOrd for ScoredTuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredTuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Scores produced by Weights::score on [0,1]^d inputs are finite.
        self.score
            .partial_cmp(&other.score)
            .expect("scores must be comparable (no NaN)")
            .then_with(|| self.id.cmp(&other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes() {
        let w = Weights::new(vec![2.0, 2.0]).unwrap();
        assert_eq!(w.as_slice(), &[0.5, 0.5]);
        assert!((w.score(&[0.2, 0.4]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(Weights::new(vec![]).is_err());
        assert!(Weights::new(vec![1.0, 0.0]).is_err());
        assert!(Weights::new(vec![1.0, -1.0]).is_err());
        assert!(Weights::new(vec![1.0, f64::NAN]).is_err());
        assert!(Weights::new(vec![1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn random_is_on_simplex() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in 2..=6 {
            let w = Weights::random(d, &mut rng);
            assert_eq!(w.dims(), d);
            let sum: f64 = w.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(w.as_slice().iter().all(|&x| x > 0.0 && x < 1.0));
        }
    }

    #[test]
    fn scored_tuple_ordering_breaks_ties_by_id() {
        let a = ScoredTuple { score: 0.5, id: 2 };
        let b = ScoredTuple { score: 0.5, id: 1 };
        let c = ScoredTuple { score: 0.4, id: 9 };
        let mut v = [a, b, c];
        v.sort();
        assert_eq!(v.map(|s| s.id), [9, 1, 2]);
    }

    #[test]
    fn toy_example_scores() {
        // Example 1: F(a) = 3.5 on the unnormalized grid, i.e. 0.35 on
        // normalized coordinates with w = (0.5, 0.5).
        let r = crate::relation::toy_dataset();
        let w = Weights::uniform(2);
        let fa = w.score(r.tuple(crate::relation::toy_id('a')));
        assert!((fa - 0.35).abs() < 1e-12);
    }
}
