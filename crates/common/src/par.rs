//! Shared scoped-thread fan-out used by the parallel build phases, the
//! incremental skyline peel, and the batch query executor.
//!
//! All callers need the same shape: map a function over a slice of
//! independent work items, one contiguous chunk per worker, writing each
//! result into its item's slot so output order equals input order — which
//! makes every parallel pass deterministic by construction. Build phases
//! use stateless workers ([`parallel_map`]); the batch executor threads a
//! per-worker state through every call ([`parallel_map_with`]).

/// Resolves a requested worker count: `0` means "all available cores",
/// anything else is taken literally but clamped to the host's cores
/// (these workers are CPU-bound — oversubscription is pure scheduler
/// overhead), and the result never exceeds the number of items.
pub fn resolve_workers(requested: usize, items: usize) -> usize {
    resolve_workers_chunked(requested, items, 1)
}

/// Like [`resolve_workers`], but additionally guarantees every worker a
/// chunk of at least `min_chunk` items: small batches collapse onto fewer
/// workers instead of paying per-thread spawn cost for a handful of items.
pub fn resolve_workers_chunked(requested: usize, items: usize, min_chunk: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let workers = if requested == 0 {
        cores
    } else {
        requested.min(cores)
    };
    workers
        .min(items)
        .min(items.div_ceil(min_chunk.max(1)))
        .max(1)
}

/// Maps `f` over `items` using scoped threads, one contiguous chunk per
/// worker, preserving order. `threads = 0` uses all available cores.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: &(dyn Fn(&T) -> R + Sync),
) -> Vec<R> {
    parallel_map_with(items, threads, &|| (), &|(), item| f(item))
}

/// Like [`parallel_map`], but each worker thread first builds one state
/// with `init` and reuses it across every item of its chunk — the batch
/// executor's scratch pool. `threads = 0` uses all available cores.
///
/// Order is preserved: result `i` always comes from item `i`, regardless
/// of thread count, so callers get deterministic output by construction.
pub fn parallel_map_with<T: Sync, R: Send, S>(
    items: &[T],
    threads: usize,
    init: &(dyn Fn() -> S + Sync),
    f: &(dyn Fn(&mut S, &T) -> R + Sync),
) -> Vec<R> {
    parallel_map_chunked(items, threads, 1, init, f)
}

/// The general form: `min_chunk` sets the smallest number of items worth
/// giving one worker (see [`resolve_workers_chunked`]). The batch executor
/// uses this to amortize thread spawn over whole request chunks.
pub fn parallel_map_chunked<T: Sync, R: Send, S>(
    items: &[T],
    threads: usize,
    min_chunk: usize,
    init: &(dyn Fn() -> S + Sync),
    f: &(dyn Fn(&mut S, &T) -> R + Sync),
) -> Vec<R> {
    let workers = resolve_workers_chunked(threads, items.len(), min_chunk);
    if workers <= 1 || items.len() <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<R>] = &mut out;
        let mut offset = 0;
        let mut handles = Vec::new();
        while offset < items.len() {
            let take = chunk.min(items.len() - offset);
            let (slice, tail) = rest.split_at_mut(take);
            rest = tail;
            let items_chunk = &items[offset..offset + take];
            handles.push(scope.spawn(move || {
                let mut state = init();
                for (slot, item) in slice.iter_mut().zip(items_chunk) {
                    *slot = Some(f(&mut state, item));
                }
            }));
            offset += take;
        }
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let out = parallel_map(&items, 0, &|&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, 0, &|&x: &usize| x).is_empty());
        assert_eq!(parallel_map(&[7usize], 0, &|&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_with_threads_one_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 8, 64] {
            let inits = AtomicUsize::new(0);
            let out = parallel_map_with(
                &items,
                threads,
                &|| {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize // per-worker counter: items seen so far
                },
                &|seen, &x| {
                    *seen += 1;
                    x + 1
                },
            );
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
            let states = inits.load(Ordering::Relaxed);
            assert!(
                states <= resolve_workers(threads, items.len()),
                "threads={threads}: {states} states"
            );
            assert!(states >= 1);
        }
    }

    #[test]
    fn resolve_workers_clamps() {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        assert_eq!(resolve_workers(8, 3), 3.min(cores.min(8)));
        assert_eq!(resolve_workers(2, 100), 2.min(cores));
        assert_eq!(resolve_workers(0, 0), 1);
        assert!(resolve_workers(0, 1000) >= 1);
        assert!(resolve_workers(64, 1000) <= cores, "never oversubscribe");
    }

    #[test]
    fn min_chunk_collapses_small_batches() {
        // 3 items with an 8-item minimum chunk: one worker, no spawning.
        assert_eq!(resolve_workers_chunked(4, 3, 8), 1);
        assert_eq!(
            resolve_workers_chunked(4, 16, 8),
            2.min(resolve_workers(4, 16))
        );
        // min_chunk = 0 is treated as 1 (no division by zero).
        assert_eq!(resolve_workers_chunked(1, 5, 0), 1);
        let out = parallel_map_chunked(&[1, 2, 3], 4, 8, &|| (), &|(), &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
