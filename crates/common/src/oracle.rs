//! Brute-force top-k oracle used for differential testing.

use crate::relation::{Relation, TupleId};
use crate::weights::{ScoredTuple, Weights};

/// Computes the exact top-k answer (Definition 1) by scoring every tuple.
///
/// Returns tuple ids ordered by `(score, id)` ascending; ties are broken by
/// tuple identifier, matching the paper's tie-break assumption. If `k`
/// exceeds the cardinality, all tuples are returned.
pub fn topk_bruteforce(r: &Relation, w: &Weights, k: usize) -> Vec<TupleId> {
    assert_eq!(r.dims(), w.dims(), "weight dimensionality mismatch");
    let mut scored: Vec<ScoredTuple> = r
        .iter()
        .map(|(id, t)| ScoredTuple {
            score: w.score(t),
            id,
        })
        .collect();
    let k = k.min(scored.len());
    if k == 0 {
        return Vec::new();
    }
    scored.select_nth_unstable(k - 1);
    scored.truncate(k);
    scored.sort_unstable();
    scored.into_iter().map(|s| s.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{toy_dataset, toy_id};

    #[test]
    fn toy_top5_matches_example_1() {
        // Example 1: Alice's top-5 with w = (0.5, 0.5) is {a, b, f, d, e}.
        let r = toy_dataset();
        let w = Weights::uniform(2);
        let got = topk_bruteforce(&r, &w, 5);
        let want: Vec<TupleId> = ['a', 'b', 'f', 'd', 'e']
            .iter()
            .map(|&c| toy_id(c))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn k_larger_than_n() {
        let r = toy_dataset();
        let w = Weights::uniform(2);
        assert_eq!(topk_bruteforce(&r, &w, 100).len(), 11);
        assert!(topk_bruteforce(&r, &w, 0).is_empty());
    }

    #[test]
    fn order_is_by_score_then_id() {
        let r = Relation::from_rows(2, &[vec![0.5, 0.5], vec![0.5, 0.5], vec![0.1, 0.1]]).unwrap();
        let w = Weights::uniform(2);
        assert_eq!(topk_bruteforce(&r, &w, 3), vec![2, 0, 1]);
    }
}
