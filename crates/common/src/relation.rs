//! Flat, cache-friendly storage for the target relation.
//!
//! Tuples are stored row-major in one `Vec<f64>`; a tuple is addressed by its
//! [`TupleId`] (its position in insertion order). All index structures in the
//! workspace reference tuples by id and borrow attribute slices from the
//! relation, so tuple payloads are never copied into the indexes.

use crate::error::Error;

/// Identifier of a tuple: its zero-based insertion position in the relation.
///
/// `u32` keeps edge lists and layer tables compact; relations with more than
/// `u32::MAX` tuples are rejected at construction.
pub type TupleId = u32;

/// An immutable multi-attribute relation over `[0,1]^d`.
///
/// Attribute values are assumed normalized to `[0,1]` as in the paper
/// (Section II); [`Relation::from_rows`] validates this, while
/// [`Relation::from_flat_unchecked`] skips validation for trusted synthetic
/// data.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    dims: usize,
    data: Vec<f64>,
}

impl Relation {
    /// Creates an empty relation with `dims` attributes.
    pub fn new(dims: usize) -> Result<Self, Error> {
        if dims == 0 {
            return Err(Error::InvalidDimension(0));
        }
        Ok(Relation {
            dims,
            data: Vec::new(),
        })
    }

    /// Builds a relation from rows, validating arity and value range.
    pub fn from_rows(dims: usize, rows: &[Vec<f64>]) -> Result<Self, Error> {
        let mut r = Relation::new(dims)?;
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dims {
                return Err(Error::DimensionMismatch {
                    expected: dims,
                    got: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(Error::InvalidValue {
                        tuple: i,
                        dim: j,
                        value: v,
                    });
                }
            }
            r.data.extend_from_slice(row);
        }
        r.check_len()?;
        Ok(r)
    }

    /// Builds a relation from a flat row-major buffer, validating shape and
    /// value range like [`Relation::from_rows`]. Use this for untrusted
    /// input (decoded files, CLI ingest); [`Relation::from_flat_unchecked`]
    /// is for trusted synthetic data only.
    pub fn from_flat(dims: usize, data: Vec<f64>) -> Result<Self, Error> {
        if dims == 0 {
            return Err(Error::InvalidDimension(0));
        }
        if !data.len().is_multiple_of(dims) {
            return Err(Error::DimensionMismatch {
                expected: dims,
                got: data.len() % dims,
            });
        }
        for (i, &v) in data.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(Error::InvalidValue {
                    tuple: i / dims,
                    dim: i % dims,
                    value: v,
                });
            }
        }
        let r = Relation { dims, data };
        r.check_len()?;
        Ok(r)
    }

    /// Builds a relation from a flat row-major buffer without range checks.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dims` or if the tuple
    /// count exceeds `u32::MAX`.
    pub fn from_flat_unchecked(dims: usize, data: Vec<f64>) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert_eq!(
            data.len() % dims,
            0,
            "flat buffer length must be a multiple of dims"
        );
        assert!(
            data.len() / dims <= u32::MAX as usize,
            "too many tuples for u32 ids"
        );
        Relation { dims, data }
    }

    /// Number of attributes `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cardinality `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the attribute values of tuple `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> &[f64] {
        let s = id as usize * self.dims;
        &self.data[s..s + self.dims]
    }

    /// Appends a tuple, returning its id.
    pub fn push(&mut self, row: &[f64]) -> Result<TupleId, Error> {
        if row.len() != self.dims {
            return Err(Error::DimensionMismatch {
                expected: self.dims,
                got: row.len(),
            });
        }
        let id = self.len();
        self.data.extend_from_slice(row);
        self.check_len()?;
        Ok(id as TupleId)
    }

    /// Iterates over `(id, values)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[f64])> {
        self.data
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, t)| (i as TupleId, t))
    }

    /// Borrows the whole row-major backing buffer.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    fn check_len(&self) -> Result<(), Error> {
        if self.len() > u32::MAX as usize {
            return Err(Error::InvalidDimension(self.len()));
        }
        Ok(())
    }
}

/// The paper's running example: the 11-tuple hotel dataset of Fig. 1.
///
/// Tuples are labeled `a..k` in the paper; here label `a` is id 0, `b` is
/// id 1, and so on. The coordinates below are chosen to satisfy *every*
/// structural fact the paper states about the toy dataset:
///
/// * `F(a) = 3.5` and top-5 = `{a,b,f,d,e}` for `w = (0.5, 0.5)` (Example 1);
/// * skyline layers `{a,b,c,f,g}`, `{d,e,i,j}`, `{h,k}` (Fig. 2a);
/// * convex layers `{a,b,c}`, `{d,f,g}`, `{e,j}`, `{h,i}`, `{k}` (Fig. 2b);
/// * fine sublayers `{{a,b,c},{f,g}}`, `{{d,e,j},{i}}`, `{{h,k}}` (Example 3);
/// * facet `{a,b}` is an EDS of `f`, facet `{b,c}` an EDS of `g` and not of
///   `f` (Examples 2–3);
/// * `a` ∀-dominates exactly `{d,e,i}`; `i`'s ∀-dominators are `{a,f}`;
///   `j`'s are `{b,g}` (Examples 3–4);
/// * the k = 3 query trace of Table III reproduces exactly, including the
///   priority-queue contents at every step.
pub fn toy_dataset() -> Relation {
    // (price, distance) grid positions for a..k, consistent with Fig. 1.
    const PTS: [[f64; 2]; 11] = [
        [1.0, 6.0], // a
        [3.0, 4.5], // b
        [8.0, 1.0], // c
        [1.5, 6.8], // d
        [2.2, 6.3], // e
        [2.5, 5.5], // f
        [6.5, 2.8], // g
        [7.5, 5.0], // h
        [2.7, 6.2], // i
        [7.0, 4.8], // j
        [5.0, 6.5], // k
    ];
    let rows: Vec<Vec<f64>> = PTS.iter().map(|p| vec![p[0] / 10.0, p[1] / 10.0]).collect();
    Relation::from_rows(2, &rows).expect("toy dataset is valid")
}

/// Returns the paper's label (`'a'..='k'`) for a toy-dataset tuple id.
pub fn toy_label(id: TupleId) -> char {
    (b'a' + id as u8) as char
}

/// Returns the toy-dataset tuple id for a paper label.
pub fn toy_id(label: char) -> TupleId {
    (label as u8 - b'a') as TupleId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut r = Relation::new(3).unwrap();
        assert!(r.is_empty());
        let a = r.push(&[0.1, 0.2, 0.3]).unwrap();
        let b = r.push(&[0.4, 0.5, 0.6]).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuple(1), &[0.4, 0.5, 0.6]);
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn rejects_bad_rows() {
        assert!(Relation::new(0).is_err());
        assert!(Relation::from_rows(2, &[vec![0.1]]).is_err());
        assert!(Relation::from_rows(2, &[vec![0.1, 1.5]]).is_err());
        assert!(Relation::from_rows(2, &[vec![0.1, f64::NAN]]).is_err());
        let mut r = Relation::new(2).unwrap();
        assert!(r.push(&[0.0]).is_err());
    }

    #[test]
    fn toy_dataset_matches_paper() {
        let r = toy_dataset();
        assert_eq!(r.len(), 11);
        assert_eq!(r.dims(), 2);
        assert_eq!(r.tuple(toy_id('a')), &[0.1, 0.6]);
        assert_eq!(r.tuple(toy_id('k')), &[0.5, 0.65]);
        assert_eq!(toy_label(5), 'f');
    }

    #[test]
    fn flat_roundtrip() {
        let r = Relation::from_flat_unchecked(2, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.flat(), &[0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn checked_from_flat_validates() {
        let r = Relation::from_flat(2, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(r.len(), 2);
        assert!(Relation::from_flat(0, vec![]).is_err());
        assert!(Relation::from_flat(2, vec![0.1]).is_err(), "ragged buffer");
        assert!(
            Relation::from_flat(2, vec![0.1, 1.5]).is_err(),
            "out-of-range value"
        );
        assert!(Relation::from_flat(2, vec![0.1, f64::NAN]).is_err());
        assert!(Relation::from_flat(2, vec![0.1, f64::INFINITY]).is_err());
        match Relation::from_flat(2, vec![0.1, 0.2, -0.5, 0.4]) {
            Err(Error::InvalidValue { tuple, dim, value }) => {
                assert_eq!((tuple, dim), (1, 0));
                assert_eq!(value, -0.5);
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
    }
}
