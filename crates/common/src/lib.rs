//! Shared foundations for the `drtopk` workspace.
//!
//! This crate holds everything the index structures and baselines have in
//! common: the flat [`Relation`] storage, linear [`Weights`] scoring,
//! [`dominance`] predicates, the synthetic workload generators from
//! Börzsönyi et al. (ICDE 2001) used in the paper's evaluation, the
//! brute-force top-k [`oracle`], and the [`cost::Cost`] counter that
//! implements the paper's evaluation metric (Definition 9: the number of
//! tuples accessed *and* scored during query processing).
#![warn(missing_docs)]

pub mod columns;
pub mod cost;
pub mod dominance;
pub mod error;
pub mod generator;
pub mod ingest;
pub mod oracle;
pub mod par;
pub mod relation;
pub mod weights;

pub use columns::Columns;
pub use cost::Cost;
pub use dominance::{dominates, dominates_eq, DomOrd};
pub use error::Error;
pub use generator::{Distribution, WorkloadSpec, ZipfWeightWorkload};
pub use ingest::{relation_from_csv, ColumnSpec, Direction, Normalizer};
pub use oracle::topk_bruteforce;
pub use relation::{Relation, TupleId};
pub use weights::Weights;

/// Tolerance used for floating-point comparisons on normalized data in
/// `[0,1]^d`. Strict predicates (dominance, score ordering) use exact
/// comparison; this constant is for validation of user inputs (weight sums).
pub const VALIDATION_EPS: f64 = 1e-9;
