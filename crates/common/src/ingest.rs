//! Ingesting real data: CSV parsing and attribute normalization.
//!
//! The index operates on minimization attributes normalized to `[0,1]`
//! (Section II of the paper). Real datasets come as raw columns where
//! larger is sometimes better (rating) and sometimes worse (price), on
//! arbitrary scales. [`ColumnSpec`] declares the direction per column;
//! [`Normalizer`] min-max rescales and flips so that *smaller is better*
//! holds everywhere, and can map normalized answers back to raw values.

use crate::error::Error;
use crate::relation::Relation;
use std::io::BufRead;

/// Preference direction of a raw column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller raw values are better (price, distance).
    LowerIsBetter,
    /// Larger raw values are better (rating, capacity); flipped during
    /// normalization.
    HigherIsBetter,
}

/// One attribute to extract from a raw record.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Zero-based column index in the CSV record.
    pub column: usize,
    /// Whether smaller or larger raw values are preferable.
    pub direction: Direction,
}

/// Min-max normalization state, kept so query answers can be explained in
/// raw units and new tuples normalized consistently.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    specs: Vec<(usize, Direction)>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Normalizer {
    /// Fits a normalizer over raw rows (each row = the selected attribute
    /// values, in spec order).
    pub fn fit(specs: &[ColumnSpec], rows: &[Vec<f64>]) -> Result<Self, Error> {
        let d = specs.len();
        if d == 0 {
            return Err(Error::InvalidDimension(0));
        }
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                return Err(Error::DimensionMismatch {
                    expected: d,
                    got: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(Error::InvalidValue {
                        tuple: i,
                        dim: j,
                        value: v,
                    });
                }
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        Ok(Normalizer {
            specs: specs.iter().map(|s| (s.column, s.direction)).collect(),
            mins,
            maxs,
        })
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.specs.len()
    }

    /// Normalizes one raw attribute row into `[0,1]^d`, smaller-is-better.
    /// Constant columns map to 0.5.
    pub fn normalize(&self, raw: &[f64]) -> Result<Vec<f64>, Error> {
        if raw.len() != self.dims() {
            return Err(Error::DimensionMismatch {
                expected: self.dims(),
                got: raw.len(),
            });
        }
        let mut out = Vec::with_capacity(raw.len());
        for (j, &v) in raw.iter().enumerate() {
            let span = self.maxs[j] - self.mins[j];
            let x = if span <= 0.0 {
                0.5
            } else {
                ((v - self.mins[j]) / span).clamp(0.0, 1.0)
            };
            out.push(match self.specs[j].1 {
                Direction::LowerIsBetter => x,
                Direction::HigherIsBetter => 1.0 - x,
            });
        }
        Ok(out)
    }

    /// Maps a normalized tuple back to raw attribute values.
    pub fn denormalize(&self, norm: &[f64]) -> Result<Vec<f64>, Error> {
        if norm.len() != self.dims() {
            return Err(Error::DimensionMismatch {
                expected: self.dims(),
                got: norm.len(),
            });
        }
        let mut out = Vec::with_capacity(norm.len());
        for (j, &x) in norm.iter().enumerate() {
            let x = match self.specs[j].1 {
                Direction::LowerIsBetter => x,
                Direction::HigherIsBetter => 1.0 - x,
            };
            out.push(self.mins[j] + x * (self.maxs[j] - self.mins[j]));
        }
        Ok(out)
    }
}

/// Reads a CSV (comma-separated, `#`-comments and blank lines skipped,
/// optional header auto-detected by non-numeric first row) and builds a
/// normalized relation from the selected columns.
///
/// Returns the relation and the fitted [`Normalizer`]. Unparseable rows
/// are rejected with the offending line number.
pub fn relation_from_csv<R: BufRead>(
    reader: R,
    specs: &[ColumnSpec],
) -> Result<(Relation, Normalizer), Error> {
    let mut raw_rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::InvalidWeights(format!("io error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let mut row = Vec::with_capacity(specs.len());
        let mut parse_failed_col = None;
        for spec in specs {
            match fields.get(spec.column).map(|f| f.parse::<f64>()) {
                Some(Ok(v)) => row.push(v),
                _ => {
                    parse_failed_col = Some(spec.column);
                    break;
                }
            }
        }
        match parse_failed_col {
            None => raw_rows.push(row),
            Some(col) => {
                // A non-numeric first data row is treated as a header.
                if raw_rows.is_empty() && lineno == 0 {
                    continue;
                }
                return Err(Error::InvalidWeights(format!(
                    "line {}: column {col} is not numeric",
                    lineno + 1
                )));
            }
        }
    }
    let norm = Normalizer::fit(specs, &raw_rows)?;
    let mut rel = Relation::new(specs.len())?;
    for row in &raw_rows {
        rel.push(&norm.normalize(row)?)?;
    }
    Ok((rel, norm))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
name,price,stars,distance
# comment line
Alpha, 120, 4.5, 2.0
Bravo,  80, 3.0, 0.5
Charlie,200, 5.0, 8.0
";

    fn specs() -> Vec<ColumnSpec> {
        vec![
            ColumnSpec {
                column: 1,
                direction: Direction::LowerIsBetter,
            },
            ColumnSpec {
                column: 2,
                direction: Direction::HigherIsBetter,
            },
            ColumnSpec {
                column: 3,
                direction: Direction::LowerIsBetter,
            },
        ]
    }

    #[test]
    fn parses_with_header_and_comments() {
        let (rel, norm) = relation_from_csv(CSV.as_bytes(), &specs()).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.dims(), 3);
        // Bravo: cheapest (0), worst-ish stars... stars 3.0 is min => after
        // flip it is 1.0 (worst); price 80 => 0.0 (best).
        let bravo = rel.tuple(1);
        assert!((bravo[0] - 0.0).abs() < 1e-12);
        assert!((bravo[1] - 1.0).abs() < 1e-12);
        // Denormalization returns raw units.
        let raw = norm.denormalize(bravo).unwrap();
        assert!((raw[0] - 80.0).abs() < 1e-9);
        assert!((raw[1] - 3.0).abs() < 1e-9);
        assert!((raw[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn direction_flip_makes_smaller_better() {
        let (rel, _) = relation_from_csv(CSV.as_bytes(), &specs()).unwrap();
        // Charlie has 5.0 stars (best) -> normalized star attr 0.0.
        assert!((rel.tuple(2)[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_mid_file_garbage() {
        let bad = "1.0,2.0\n3.0,oops\n";
        let specs = vec![
            ColumnSpec {
                column: 0,
                direction: Direction::LowerIsBetter,
            },
            ColumnSpec {
                column: 1,
                direction: Direction::LowerIsBetter,
            },
        ];
        assert!(relation_from_csv(bad.as_bytes(), &specs).is_err());
    }

    #[test]
    fn constant_column_maps_to_half() {
        let csv = "5.0,1.0\n5.0,2.0\n";
        let specs = vec![
            ColumnSpec {
                column: 0,
                direction: Direction::LowerIsBetter,
            },
            ColumnSpec {
                column: 1,
                direction: Direction::LowerIsBetter,
            },
        ];
        let (rel, _) = relation_from_csv(csv.as_bytes(), &specs).unwrap();
        assert!((rel.tuple(0)[0] - 0.5).abs() < 1e-12);
        assert!((rel.tuple(1)[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_roundtrip_random() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.gen_range(-100.0..100.0), rng.gen_range(0.0..1e6)])
            .collect();
        let specs = vec![
            ColumnSpec {
                column: 0,
                direction: Direction::HigherIsBetter,
            },
            ColumnSpec {
                column: 1,
                direction: Direction::LowerIsBetter,
            },
        ];
        let norm = Normalizer::fit(&specs, &rows).unwrap();
        for row in &rows {
            let n = norm.normalize(row).unwrap();
            assert!(n.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let back = norm.denormalize(&n).unwrap();
            assert!((back[0] - row[0]).abs() < 1e-6);
            assert!((back[1] - row[1]).abs() < 1e-3, "{} vs {}", back[1], row[1]);
        }
    }
}
