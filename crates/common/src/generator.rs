//! Synthetic workload generators.
//!
//! The paper evaluates on Independent (IND) and Anti-correlated (ANT)
//! datasets "following the data generation instructions in \[23\]"
//! (Börzsönyi, Kossmann & Stocker, *The Skyline Operator*, ICDE 2001).
//! We implement those two plus the Correlated (COR) family from the same
//! paper for completeness. All values land strictly inside `(0, 1)` as the
//! paper requires.

use crate::relation::Relation;
use crate::weights::Weights;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute-correlation family of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Attribute values i.i.d. uniform on `(0,1)` (IND).
    Independent,
    /// Points concentrated around the anti-diagonal hyperplane
    /// `Σ x_i = d/2`: good in one attribute implies bad in others (ANT).
    /// This inflates skyline sizes — the paper's stress case.
    AntiCorrelated,
    /// Points concentrated around the diagonal: good attributes come
    /// together (COR). Skylines are tiny.
    Correlated,
}

impl Distribution {
    /// Short code used in experiment output (`IND` / `ANT` / `COR`).
    pub fn code(&self) -> &'static str {
        match self {
            Distribution::Independent => "IND",
            Distribution::AntiCorrelated => "ANT",
            Distribution::Correlated => "COR",
        }
    }
}

/// Specification of a synthetic dataset: distribution, dimensionality,
/// cardinality, and RNG seed (generation is fully deterministic per spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Attribute correlation model.
    pub dist: Distribution,
    /// Attribute dimensionality.
    pub dims: usize,
    /// Number of tuples to generate.
    pub n: usize,
    /// RNG seed; equal specs generate equal relations.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Bundles the four generation parameters into a spec.
    pub fn new(dist: Distribution, dims: usize, n: usize, seed: u64) -> Self {
        WorkloadSpec {
            dist,
            dims,
            n,
            seed,
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        generate(self.dist, self.dims, self.n, &mut rng)
    }
}

/// Generates `n` tuples in `(0,1)^dims` from the given distribution.
pub fn generate<R: Rng + ?Sized>(
    dist: Distribution,
    dims: usize,
    n: usize,
    rng: &mut R,
) -> Relation {
    assert!(dims >= 1, "dims must be >= 1");
    let mut data = Vec::with_capacity(n * dims);
    let mut row = vec![0.0f64; dims];
    for _ in 0..n {
        match dist {
            Distribution::Independent => independent_row(&mut row, rng),
            Distribution::AntiCorrelated => anti_correlated_row(&mut row, rng),
            Distribution::Correlated => correlated_row(&mut row, rng),
        }
        data.extend_from_slice(&row);
    }
    Relation::from_flat_unchecked(dims, data)
}

#[inline]
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Strictly inside (0,1) as required by the paper's setting.
    loop {
        let v: f64 = rng.gen();
        if v > 0.0 && v < 1.0 {
            return v;
        }
    }
}

fn independent_row<R: Rng + ?Sized>(row: &mut [f64], rng: &mut R) {
    for v in row.iter_mut() {
        *v = open_unit(rng);
    }
}

/// Approximately normal sample on (0,1) centered at 0.5: mean of 12
/// uniforms, the construction used by the original skyline-benchmark
/// generator ("random_peak").
fn random_peak<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let s: f64 = (0..12).map(|_| open_unit(rng)).sum();
    s / 12.0
}

fn correlated_row<R: Rng + ?Sized>(row: &mut [f64], rng: &mut R) {
    // A point near the diagonal: pick a peak position v, then scatter each
    // coordinate around v with a small symmetric triangular perturbation,
    // reflecting at the domain borders.
    let d = row.len();
    loop {
        let v = random_peak(rng);
        let h = 0.15 / (d as f64).sqrt();
        let mut ok = true;
        for slot in row.iter_mut() {
            let offset = (open_unit(rng) - open_unit(rng)) * h;
            let x = v + offset;
            if x <= 0.0 || x >= 1.0 {
                ok = false;
                break;
            }
            *slot = x;
        }
        if ok {
            return;
        }
    }
}

#[allow(clippy::needless_range_loop)] // i drives both row[] and the remaining-budget arithmetic
fn anti_correlated_row<R: Rng + ?Sized>(row: &mut [f64], rng: &mut R) {
    // A point near the anti-diagonal hyperplane Σ x_i = l, where the plane
    // offset l = v·d for a peaked v ≈ 0.5. Coordinates are drawn by
    // stick-breaking within feasible bounds so the sum is exactly l, then
    // the dimension order is shuffled to avoid positional bias.
    let d = row.len();
    loop {
        let v = random_peak(rng);
        let mut l = v * d as f64;
        let mut ok = true;
        for i in 0..d {
            let x = if i == d - 1 {
                // Last coordinate takes the remaining budget exactly.
                l
            } else {
                // x must leave the rest of the budget coverable:
                // 0 <= l - x <= remaining, with x in (0,1).
                let remaining = (d - 1 - i) as f64;
                let lo = (l - remaining).max(0.0);
                let hi = l.min(1.0);
                if lo >= hi {
                    ok = false;
                    break;
                }
                lo + open_unit(rng) * (hi - lo)
            };
            if x <= 0.0 || x >= 1.0 {
                ok = false;
                break;
            }
            row[i] = x;
            l -= x;
        }
        if !ok {
            continue;
        }
        // Fisher–Yates shuffle of the coordinates.
        for i in (1..d).rev() {
            let j = rng.gen_range(0..=i);
            row.swap(i, j);
        }
        return;
    }
}

/// Specification of a seeded, Zipf-repeated *weight* workload: `queries`
/// draws over a fixed pool of `pool` distinct random weight vectors whose
/// popularity follows a Zipf law with exponent `skew` (rank `r` has mass
/// ∝ `1/(r+1)^skew`; `skew = 0` is uniform popularity).
///
/// Real top-k traffic repeats heavily in weight space — the same ranking
/// preferences arrive again and again — which is exactly the regime a
/// weight-space result cache exploits. This generator is the shared source
/// of that traffic shape for the throughput bench and the cache tests, so
/// both measure the same distribution. Generation is fully deterministic
/// per spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfWeightWorkload {
    /// Weight-vector dimensionality.
    pub dims: usize,
    /// Number of distinct weight vectors in the pool.
    pub pool: usize,
    /// Number of queries to draw.
    pub queries: usize,
    /// Zipf exponent (`0` = uniform popularity; `1` is the classic law).
    pub skew: f64,
    /// RNG seed; equal specs generate equal workloads.
    pub seed: u64,
}

impl ZipfWeightWorkload {
    /// Bundles the five generation parameters into a spec.
    pub fn new(dims: usize, pool: usize, queries: usize, skew: f64, seed: u64) -> Self {
        ZipfWeightWorkload {
            dims,
            pool,
            queries,
            skew,
            seed,
        }
    }

    /// The weight pool alone (rank 0 is the most popular vector).
    pub fn pool_weights(&self) -> Vec<Weights> {
        assert!(self.dims >= 1, "dims must be >= 1");
        assert!(self.pool >= 1, "pool must be >= 1");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.pool)
            .map(|_| Weights::random(self.dims, &mut rng))
            .collect()
    }

    /// Generates the query sequence by CDF-inverting the Zipf popularity
    /// law over the pool.
    pub fn generate(&self) -> Vec<Weights> {
        assert!(
            self.skew.is_finite() && self.skew >= 0.0,
            "skew must be finite and non-negative"
        );
        let pool = self.pool_weights();
        // Cumulative Zipf mass, normalized to end exactly at 1.
        let mut cdf = Vec::with_capacity(pool.len());
        let mut acc = 0.0f64;
        for r in 0..pool.len() {
            acc += 1.0 / ((r + 1) as f64).powf(self.skew);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        // The draw sequence gets its own stream derived from the same
        // seed, so changing `queries` never perturbs the pool itself.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5A1F_C0DE);
        (0..self.queries)
            .map(|_| {
                let u: f64 = rng.gen();
                let rank = cdf.partition_point(|&c| c < u).min(pool.len() - 1);
                pool[rank].clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_corr(r: &Relation) -> f64 {
        // Mean pairwise Pearson correlation between attribute columns.
        let d = r.dims();
        let n = r.len() as f64;
        let mut means = vec![0.0; d];
        for (_, t) in r.iter() {
            for (m, &x) in means.iter_mut().zip(t) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut corr_sum = 0.0;
        let mut pairs = 0;
        for i in 0..d {
            for j in (i + 1)..d {
                let (mut cov, mut vi, mut vj) = (0.0, 0.0, 0.0);
                for (_, t) in r.iter() {
                    let a = t[i] - means[i];
                    let b = t[j] - means[j];
                    cov += a * b;
                    vi += a * a;
                    vj += b * b;
                }
                corr_sum += cov / (vi.sqrt() * vj.sqrt());
                pairs += 1;
            }
        }
        corr_sum / pairs as f64
    }

    #[test]
    fn deterministic_per_seed() {
        let s = WorkloadSpec::new(Distribution::Independent, 3, 100, 42);
        assert_eq!(s.generate(), s.generate());
        let s2 = WorkloadSpec::new(Distribution::Independent, 3, 100, 43);
        assert_ne!(s.generate(), s2.generate());
    }

    #[test]
    fn values_in_open_unit_interval() {
        for dist in [
            Distribution::Independent,
            Distribution::AntiCorrelated,
            Distribution::Correlated,
        ] {
            let r = WorkloadSpec::new(dist, 4, 2000, 1).generate();
            assert_eq!(r.len(), 2000);
            for (_, t) in r.iter() {
                for &x in t {
                    assert!(x > 0.0 && x < 1.0, "{dist:?} produced {x}");
                }
            }
        }
    }

    #[test]
    fn correlation_signs_match_families() {
        let ind = WorkloadSpec::new(Distribution::Independent, 3, 4000, 9).generate();
        let ant = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 4000, 9).generate();
        let cor = WorkloadSpec::new(Distribution::Correlated, 3, 4000, 9).generate();
        let (ci, ca, cc) = (mean_corr(&ind), mean_corr(&ant), mean_corr(&cor));
        assert!(ci.abs() < 0.1, "IND corr {ci}");
        assert!(ca < -0.2, "ANT corr {ca}");
        assert!(cc > 0.5, "COR corr {cc}");
    }

    #[test]
    fn zipf_weight_workload_is_deterministic_and_pool_bounded() {
        let spec = ZipfWeightWorkload::new(3, 16, 500, 1.0, 9);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b, "equal specs must generate equal workloads");
        assert_eq!(a.len(), 500);
        let pool = spec.pool_weights();
        assert_eq!(pool.len(), 16);
        for w in &a {
            assert!(pool.contains(w), "every draw comes from the pool");
        }
        let other = ZipfWeightWorkload::new(3, 16, 500, 1.0, 10).generate();
        assert_ne!(a, other, "different seeds diverge");
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_top_ranks() {
        let count_top = |skew: f64| {
            let spec = ZipfWeightWorkload::new(2, 32, 2000, skew, 7);
            let pool = spec.pool_weights();
            spec.generate().iter().filter(|w| **w == pool[0]).count()
        };
        let uniform = count_top(0.0);
        let skewed = count_top(1.5);
        // Uniform popularity gives rank 0 about 1/32 of the draws; skew
        // 1.5 gives it the lion's share.
        assert!(uniform < 150, "uniform top-rank count {uniform}");
        assert!(skewed > 500, "skewed top-rank count {skewed}");
    }

    #[test]
    fn zipf_pool_growth_is_a_prefix() {
        // Pool generation draws sequentially from one stream, so a larger
        // pool extends a smaller one.
        let small = ZipfWeightWorkload::new(3, 8, 1, 1.0, 3).pool_weights();
        let large = ZipfWeightWorkload::new(3, 12, 1, 1.0, 3).pool_weights();
        assert_eq!(&large[..8], &small[..]);
    }

    #[test]
    fn anti_correlated_sums_concentrate() {
        let d = 4;
        let r = WorkloadSpec::new(Distribution::AntiCorrelated, d, 2000, 3).generate();
        let sums: Vec<f64> = r.iter().map(|(_, t)| t.iter().sum()).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        let var = sums.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / sums.len() as f64;
        assert!((mean - d as f64 / 2.0).abs() < 0.1, "mean sum {mean}");
        // Independent points would have sum variance d/12 ≈ 0.33; the
        // anti-correlated plane concentrates it well below that.
        assert!(var < 0.2, "sum variance {var}");
    }
}
