//! Error type shared across the workspace.

use std::fmt;

/// Errors produced when constructing relations, weights, or indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A tuple's arity did not match the relation's dimensionality.
    DimensionMismatch {
        /// The relation's dimensionality.
        expected: usize,
        /// The arity actually supplied.
        got: usize,
    },
    /// Dimensionality outside the supported range (the paper evaluates
    /// d in 2..=5; we support any d >= 1 but some structures need d >= 2).
    InvalidDimension(usize),
    /// A weight vector was rejected (non-positive entry, bad length,
    /// non-finite value, or zero sum).
    InvalidWeights(String),
    /// An attribute value was outside `[0,1]` or non-finite.
    InvalidValue {
        /// Index of the offending tuple.
        tuple: usize,
        /// Attribute position of the offending value.
        dim: usize,
        /// The rejected value.
        value: f64,
    },
    /// A query was issued against an empty relation or with k = 0.
    EmptyQuery(String),
    /// An underlying I/O operation failed (message carries the OS error).
    Io(String),
    /// Persisted bytes failed integrity checks: bad magic, truncation, or
    /// a checksum mismatch. The data cannot be trusted.
    Corrupt(String),
    /// Structurally or semantically invalid input: a snapshot that decodes
    /// but violates index invariants, or one built with options
    /// incompatible with the ones requested at load time.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::InvalidDimension(d) => write!(f, "invalid dimensionality: {d}"),
            Error::InvalidWeights(msg) => write!(f, "invalid weight vector: {msg}"),
            Error::InvalidValue { tuple, dim, value } => {
                write!(f, "invalid value {value} at tuple {tuple}, dim {dim}")
            }
            Error::EmptyQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid content: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
