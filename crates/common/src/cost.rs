//! Access-cost accounting (Definition 9 of the paper).
//!
//! The paper's evaluation metric is *the number of tuples that are both
//! accessed and computed by `F` during top-k query processing*. Every query
//! processor in this workspace threads a [`Cost`] through its scoring calls
//! so the experiment harness can report exactly that metric.

/// Counter for tuples evaluated by the scoring function during one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Real tuples of the relation scored by `F`.
    pub evaluated: u64,
    /// Pseudo-tuples (virtual zero-layer tuples) scored by `F`. These do not
    /// exist in the relation; we report them separately and — conservatively
    /// — include them in [`Cost::total`].
    pub pseudo_evaluated: u64,
}

impl Cost {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the evaluation of one real tuple.
    #[inline]
    pub fn tick(&mut self) {
        self.evaluated += 1;
    }

    /// Records the evaluation of one pseudo-tuple.
    #[inline]
    pub fn tick_pseudo(&mut self) {
        self.pseudo_evaluated += 1;
    }

    /// Total evaluations, counting pseudo-tuples (the conservative measure
    /// used in EXPERIMENTS.md).
    #[inline]
    pub fn total(&self) -> u64 {
        self.evaluated + self.pseudo_evaluated
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Cost) {
        self.evaluated += other.evaluated;
        self.pseudo_evaluated += other.pseudo_evaluated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let mut c = Cost::new();
        c.tick();
        c.tick();
        c.tick_pseudo();
        assert_eq!(c.evaluated, 2);
        assert_eq!(c.pseudo_evaluated, 1);
        assert_eq!(c.total(), 3);
        let mut d = Cost::new();
        d.tick();
        d.merge(&c);
        assert_eq!(d.total(), 4);
    }
}
