//! Dominance predicates (Definition 2 of the paper).
//!
//! All structures in this workspace use the *minimization* convention:
//! smaller attribute values are better, and top-k queries return the k
//! tuples with the smallest scores.

/// Three-way outcome of a pairwise dominance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomOrd {
    /// The left tuple dominates the right one (`t ≺ t'`).
    Dominates,
    /// The right tuple dominates the left one (`t' ≺ t`).
    DominatedBy,
    /// Neither dominates the other (including exact equality of all
    /// attributes, which is *not* dominance under Definition 2).
    Incomparable,
}

/// Returns `true` iff `t` dominates `t'`: `t_i <= t'_i` for all `i` and
/// `t_j < t'_j` for some `j` (Definition 2).
#[inline]
pub fn dominates(t: &[f64], u: &[f64]) -> bool {
    debug_assert_eq!(t.len(), u.len());
    let mut strict = false;
    for (a, b) in t.iter().zip(u) {
        if a > b {
            return false;
        }
        if a < b {
            strict = true;
        }
    }
    strict
}

/// Returns `true` iff `t_i <= t'_i` for all `i` (weak dominance; equal
/// tuples weakly dominate each other).
#[inline]
pub fn dominates_eq(t: &[f64], u: &[f64]) -> bool {
    debug_assert_eq!(t.len(), u.len());
    t.iter().zip(u).all(|(a, b)| a <= b)
}

/// Compares two tuples under the dominance partial order in a single pass.
#[inline]
pub fn dom_compare(t: &[f64], u: &[f64]) -> DomOrd {
    debug_assert_eq!(t.len(), u.len());
    let mut le = true; // t <= u so far
    let mut ge = true; // t >= u so far
    let mut lt = false;
    let mut gt = false;
    for (a, b) in t.iter().zip(u) {
        if a < b {
            ge = false;
            lt = true;
        } else if a > b {
            le = false;
            gt = true;
        }
        if !le && !ge {
            return DomOrd::Incomparable;
        }
    }
    if le && lt {
        DomOrd::Dominates
    } else if ge && gt {
        DomOrd::DominatedBy
    } else {
        DomOrd::Incomparable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        assert!(dominates(&[0.1, 0.2], &[0.1, 0.3]));
        assert!(dominates(&[0.1, 0.2], &[0.2, 0.3]));
        assert!(
            !dominates(&[0.1, 0.2], &[0.1, 0.2]),
            "equal tuples do not dominate"
        );
        assert!(!dominates(&[0.1, 0.4], &[0.2, 0.3]), "incomparable");
        assert!(!dominates(&[0.2, 0.3], &[0.1, 0.4]));
    }

    #[test]
    fn weak_dominance() {
        assert!(dominates_eq(&[0.1, 0.2], &[0.1, 0.2]));
        assert!(dominates_eq(&[0.1, 0.2], &[0.1, 0.3]));
        assert!(!dominates_eq(&[0.1, 0.4], &[0.2, 0.3]));
    }

    #[test]
    fn three_way() {
        assert_eq!(dom_compare(&[0.1, 0.2], &[0.2, 0.3]), DomOrd::Dominates);
        assert_eq!(dom_compare(&[0.2, 0.3], &[0.1, 0.2]), DomOrd::DominatedBy);
        assert_eq!(dom_compare(&[0.1, 0.4], &[0.2, 0.3]), DomOrd::Incomparable);
        assert_eq!(dom_compare(&[0.5, 0.5], &[0.5, 0.5]), DomOrd::Incomparable);
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let t = [0.3, 0.7, 0.1];
        assert!(!dominates(&t, &t));
        let u = [0.4, 0.8, 0.2];
        assert!(dominates(&t, &u));
        assert!(!dominates(&u, &t));
    }
}
