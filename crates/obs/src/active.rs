//! The real recording implementation (compiled under the `enabled`
//! feature; `noop.rs` mirrors the API as zero-sized types otherwise).

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, HIST_BUCKETS};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

/// Shard count for [`ShardedCounter`]. Threads are striped round-robin,
/// so up to this many concurrent writers proceed without sharing a cache
/// line; reads sum all shards.
const SHARDS: usize = 16;

/// One cache-line-padded atomic cell, so neighboring shards never falsely
/// share a line.
#[repr(align(64))]
#[derive(Debug)]
struct Shard(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard, assigned round-robin on first use.
    static MY_SHARD: Cell<usize> = Cell::new(NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS);
}

/// A monotone counter striped across cache-line-padded shards: `add` is
/// one relaxed `fetch_add` on the calling thread's home shard, `get` sums
/// every shard. Writers on different threads never contend on a line.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: [Shard; SHARDS],
}

impl ShardedCounter {
    /// A zeroed counter (usable in statics).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Shard = Shard(AtomicU64::new(0));
        ShardedCounter {
            shards: [ZERO; SHARDS],
        }
    }

    /// Adds `v` on this thread's shard (relaxed; never blocks).
    #[inline]
    pub fn add(&self, v: u64) {
        let s = MY_SHARD.with(Cell::get);
        self.shards[s].0.fetch_add(v, Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Relaxed);
        }
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// A lock-free histogram over power-of-two buckets: bucket 0 holds the
/// value `0`, bucket `b ≥ 1` holds `[2^(b-1), 2^b)`. Recording is one
/// relaxed `fetch_add` per observation (plus an exact running sum);
/// quantile readout happens on [`HistogramSnapshot`].
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram (usable in statics).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LogHistogram {
            buckets: [ZERO; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            sum: self.sum.load(Relaxed),
        }
    }

    /// Merges a locally-bucketed batch of observations in one pass (used
    /// by [`QueryCounters::flush`] so the hot path never touches atomics).
    fn merge_counts(&self, counts: &[u64; HIST_BUCKETS], sum: u64) {
        for (b, &c) in counts.iter().enumerate() {
            if c > 0 {
                self.buckets[b].fetch_add(c, Relaxed);
            }
        }
        self.sum.fetch_add(sum, Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.sum.store(0, Relaxed);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide metrics registry. One static instance exists per
/// process (see [`metrics`]); the query path feeds it through
/// [`QueryCounters`] / [`QuerySpan`], subsystems add directly.
///
/// ```
/// use drtopk_obs::metrics;
///
/// let m = metrics();
/// let before = m.snapshot().dynamic_inserts;
/// m.dynamic_insert();
/// let snap = m.snapshot();
/// assert_eq!(snap.dynamic_inserts, before + 1);
/// // Snapshots render themselves for exporters:
/// assert!(snap.to_prometheus().contains("drtopk_dynamic_inserts_total"));
/// assert!(snap.to_json().contains("\"dynamic_inserts\""));
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    recording: AtomicBool,
    queries: ShardedCounter,
    tuples_evaluated: ShardedCounter,
    pseudo_evaluated: ShardedCounter,
    forall_relaxations: ShardedCounter,
    exists_relaxations: ShardedCounter,
    heap_pushes: ShardedCounter,
    zero_probes: ShardedCounter,
    batch_enqueued: ShardedCounter,
    batch_drained: ShardedCounter,
    dynamic_inserts: ShardedCounter,
    dynamic_deletes: ShardedCounter,
    dynamic_rebuilds: ShardedCounter,
    dynamic_buffer_scanned: ShardedCounter,
    cache_hits: ShardedCounter,
    cache_misses: ShardedCounter,
    cache_cert_rejects: ShardedCounter,
    cache_invalidations: ShardedCounter,
    server_connections: ShardedCounter,
    server_requests: ShardedCounter,
    server_sheds: ShardedCounter,
    server_protocol_errors: ShardedCounter,
    server_enqueued: ShardedCounter,
    server_dequeued: ShardedCounter,
    shard_probes: ShardedCounter,
    shard_probe_failures: ShardedCounter,
    shard_retries: ShardedCounter,
    shard_degraded_answers: ShardedCounter,
    shard_failovers: ShardedCounter,
    shard_hedges: ShardedCounter,
    endpoint_pings: ShardedCounter,
    endpoint_ping_failures: ShardedCounter,
    /// Router health gauges (instantaneous, not monotone): shard counts by
    /// state, published atomically by the router on every transition.
    shards_up: AtomicU64,
    shards_degraded: AtomicU64,
    shards_down: AtomicU64,
    query_latency_ns: LogHistogram,
    query_cost: LogHistogram,
    scratch_touched: LogHistogram,
    kernel_block_tuples: LogHistogram,
    server_batch_size: LogHistogram,
    server_queue_wait_ns: LogHistogram,
}

static REGISTRY: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry.
#[inline]
pub fn metrics() -> &'static MetricsRegistry {
    &REGISTRY
}

impl MetricsRegistry {
    const fn new() -> Self {
        MetricsRegistry {
            recording: AtomicBool::new(true),
            queries: ShardedCounter::new(),
            tuples_evaluated: ShardedCounter::new(),
            pseudo_evaluated: ShardedCounter::new(),
            forall_relaxations: ShardedCounter::new(),
            exists_relaxations: ShardedCounter::new(),
            heap_pushes: ShardedCounter::new(),
            zero_probes: ShardedCounter::new(),
            batch_enqueued: ShardedCounter::new(),
            batch_drained: ShardedCounter::new(),
            dynamic_inserts: ShardedCounter::new(),
            dynamic_deletes: ShardedCounter::new(),
            dynamic_rebuilds: ShardedCounter::new(),
            dynamic_buffer_scanned: ShardedCounter::new(),
            cache_hits: ShardedCounter::new(),
            cache_misses: ShardedCounter::new(),
            cache_cert_rejects: ShardedCounter::new(),
            cache_invalidations: ShardedCounter::new(),
            server_connections: ShardedCounter::new(),
            server_requests: ShardedCounter::new(),
            server_sheds: ShardedCounter::new(),
            server_protocol_errors: ShardedCounter::new(),
            server_enqueued: ShardedCounter::new(),
            server_dequeued: ShardedCounter::new(),
            shard_probes: ShardedCounter::new(),
            shard_probe_failures: ShardedCounter::new(),
            shard_retries: ShardedCounter::new(),
            shard_degraded_answers: ShardedCounter::new(),
            shard_failovers: ShardedCounter::new(),
            shard_hedges: ShardedCounter::new(),
            endpoint_pings: ShardedCounter::new(),
            endpoint_ping_failures: ShardedCounter::new(),
            shards_up: AtomicU64::new(0),
            shards_degraded: AtomicU64::new(0),
            shards_down: AtomicU64::new(0),
            query_latency_ns: LogHistogram::new(),
            query_cost: LogHistogram::new(),
            scratch_touched: LogHistogram::new(),
            kernel_block_tuples: LogHistogram::new(),
            server_batch_size: LogHistogram::new(),
            server_queue_wait_ns: LogHistogram::new(),
        }
    }

    /// Whether recording is on (the default). Off, spans and flushes are
    /// skipped; only the local plain-integer increments remain.
    #[inline]
    pub fn recording(&self) -> bool {
        self.recording.load(Relaxed)
    }

    /// Turns recording on or off at runtime (process-wide).
    pub fn set_recording(&self, on: bool) {
        self.recording.store(on, Relaxed);
    }

    /// One zero-layer selective-access probe (2-d weight-range search).
    #[inline]
    pub fn zero_probe(&self) {
        if self.recording() {
            self.zero_probes.add(1);
        }
    }

    /// `n` requests handed to a batch-executor run.
    #[inline]
    pub fn batch_enqueue(&self, n: u64) {
        if self.recording() {
            self.batch_enqueued.add(n);
        }
    }

    /// `n` batch requests fully answered.
    #[inline]
    pub fn batch_drain(&self, n: u64) {
        if self.recording() {
            self.batch_drained.add(n);
        }
    }

    /// One dynamic-index insert.
    #[inline]
    pub fn dynamic_insert(&self) {
        if self.recording() {
            self.dynamic_inserts.add(1);
        }
    }

    /// One dynamic-index delete of a live handle.
    #[inline]
    pub fn dynamic_delete(&self) {
        if self.recording() {
            self.dynamic_deletes.add(1);
        }
    }

    /// One dynamic-index compaction (full rebuild).
    #[inline]
    pub fn dynamic_rebuild(&self) {
        if self.recording() {
            self.dynamic_rebuilds.add(1);
        }
    }

    /// `n` buffered tuples scanned while answering a dynamic query.
    #[inline]
    pub fn dynamic_buffer_scan(&self, n: u64) {
        if self.recording() {
            self.dynamic_buffer_scanned.add(n);
        }
    }

    /// One result-cache lookup served from the cache (2-d cell hit or
    /// certified hit).
    #[inline]
    pub fn cache_hit(&self) {
        if self.recording() {
            self.cache_hits.add(1);
        }
    }

    /// One result-cache lookup that fell back to the traversal.
    #[inline]
    pub fn cache_miss(&self) {
        if self.recording() {
            self.cache_misses.add(1);
        }
    }

    /// `n` cached entries whose hit certificate failed validation.
    #[inline]
    pub fn cache_cert_reject(&self, n: u64) {
        if self.recording() {
            self.cache_cert_rejects.add(n);
        }
    }

    /// One result-cache generation bump (full invalidation).
    #[inline]
    pub fn cache_invalidate(&self) {
        if self.recording() {
            self.cache_invalidations.add(1);
        }
    }

    /// One client connection accepted by the network server.
    #[inline]
    pub fn server_connection(&self) {
        if self.recording() {
            self.server_connections.add(1);
        }
    }

    /// One well-formed request frame received by the network server.
    #[inline]
    pub fn server_request(&self) {
        if self.recording() {
            self.server_requests.add(1);
        }
    }

    /// One request shed by admission control (answered `Overloaded`).
    #[inline]
    pub fn server_shed(&self) {
        if self.recording() {
            self.server_sheds.add(1);
        }
    }

    /// One protocol violation (bad frame, CRC mismatch, oversized length)
    /// on a server connection.
    #[inline]
    pub fn server_protocol_error(&self) {
        if self.recording() {
            self.server_protocol_errors.add(1);
        }
    }

    /// One request admitted into the server's bounded queue.
    #[inline]
    pub fn server_enqueue(&self) {
        if self.recording() {
            self.server_enqueued.add(1);
        }
    }

    /// `n` requests pulled from the server queue into a micro-batch
    /// (recorded together with one batch-size observation).
    #[inline]
    pub fn server_batch(&self, n: u64) {
        if self.recording() {
            self.server_dequeued.add(n);
            self.server_batch_size.record(n);
        }
    }

    /// One request's time spent waiting in the server queue.
    #[inline]
    pub fn server_queue_wait(&self, ns: u64) {
        if self.recording() {
            self.server_queue_wait_ns.record(ns);
        }
    }

    /// One shard probe attempted by the shard router (retries count too).
    #[inline]
    pub fn shard_probe(&self) {
        if self.recording() {
            self.shard_probes.add(1);
        }
    }

    /// One shard probe that failed (error, panic, or timeout).
    #[inline]
    pub fn shard_probe_failure(&self) {
        if self.recording() {
            self.shard_probe_failures.add(1);
        }
    }

    /// One shard probe retried after a transient failure.
    #[inline]
    pub fn shard_retry(&self) {
        if self.recording() {
            self.shard_retries.add(1);
        }
    }

    /// One routed answer returned with degraded (partial) shard coverage.
    #[inline]
    pub fn shard_degraded_answer(&self) {
        if self.recording() {
            self.shard_degraded_answers.add(1);
        }
    }

    /// One probe failed over from a replica-set endpoint to the next
    /// replica (Down, timed out, or refused mid-request).
    #[inline]
    pub fn shard_failover(&self) {
        if self.recording() {
            self.shard_failovers.add(1);
        }
    }

    /// One hedged second probe launched after the hedge latency threshold.
    #[inline]
    pub fn shard_hedge(&self) {
        if self.recording() {
            self.shard_hedges.add(1);
        }
    }

    /// One health-pinger PING issued to a remote endpoint.
    #[inline]
    pub fn endpoint_ping(&self) {
        if self.recording() {
            self.endpoint_pings.add(1);
        }
    }

    /// One health-pinger PING that failed (connect, timeout, or bad reply).
    #[inline]
    pub fn endpoint_ping_failure(&self) {
        if self.recording() {
            self.endpoint_ping_failures.add(1);
        }
    }

    /// Publishes the router's current shard-health tally (counts of shards
    /// Up / Degraded / Down). A gauge, not a counter: each call overwrites.
    #[inline]
    pub fn set_shard_health(&self, up: u64, degraded: u64, down: u64) {
        if self.recording() {
            self.shards_up.store(up, Relaxed);
            self.shards_degraded.store(degraded, Relaxed);
            self.shards_down.store(down, Relaxed);
        }
    }

    /// Copies every counter and histogram out. Each value is read with a
    /// relaxed load, so a snapshot taken while queries run is a coherent
    /// *approximation* — fine for monitoring, exact once writers quiesce.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.get(),
            tuples_evaluated: self.tuples_evaluated.get(),
            pseudo_evaluated: self.pseudo_evaluated.get(),
            forall_relaxations: self.forall_relaxations.get(),
            exists_relaxations: self.exists_relaxations.get(),
            heap_pushes: self.heap_pushes.get(),
            zero_probes: self.zero_probes.get(),
            batch_enqueued: self.batch_enqueued.get(),
            batch_drained: self.batch_drained.get(),
            dynamic_inserts: self.dynamic_inserts.get(),
            dynamic_deletes: self.dynamic_deletes.get(),
            dynamic_rebuilds: self.dynamic_rebuilds.get(),
            dynamic_buffer_scanned: self.dynamic_buffer_scanned.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_cert_rejects: self.cache_cert_rejects.get(),
            cache_invalidations: self.cache_invalidations.get(),
            server_connections: self.server_connections.get(),
            server_requests: self.server_requests.get(),
            server_sheds: self.server_sheds.get(),
            server_protocol_errors: self.server_protocol_errors.get(),
            server_enqueued: self.server_enqueued.get(),
            server_dequeued: self.server_dequeued.get(),
            shard_probes: self.shard_probes.get(),
            shard_probe_failures: self.shard_probe_failures.get(),
            shard_retries: self.shard_retries.get(),
            shard_degraded_answers: self.shard_degraded_answers.get(),
            shard_failovers: self.shard_failovers.get(),
            shard_hedges: self.shard_hedges.get(),
            endpoint_pings: self.endpoint_pings.get(),
            endpoint_ping_failures: self.endpoint_ping_failures.get(),
            shards_up: self.shards_up.load(Relaxed),
            shards_degraded: self.shards_degraded.load(Relaxed),
            shards_down: self.shards_down.load(Relaxed),
            query_latency_ns: self.query_latency_ns.snapshot(),
            query_cost: self.query_cost.snapshot(),
            scratch_touched: self.scratch_touched.snapshot(),
            kernel_block_tuples: self.kernel_block_tuples.snapshot(),
            server_batch_size: self.server_batch_size.snapshot(),
            server_queue_wait_ns: self.server_queue_wait_ns.snapshot(),
        }
    }

    /// Zeroes every counter and histogram. Benchmarks use this between
    /// cells; racing writers may leak a few increments into the next
    /// window, which is acceptable for a monitoring registry.
    pub fn reset(&self) {
        self.queries.reset();
        self.tuples_evaluated.reset();
        self.pseudo_evaluated.reset();
        self.forall_relaxations.reset();
        self.exists_relaxations.reset();
        self.heap_pushes.reset();
        self.zero_probes.reset();
        self.batch_enqueued.reset();
        self.batch_drained.reset();
        self.dynamic_inserts.reset();
        self.dynamic_deletes.reset();
        self.dynamic_rebuilds.reset();
        self.dynamic_buffer_scanned.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.cache_cert_rejects.reset();
        self.cache_invalidations.reset();
        self.server_connections.reset();
        self.server_requests.reset();
        self.server_sheds.reset();
        self.server_protocol_errors.reset();
        self.server_enqueued.reset();
        self.server_dequeued.reset();
        self.shard_probes.reset();
        self.shard_probe_failures.reset();
        self.shard_retries.reset();
        self.shard_degraded_answers.reset();
        self.shard_failovers.reset();
        self.shard_hedges.reset();
        self.endpoint_pings.reset();
        self.endpoint_ping_failures.reset();
        self.shards_up.store(0, Relaxed);
        self.shards_degraded.store(0, Relaxed);
        self.shards_down.store(0, Relaxed);
        self.query_latency_ns.reset();
        self.query_cost.reset();
        self.scratch_touched.reset();
        self.kernel_block_tuples.reset();
        self.server_batch_size.reset();
        self.server_queue_wait_ns.reset();
    }
}

/// Per-query counter block living inside the traversal's scratch memory.
/// The hot path bumps plain integers (no atomics); [`QueryCounters::flush`]
/// moves the totals into the registry in one burst — at most once per
/// query — so per-tuple recording costs a non-atomic add. Kernel block
/// sizes are bucketed locally for the same reason and merged into the
/// registry histogram at flush time.
#[derive(Debug, Clone)]
pub struct QueryCounters {
    forall: u64,
    exists: u64,
    pushes: u64,
    touched: u64,
    kernel_buckets: [u64; HIST_BUCKETS],
    kernel_sum: u64,
}

impl Default for QueryCounters {
    fn default() -> Self {
        QueryCounters {
            forall: 0,
            exists: 0,
            pushes: 0,
            touched: 0,
            kernel_buckets: [0; HIST_BUCKETS],
            kernel_sum: 0,
        }
    }
}

impl QueryCounters {
    /// A zeroed block.
    pub fn new() -> Self {
        Self::default()
    }

    /// `n` ∀-dominance edges relaxed.
    #[inline]
    pub fn forall_relaxed(&mut self, n: u64) {
        self.forall += n;
    }

    /// `n` ∃-dominance edges relaxed.
    #[inline]
    pub fn exists_relaxed(&mut self, n: u64) {
        self.exists += n;
    }

    /// `n` entries pushed onto the queue.
    #[inline]
    pub fn heap_pushed(&mut self, n: u64) {
        self.pushes += n;
    }

    /// One scoring-kernel invocation over a block of `n` tuples.
    #[inline]
    pub fn kernel_block(&mut self, n: u64) {
        let b = (64 - n.leading_zeros()) as usize;
        self.kernel_buckets[b] += 1;
        self.kernel_sum += n;
    }

    /// Final count of scratch nodes lazily initialized by this query
    /// (recorded as one histogram observation at flush).
    #[inline]
    pub fn scratch_touched(&mut self, n: u64) {
        self.touched = n;
    }

    /// Zeroes the block without flushing (query start / scratch reset).
    #[inline]
    pub fn clear(&mut self) {
        *self = QueryCounters::default();
    }

    /// Moves the accumulated totals into the registry and zeroes the
    /// block. Skips the atomic traffic entirely when recording is off or
    /// nothing was counted.
    pub fn flush(&mut self) {
        if !metrics().recording() {
            self.clear();
            return;
        }
        let m = metrics();
        if self.forall > 0 {
            m.forall_relaxations.add(self.forall);
        }
        if self.exists > 0 {
            m.exists_relaxations.add(self.exists);
        }
        if self.pushes > 0 {
            m.heap_pushes.add(self.pushes);
        }
        if self.kernel_sum > 0 {
            m.kernel_block_tuples
                .merge_counts(&self.kernel_buckets, self.kernel_sum);
        }
        if self.touched > 0 {
            m.scratch_touched.record(self.touched);
        }
        self.clear();
    }
}

/// A per-query span: started before the traversal, finished with the
/// query's final cost. Records one latency and one cost observation and
/// bumps the query counter — three relaxed atomics per query. Inert when
/// recording is off (no clock read).
#[derive(Debug)]
#[must_use = "a span only records when finished"]
pub struct QuerySpan {
    started: Option<Instant>,
}

impl QuerySpan {
    /// Starts timing (reads the clock only if recording is on).
    #[inline]
    pub fn start() -> Self {
        QuerySpan {
            started: metrics().recording().then(Instant::now),
        }
    }

    /// Ends the span: records latency, the query's Definition 9 cost
    /// (split into real and pseudo tuple evaluations), and one completed
    /// query.
    #[inline]
    pub fn finish(self, evaluated: u64, pseudo_evaluated: u64) {
        if let Some(t0) = self.started {
            let m = metrics();
            m.queries.add(1);
            m.tuples_evaluated.add(evaluated);
            if pseudo_evaluated > 0 {
                m.pseudo_evaluated.add(pseudo_evaluated);
            }
            m.query_latency_ns
                .record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            m.query_cost.record(evaluated + pseudo_evaluated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = ShardedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_values_by_log2() {
        let h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1, "0 lands in bucket 0");
        assert_eq!(s.counts[1], 1, "1 lands in [1,2)");
        assert_eq!(s.counts[2], 2, "2 and 3 land in [2,4)");
        assert_eq!(s.counts[11], 1, "1024 lands in [1024,2048)");
        assert_eq!(s.sum, 1030);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().counts[64], 1, "max value fits the top bucket");
    }

    #[test]
    fn counters_flush_once_and_clear() {
        let m = metrics();
        let before = m.snapshot();
        let mut c = QueryCounters::new();
        c.forall_relaxed(5);
        c.exists_relaxed(2);
        c.heap_pushed(3);
        c.flush();
        c.flush(); // second flush is a no-op: the block cleared
        let after = m.snapshot();
        assert_eq!(after.forall_relaxations - before.forall_relaxations, 5);
        assert_eq!(after.exists_relaxations - before.exists_relaxations, 2);
        assert_eq!(after.heap_pushes - before.heap_pushes, 3);
    }

    #[test]
    fn span_records_latency_and_cost() {
        let m = metrics();
        let before = m.snapshot();
        let span = QuerySpan::start();
        span.finish(120, 3);
        let after = m.snapshot();
        assert_eq!(after.queries - before.queries, 1);
        assert_eq!(after.tuples_evaluated - before.tuples_evaluated, 120);
        assert_eq!(after.pseudo_evaluated - before.pseudo_evaluated, 3);
        assert_eq!(
            after.query_cost.count() - before.query_cost.count(),
            1,
            "one cost observation"
        );
        assert_eq!(after.query_cost.sum - before.query_cost.sum, 123);
        assert_eq!(
            after.query_latency_ns.count() - before.query_latency_ns.count(),
            1
        );
    }
}
