//! Zero-sized mirror of `active.rs`, compiled when the `enabled` feature
//! is off. Every method is an empty `#[inline]` body, so instrumented
//! call sites optimize to nothing; snapshots report zeros.

use crate::snapshot::MetricsSnapshot;

/// No-op stand-in for the registry (feature `enabled` off).
#[derive(Debug)]
pub struct MetricsRegistry;

static REGISTRY: MetricsRegistry = MetricsRegistry;

/// The process-wide registry (inert in this build).
#[inline]
pub fn metrics() -> &'static MetricsRegistry {
    &REGISTRY
}

impl MetricsRegistry {
    /// Always `false`: nothing can record in this build.
    #[inline]
    pub fn recording(&self) -> bool {
        false
    }

    /// Ignored (recording support is compiled out).
    #[inline]
    pub fn set_recording(&self, _on: bool) {}

    /// No-op.
    #[inline]
    pub fn zero_probe(&self) {}

    /// No-op.
    #[inline]
    pub fn batch_enqueue(&self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn batch_drain(&self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn dynamic_insert(&self) {}

    /// No-op.
    #[inline]
    pub fn dynamic_delete(&self) {}

    /// No-op.
    #[inline]
    pub fn dynamic_rebuild(&self) {}

    /// No-op.
    #[inline]
    pub fn dynamic_buffer_scan(&self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn cache_hit(&self) {}

    /// No-op.
    #[inline]
    pub fn cache_miss(&self) {}

    /// No-op.
    #[inline]
    pub fn cache_cert_reject(&self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn cache_invalidate(&self) {}

    /// No-op.
    #[inline]
    pub fn server_connection(&self) {}

    /// No-op.
    #[inline]
    pub fn server_request(&self) {}

    /// No-op.
    #[inline]
    pub fn server_shed(&self) {}

    /// No-op.
    #[inline]
    pub fn server_protocol_error(&self) {}

    /// No-op.
    #[inline]
    pub fn server_enqueue(&self) {}

    /// No-op.
    #[inline]
    pub fn server_batch(&self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn server_queue_wait(&self, _ns: u64) {}

    /// No-op.
    #[inline]
    pub fn shard_probe(&self) {}

    /// No-op.
    #[inline]
    pub fn shard_probe_failure(&self) {}

    /// No-op.
    #[inline]
    pub fn shard_retry(&self) {}

    /// No-op.
    #[inline]
    pub fn shard_degraded_answer(&self) {}

    /// No-op.
    #[inline]
    pub fn shard_failover(&self) {}

    /// No-op.
    #[inline]
    pub fn shard_hedge(&self) {}

    /// No-op.
    #[inline]
    pub fn endpoint_ping(&self) {}

    /// No-op.
    #[inline]
    pub fn endpoint_ping_failure(&self) {}

    /// No-op.
    #[inline]
    pub fn set_shard_health(&self, _up: u64, _degraded: u64, _down: u64) {}

    /// All zeros.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// No-op.
    pub fn reset(&self) {}
}

/// Zero-sized stand-in for the per-query counter block.
#[derive(Debug, Clone, Default)]
pub struct QueryCounters;

impl QueryCounters {
    /// A (zero-sized) block.
    #[inline]
    pub fn new() -> Self {
        QueryCounters
    }

    /// No-op.
    #[inline]
    pub fn forall_relaxed(&mut self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn exists_relaxed(&mut self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn heap_pushed(&mut self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn kernel_block(&mut self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn scratch_touched(&mut self, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn clear(&mut self) {}

    /// No-op.
    #[inline]
    pub fn flush(&mut self) {}
}

/// Zero-sized stand-in for the per-query span.
#[derive(Debug)]
pub struct QuerySpan;

impl QuerySpan {
    /// An inert span.
    #[inline]
    pub fn start() -> Self {
        QuerySpan
    }

    /// No-op.
    #[inline]
    pub fn finish(self, _evaluated: u64, _pseudo_evaluated: u64) {}
}
