//! Query-path observability for the `drtopk` workspace.
//!
//! The paper's evaluation metric is a *cost*: Definition 9 counts the
//! tuples evaluated by the scoring function `F` during query processing.
//! This crate makes that cost — and the traversal work behind it —
//! observable on a serving path, continuously and cheaply:
//!
//! * a process-wide [`MetricsRegistry`] of **sharded atomic counters**
//!   (tuples evaluated, ∀/∃ relaxations, heap pushes, zero-layer probes,
//!   batch queue depth, dynamic-index maintenance) — concurrent writers
//!   land on distinct cache-line-padded shards, so recording never
//!   serializes query threads;
//! * **log-bucketed histograms** of per-query latency and paper cost with
//!   p50/p95/p99 readout;
//! * a per-query span ([`QuerySpan`]) plus a scratch-resident local
//!   counter block ([`QueryCounters`]): the hot path increments plain
//!   integers and flushes them to the registry *once per query*, so the
//!   per-tuple overhead is a non-atomic add;
//! * a plain-data [`MetricsSnapshot`] with hand-rolled JSON and
//!   Prometheus text-format renderers (`drtopk stats --format json|prom`).
//!
//! Every number exported here maps to a paper quantity; the table lives
//! in `DESIGN.md` § Observability.
//!
//! # Feature gating
//!
//! With the `enabled` feature (default) off, all recording types are
//! zero-sized and every method is an empty `#[inline]` body: the query
//! path compiles to exactly the un-instrumented code. Snapshots then
//! report zeros. Disable it through the consumer crates, e.g.
//! `cargo build -p drtopk-bench --no-default-features`.
//!
//! # Runtime gating
//!
//! Even when compiled in, recording can be switched off per process with
//! [`MetricsRegistry::set_recording`]: spans skip the clock read and
//! counter flushes skip the atomic traffic. The residual cost is the
//! plain-integer increments, which the throughput bench measures at well
//! under the 2 % budget (see `BENCH_throughput.json`).
//!
//! ```
//! use drtopk_obs::metrics;
//!
//! let m = metrics();
//! m.zero_probe(); // e.g. one 2-d zero-layer binary search
//! let snap = m.snapshot();
//! // Recorded when compiled in; silently dropped in a no-op build.
//! assert_eq!(snap.zero_probes, u64::from(drtopk_obs::COMPILED));
//! assert!(snap.to_prometheus().contains("drtopk_zero_probes_total"));
//! ```
#![warn(missing_docs)]

pub mod snapshot;

#[cfg(feature = "enabled")]
mod active;
#[cfg(feature = "enabled")]
pub use active::{
    metrics, LogHistogram, MetricsRegistry, QueryCounters, QuerySpan, ShardedCounter,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{metrics, MetricsRegistry, QueryCounters, QuerySpan};

pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Whether recording support was compiled in (the `enabled` feature).
/// Benchmarks embed this so disabled-build numbers are never mistaken for
/// instrumented ones.
pub const COMPILED: bool = cfg!(feature = "enabled");
