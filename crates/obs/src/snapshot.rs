//! Plain-data snapshots of the registry, with JSON and Prometheus
//! text-format renderers. This module compiles (and renders zeros) even
//! when the `enabled` feature is off, so exporters never need feature
//! gates of their own.

use std::fmt::Write as _;

/// Number of log₂ buckets a histogram carries: bucket 0 holds the value
/// `0`, bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 65;

/// A point-in-time copy of one log-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub counts: Vec<u64>,
    /// Exact sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

/// Inclusive upper bound of bucket `b` (`2^b − 1`, saturating).
fn bucket_upper(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Representative value of bucket `b`: the geometric midpoint of its
/// range, which bounds the quantile estimate's relative error by √2.
fn bucket_mid(b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        (2f64).powi(b as i32) / std::f64::consts::SQRT_2
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Nearest-rank quantile estimate (`q` in `0..=1`), returned as the
    /// geometric midpoint of the bucket holding that rank. `NaN` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(b);
            }
        }
        bucket_mid(HIST_BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (exact — the sum is exact).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum as f64 / n as f64
        }
    }

    fn to_json(&self, out: &mut String, pad: &str) {
        let _ = write!(
            out,
            "{{\n{pad}  \"count\": {},\n{pad}  \"sum\": {},\n{pad}  \"p50\": {},\n{pad}  \"p95\": {},\n{pad}  \"p99\": {},\n{pad}  \"buckets\": [",
            self.count(),
            self.sum,
            json_f64(self.p50()),
            json_f64(self.p95()),
            json_f64(self.p99()),
        );
        let mut first = true;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n{pad}    [{}, {}]", bucket_upper(b), c);
        }
        if !first {
            let _ = write!(out, "\n{pad}  ");
        }
        let _ = write!(out, "]\n{pad}}}");
    }

    /// Appends this histogram in Prometheus text format. `scale`
    /// multiplies bucket bounds and the sum (e.g. `1e-9` to export
    /// nanosecond recordings in seconds).
    fn to_prometheus(&self, out: &mut String, name: &str, help: &str, scale: f64) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = (bucket_upper(b) as f64) * scale;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum as f64 * scale);
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

/// Floats in JSON: `NaN`/infinities have no literal, so they render null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A point-in-time copy of every registry metric. Field-for-field, this
/// is the export schema; the mapping to paper quantities is documented in
/// `DESIGN.md` § Observability.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Completed top-k / threshold queries.
    pub queries: u64,
    /// Real tuples scored by `F` (Definition 9 cost, real part).
    pub tuples_evaluated: u64,
    /// Zero-layer pseudo-tuples scored by `F` (Definition 9, pseudo part).
    pub pseudo_evaluated: u64,
    /// ∀-dominance out-edges relaxed (∀-freeness bookkeeping steps,
    /// Definition 7 / Algorithm 2).
    pub forall_relaxations: u64,
    /// ∃-dominance out-edges relaxed (∃-freeness bookkeeping steps,
    /// Definition 8 / Algorithm 2).
    pub exists_relaxations: u64,
    /// Entries pushed onto the query priority queue.
    pub heap_pushes: u64,
    /// Zero-layer selective-access probes (2-d weight-range binary
    /// searches, Section V-A).
    pub zero_probes: u64,
    /// Requests handed to a batch-executor run.
    pub batch_enqueued: u64,
    /// Batch requests fully answered.
    pub batch_drained: u64,
    /// Tuples inserted into a dynamic index.
    pub dynamic_inserts: u64,
    /// Live tuples tombstoned in a dynamic index.
    pub dynamic_deletes: u64,
    /// Full dynamic-index rebuilds (buffer + tombstone compactions).
    pub dynamic_rebuilds: u64,
    /// Buffered (unindexed) tuples scanned by dynamic-index queries.
    pub dynamic_buffer_scanned: u64,
    /// Result-cache lookups served from the cache (cell + certified hits).
    pub cache_hits: u64,
    /// Result-cache lookups that fell back to the traversal.
    pub cache_misses: u64,
    /// Cached entries whose hit certificate failed validation.
    pub cache_cert_rejects: u64,
    /// Result-cache generation bumps (full invalidations).
    pub cache_invalidations: u64,
    /// Client connections accepted by the network server.
    pub server_connections: u64,
    /// Well-formed request frames received by the network server.
    pub server_requests: u64,
    /// Requests shed by admission control (answered `Overloaded`).
    pub server_sheds: u64,
    /// Protocol violations (bad frame, CRC mismatch, oversized length).
    pub server_protocol_errors: u64,
    /// Requests admitted into the server's bounded queue.
    pub server_enqueued: u64,
    /// Requests pulled from the server queue into micro-batches.
    pub server_dequeued: u64,
    /// Shard probes attempted by the shard router (retries included).
    pub shard_probes: u64,
    /// Shard probes that failed (error, panic, or timeout).
    pub shard_probe_failures: u64,
    /// Shard probes retried after a transient failure.
    pub shard_retries: u64,
    /// Routed answers returned with degraded (partial) shard coverage.
    pub shard_degraded_answers: u64,
    /// Probes failed over from one replica-set endpoint to the next.
    pub shard_failovers: u64,
    /// Hedged second probes launched after the hedge latency threshold.
    pub shard_hedges: u64,
    /// Health-pinger PINGs issued to remote endpoints.
    pub endpoint_pings: u64,
    /// Health-pinger PINGs that failed (connect, timeout, or bad reply).
    pub endpoint_ping_failures: u64,
    /// Shards currently healthy (router gauge).
    pub shards_up: u64,
    /// Shards currently degraded — failing but below the Down threshold.
    pub shards_degraded: u64,
    /// Shards currently down (skipped by the router).
    pub shards_down: u64,
    /// Per-query wall-clock latency, recorded in nanoseconds.
    pub query_latency_ns: HistogramSnapshot,
    /// Per-query paper cost (Definition 9 total, real + pseudo).
    pub query_cost: HistogramSnapshot,
    /// Per-query count of scratch nodes lazily initialized (the
    /// epoch-versioned scratch's O(touched) setup work).
    pub scratch_touched: HistogramSnapshot,
    /// Tuples per scoring-kernel invocation (columnar block sizes on the
    /// query hot path).
    pub kernel_block_tuples: HistogramSnapshot,
    /// Requests per server micro-batch flush (adaptive batching window).
    pub server_batch_size: HistogramSnapshot,
    /// Per-request time spent waiting in the server queue, in nanoseconds.
    pub server_queue_wait_ns: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Batch requests currently in flight (enqueued but not yet drained).
    pub fn batch_queue_depth(&self) -> u64 {
        self.batch_enqueued.saturating_sub(self.batch_drained)
    }

    /// Requests currently waiting in the server's admission queue
    /// (admitted but not yet pulled into a micro-batch).
    pub fn server_queue_depth(&self) -> u64 {
        self.server_enqueued.saturating_sub(self.server_dequeued)
    }

    /// The counter fields as `(name, help, value)` rows — one source of
    /// truth shared by the JSON and Prometheus renderers.
    pub fn counter_rows(&self) -> Vec<(&'static str, &'static str, u64)> {
        vec![
            (
                "queries",
                "Completed top-k / threshold queries",
                self.queries,
            ),
            (
                "tuples_evaluated",
                "Real tuples scored by F (Definition 9 cost)",
                self.tuples_evaluated,
            ),
            (
                "pseudo_evaluated",
                "Zero-layer pseudo-tuples scored by F",
                self.pseudo_evaluated,
            ),
            (
                "forall_relaxations",
                "Forall-dominance edges relaxed (forall-freeness checks)",
                self.forall_relaxations,
            ),
            (
                "exists_relaxations",
                "Exists-dominance edges relaxed (exists-freeness checks)",
                self.exists_relaxations,
            ),
            (
                "heap_pushes",
                "Entries pushed onto the query priority queue",
                self.heap_pushes,
            ),
            (
                "zero_probes",
                "Zero-layer weight-range probes (Section V-A)",
                self.zero_probes,
            ),
            (
                "batch_enqueued",
                "Requests handed to the batch executor",
                self.batch_enqueued,
            ),
            (
                "batch_drained",
                "Batch requests fully answered",
                self.batch_drained,
            ),
            (
                "dynamic_inserts",
                "Tuples inserted into dynamic indexes",
                self.dynamic_inserts,
            ),
            (
                "dynamic_deletes",
                "Live tuples tombstoned in dynamic indexes",
                self.dynamic_deletes,
            ),
            (
                "dynamic_rebuilds",
                "Dynamic-index compactions (full rebuilds)",
                self.dynamic_rebuilds,
            ),
            (
                "dynamic_buffer_scanned",
                "Buffered tuples scanned by dynamic-index queries",
                self.dynamic_buffer_scanned,
            ),
            (
                "cache_hits",
                "Result-cache lookups served from the cache",
                self.cache_hits,
            ),
            (
                "cache_misses",
                "Result-cache lookups answered by the traversal",
                self.cache_misses,
            ),
            (
                "cache_cert_rejects",
                "Cached entries whose hit certificate failed validation",
                self.cache_cert_rejects,
            ),
            (
                "cache_invalidations",
                "Result-cache generation bumps (full invalidations)",
                self.cache_invalidations,
            ),
            (
                "server_connections",
                "Client connections accepted by the network server",
                self.server_connections,
            ),
            (
                "server_requests",
                "Well-formed request frames received by the network server",
                self.server_requests,
            ),
            (
                "server_sheds",
                "Requests shed by admission control (answered Overloaded)",
                self.server_sheds,
            ),
            (
                "server_protocol_errors",
                "Protocol violations on server connections",
                self.server_protocol_errors,
            ),
            (
                "server_enqueued",
                "Requests admitted into the server queue",
                self.server_enqueued,
            ),
            (
                "server_dequeued",
                "Requests pulled from the server queue into micro-batches",
                self.server_dequeued,
            ),
            (
                "shard_probes",
                "Shard probes attempted by the shard router",
                self.shard_probes,
            ),
            (
                "shard_probe_failures",
                "Shard probes that failed (error, panic, or timeout)",
                self.shard_probe_failures,
            ),
            (
                "shard_retries",
                "Shard probes retried after a transient failure",
                self.shard_retries,
            ),
            (
                "shard_degraded_answers",
                "Routed answers returned with degraded shard coverage",
                self.shard_degraded_answers,
            ),
            (
                "shard_failovers",
                "Probes failed over from one replica-set endpoint to the next",
                self.shard_failovers,
            ),
            (
                "shard_hedges",
                "Hedged second probes launched after the latency threshold",
                self.shard_hedges,
            ),
            (
                "endpoint_pings",
                "Health-pinger PINGs issued to remote endpoints",
                self.endpoint_pings,
            ),
            (
                "endpoint_ping_failures",
                "Health-pinger PINGs that failed",
                self.endpoint_ping_failures,
            ),
        ]
    }

    /// The shard-health gauge fields as `(name, help, value)` rows —
    /// shared by the JSON and Prometheus renderers like
    /// [`MetricsSnapshot::counter_rows`].
    pub fn shard_gauge_rows(&self) -> Vec<(&'static str, &'static str, u64)> {
        vec![
            ("shards_up", "Shards currently healthy", self.shards_up),
            (
                "shards_degraded",
                "Shards failing but below the Down threshold",
                self.shards_degraded,
            ),
            (
                "shards_down",
                "Shards currently down (skipped by the router)",
                self.shards_down,
            ),
        ]
    }

    /// Renders the snapshot as a pretty-printed JSON object. `indent` is
    /// the nesting level of the object itself (0 = top level), letting
    /// callers embed the output inside a larger document.
    pub fn to_json_indented(&self, indent: usize) -> String {
        let pad = "  ".repeat(indent);
        let mut out = String::new();
        out.push_str("{\n");
        for (name, _help, value) in self.counter_rows() {
            let _ = writeln!(out, "{pad}  \"{name}\": {value},");
        }
        let _ = writeln!(
            out,
            "{pad}  \"batch_queue_depth\": {},",
            self.batch_queue_depth()
        );
        let _ = writeln!(
            out,
            "{pad}  \"server_queue_depth\": {},",
            self.server_queue_depth()
        );
        for (name, _help, value) in self.shard_gauge_rows() {
            let _ = writeln!(out, "{pad}  \"{name}\": {value},");
        }
        let _ = write!(out, "{pad}  \"query_latency_ns\": ");
        self.query_latency_ns.to_json(&mut out, &format!("{pad}  "));
        out.push_str(",\n");
        let _ = write!(out, "{pad}  \"query_cost\": ");
        self.query_cost.to_json(&mut out, &format!("{pad}  "));
        out.push_str(",\n");
        let _ = write!(out, "{pad}  \"scratch_touched\": ");
        self.scratch_touched.to_json(&mut out, &format!("{pad}  "));
        out.push_str(",\n");
        let _ = write!(out, "{pad}  \"kernel_block_tuples\": ");
        self.kernel_block_tuples
            .to_json(&mut out, &format!("{pad}  "));
        out.push_str(",\n");
        let _ = write!(out, "{pad}  \"server_batch_size\": ");
        self.server_batch_size
            .to_json(&mut out, &format!("{pad}  "));
        out.push_str(",\n");
        let _ = write!(out, "{pad}  \"server_queue_wait_ns\": ");
        self.server_queue_wait_ns
            .to_json(&mut out, &format!("{pad}  "));
        let _ = write!(out, "\n{pad}}}");
        out
    }

    /// Renders the snapshot as a top-level JSON document.
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_indented(0);
        s.push('\n');
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Counters are `drtopk_*_total`; the in-flight batch depth is a
    /// gauge; latency (converted to seconds) and cost are histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in self.counter_rows() {
            prom_counter(&mut out, &format!("drtopk_{name}_total"), help, value);
        }
        prom_gauge(
            &mut out,
            "drtopk_batch_queue_depth",
            "Batch requests currently in flight",
            self.batch_queue_depth() as f64,
        );
        prom_gauge(
            &mut out,
            "drtopk_server_queue_depth",
            "Requests waiting in the server admission queue",
            self.server_queue_depth() as f64,
        );
        for (name, help, value) in self.shard_gauge_rows() {
            prom_gauge(&mut out, &format!("drtopk_{name}"), help, value as f64);
        }
        self.query_latency_ns.to_prometheus(
            &mut out,
            "drtopk_query_latency_seconds",
            "Per-query wall-clock latency",
            1e-9,
        );
        self.query_cost.to_prometheus(
            &mut out,
            "drtopk_query_cost_tuples",
            "Per-query tuples evaluated by F (Definition 9)",
            1.0,
        );
        self.scratch_touched.to_prometheus(
            &mut out,
            "drtopk_scratch_touched_nodes",
            "Per-query scratch nodes lazily initialized",
            1.0,
        );
        self.kernel_block_tuples.to_prometheus(
            &mut out,
            "drtopk_kernel_block_tuples",
            "Tuples per scoring-kernel block",
            1.0,
        );
        self.server_batch_size.to_prometheus(
            &mut out,
            "drtopk_server_batch_size",
            "Requests per server micro-batch flush",
            1.0,
        );
        self.server_queue_wait_ns.to_prometheus(
            &mut out,
            "drtopk_server_queue_wait_seconds",
            "Per-request wait in the server admission queue",
            1e-9,
        );
        out
    }
}

/// Appends one Prometheus counter (HELP + TYPE + sample).
pub fn prom_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one Prometheus gauge (HELP + TYPE + sample).
pub fn prom_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::default();
        for &v in values {
            let b = (64 - v.leading_zeros()) as usize;
            h.counts[b] += 1;
            h.sum += v;
        }
        h
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = hist_with(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 1000]);
        assert_eq!(h.count(), 10);
        // p50 sits in bucket 1 ([1,2)); p99 in the bucket holding 1000.
        assert!(h.p50() >= 1.0 && h.p50() < 2.0, "p50 = {}", h.p50());
        assert!(h.p99() >= 512.0 && h.p99() < 1024.0, "p99 = {}", h.p99());
        assert_eq!(h.sum, 1009);
        assert!((h.mean() - 100.9).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_nan_not_panic() {
        let h = HistogramSnapshot::default();
        assert!(h.p50().is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn json_is_well_formed_and_null_safe() {
        let mut s = MetricsSnapshot {
            queries: 3,
            tuples_evaluated: 42,
            ..MetricsSnapshot::default()
        };
        s.query_cost = hist_with(&[10, 20, 30]);
        let j = s.to_json();
        assert!(j.contains("\"tuples_evaluated\": 42"));
        // The latency histogram is empty: its quantiles must render null.
        assert!(j.contains("\"p50\": null"));
        // Crude balance check on the hand-rolled writer.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn prometheus_format_has_cumulative_buckets() {
        let s = MetricsSnapshot {
            query_cost: hist_with(&[1, 3, 3, 100]),
            ..Default::default()
        };
        let p = s.to_prometheus();
        assert!(p.contains("# TYPE drtopk_query_cost_tuples histogram"));
        assert!(p.contains("drtopk_query_cost_tuples_bucket{le=\"+Inf\"} 4"));
        assert!(p.contains("drtopk_query_cost_tuples_sum 107"));
        assert!(p.contains("# TYPE drtopk_queries_total counter"));
        assert!(p.contains("# TYPE drtopk_batch_queue_depth gauge"));
        // Cumulative counts must be non-decreasing in bound order.
        let mut last = 0u64;
        for line in p
            .lines()
            .filter(|l| l.starts_with("drtopk_query_cost_tuples_bucket") && !l.contains("+Inf"))
        {
            let c: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(c >= last, "buckets not cumulative: {p}");
            last = c;
        }
    }

    #[test]
    fn server_queue_depth_is_enqueued_minus_dequeued() {
        let s = MetricsSnapshot {
            server_enqueued: 9,
            server_dequeued: 4,
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.server_queue_depth(), 5);
        let p = s.to_prometheus();
        assert!(p.contains("drtopk_server_queue_depth 5"));
        assert!(p.contains("# TYPE drtopk_server_sheds_total counter"));
        assert!(p.contains("# TYPE drtopk_server_batch_size histogram"));
        let j = s.to_json();
        assert!(j.contains("\"server_queue_depth\": 5"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn queue_depth_is_enqueued_minus_drained() {
        let s = MetricsSnapshot {
            batch_enqueued: 10,
            batch_drained: 7,
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.batch_queue_depth(), 3);
    }
}
