//! Batch query throughput harness.
//!
//! Measures, for each `(n, d, k)` cell:
//!
//! * per-query latency (p50/p99) and QPS of a sequential loop of
//!   [`DualLayerIndex::topk`] calls (fresh scratch each query — the
//!   baseline an application gets without the batch engine);
//! * wall-clock QPS of [`BatchExecutor::run_uniform`] at each requested
//!   thread count (pooled scratch, scoped-thread fan-out);
//! * mean paper cost (Definition 9) per query, which is identical across
//!   all execution modes — the executor is bit-deterministic;
//! * guarded-path overhead: the same sequential loop again through
//!   [`DualLayerIndex::topk_guarded`] with an unlimited
//!   [`drtopk_core::QueryBudget`] — the no-op fast path of the budget
//!   guard, which must stay within 2 % of the plain path's p50 and return
//!   bit-identical answers;
//! * observability overhead: the sequential pass runs twice, once with the
//!   metrics registry's runtime recording gate off and once on, and the
//!   report carries both p50s plus the relative overhead (budget: ≤ 2 %).
//!   Each cell also embeds the registry snapshot its instrumented passes
//!   produced. Building with `--no-default-features` compiles recording
//!   out entirely (`obs.compiled = false` in the report).
//!
//! * scratch split: a reused-[`drtopk_core::QueryScratch`] pass timing the
//!   O(1) epoch reset separately from the traversal, so the report shows
//!   reset cost independent of `n` and traversal cost tracking the touched
//!   prefix, not the relation.
//!
//! * result cache under repetition: a Zipf-distributed workload drawn
//!   from a small weight pool (`--zipf-pool`) replays at each requested
//!   skew (`--zipf-skews`), once uncached and once through a
//!   [`drtopk_core::ResultCache`]; answers must stay bit-identical, and
//!   the report records hit rate, cached/uncached p50, hit-path p50 and
//!   QPS per skew under `zipf_cache`.
//!
//! Results land in a JSON file (default `BENCH_throughput.json`), one
//! object per cell, plus host metadata (`available_parallelism`) so
//! numbers from different machines are never compared blindly.
//! `--min-qps F` turns the harness into a regression gate: it exits
//! nonzero if any cell's single-thread QPS lands below the floor.
//!
//! ```text
//! throughput [--n 100000[,N...]] [--d 3[,...]] [--k 10[,...]]
//!            [--threads 1,2,4] [--queries 1000] [--out FILE] [--min-qps F]
//!            [--zipf-pool P] [--zipf-skews 0.5,1.0,1.5]
//! ```

use drtopk_bench::json::Value;
use drtopk_bench::{dataset, query_weights};
use drtopk_common::{Distribution, ZipfWeightWorkload};
use drtopk_core::{BatchExecutor, DlOptions, DualLayerIndex, ResultCache};
use std::time::Instant;

struct Config {
    ns: Vec<usize>,
    ds: Vec<usize>,
    ks: Vec<usize>,
    threads: Vec<usize>,
    queries: usize,
    out: String,
    /// Fail (exit 1) if any cell's single-thread QPS lands below this
    /// floor — the CI perf-smoke regression gate.
    min_qps: Option<f64>,
    /// Distinct weight vectors the Zipf workload draws from.
    zipf_pool: usize,
    /// Zipf skew levels for the result-cache pass (0 = uniform).
    zipf_skews: Vec<f64>,
}

impl Config {
    fn parse(args: &[String]) -> Result<Config, String> {
        let mut cfg = Config {
            ns: vec![100_000],
            ds: vec![3],
            ks: vec![10],
            threads: vec![1, 2, 4],
            queries: 1000,
            out: "BENCH_throughput.json".to_string(),
            min_qps: None,
            zipf_pool: 128,
            zipf_skews: vec![0.5, 1.0, 1.5],
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let val = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            match flag {
                "--n" => cfg.ns = parse_list(val)?,
                "--d" => cfg.ds = parse_list(val)?,
                "--k" => cfg.ks = parse_list(val)?,
                "--threads" => cfg.threads = parse_list(val)?,
                "--queries" => cfg.queries = parse_list(val)?[0],
                "--out" => cfg.out = val.clone(),
                "--min-qps" => {
                    cfg.min_qps = Some(
                        val.parse()
                            .map_err(|_| format!("cannot parse --min-qps {val:?}"))?,
                    )
                }
                "--zipf-pool" => cfg.zipf_pool = parse_list(val)?[0],
                "--zipf-skews" => cfg.zipf_skews = parse_float_list(val)?,
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        if cfg.queries == 0 {
            return Err("--queries must be positive".to_string());
        }
        if cfg.zipf_pool == 0 {
            return Err("--zipf-pool must be positive".to_string());
        }
        if cfg.zipf_skews.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err("--zipf-skews must be finite and non-negative".to_string());
        }
        Ok(cfg)
    }
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    let v: Result<Vec<usize>, _> = s.split(',').map(|p| p.trim().parse::<usize>()).collect();
    match v {
        Ok(list) if !list.is_empty() => Ok(list),
        _ => Err(format!("cannot parse list {s:?}")),
    }
}

fn parse_float_list(s: &str) -> Result<Vec<f64>, String> {
    let v: Result<Vec<f64>, _> = s.split(',').map(|p| p.trim().parse::<f64>()).collect();
    match v {
        Ok(list) if !list.is_empty() => Ok(list),
        _ => Err(format!("cannot parse float list {s:?}")),
    }
}

/// Nearest-rank percentile of a sorted slice (q in 0..=1).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one `(n, d, k)` cell; returns its report object plus the
/// single-thread QPS the `--min-qps` gate checks.
fn run_cell(n: usize, d: usize, k: usize, cfg: &Config) -> (Value, f64) {
    eprintln!("cell n={n} d={d} k={k}: building DL+ index...");
    let rel = dataset(Distribution::Independent, d, n);
    let t0 = Instant::now();
    let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
    let build_secs = t0.elapsed().as_secs_f64();
    let weights = query_weights(d, cfg.queries, 0xC0FFEE);

    // Warmup: touch the index and fault in the columns once.
    let _ = idx.topk(&weights[0], k);

    // Recording-off pass: the identical sequential loop with the metrics
    // registry gated off — the overhead baseline. Its results become the
    // reference the instrumented passes are checked against.
    let m = drtopk_obs::metrics();
    m.set_recording(false);
    let mut off_lat_us = Vec::with_capacity(weights.len());
    let mut reference = Vec::with_capacity(weights.len());
    for w in &weights {
        let q0 = Instant::now();
        let r = idx.topk(w, k);
        off_lat_us.push(q0.elapsed().as_secs_f64() * 1e6);
        reference.push(r);
    }
    off_lat_us.sort_by(|a, b| a.total_cmp(b));
    let p50_off = percentile(&off_lat_us, 0.50);

    // Sequential baseline, recording on: one topk call per query, timed
    // individually for the latency distribution. The registry is reset
    // first so the cell's snapshot covers exactly its instrumented passes.
    m.set_recording(true);
    m.reset();
    let mut latencies_us = Vec::with_capacity(weights.len());
    let mut total_cost = 0u64;
    let seq_t0 = Instant::now();
    for (w, s) in weights.iter().zip(&reference) {
        let q0 = Instant::now();
        let r = idx.topk(w, k);
        latencies_us.push(q0.elapsed().as_secs_f64() * 1e6);
        total_cost += r.cost.total();
        assert_eq!(r.ids, s.ids, "recording on/off changed answers");
        assert_eq!(r.cost, s.cost, "recording on/off changed costs");
    }
    let seq_secs = seq_t0.elapsed().as_secs_f64();
    let seq_qps = weights.len() as f64 / seq_secs;
    let mean_cost = total_cost as f64 / weights.len() as f64;
    let mut sorted = latencies_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
    let overhead_pct = if p50_off > 0.0 {
        (p50 - p50_off) / p50_off * 100.0
    } else {
        f64::NAN
    };
    eprintln!(
        "  sequential: {seq_qps:.0} q/s, p50 {p50:.1}µs p99 {p99:.1}µs, mean cost {mean_cost:.1}"
    );
    eprintln!("  obs overhead: p50 off {p50_off:.2}µs on {p50:.2}µs ({overhead_pct:+.2}%)");

    // Guarded-path overhead: the same queries through topk_guarded with
    // an unlimited budget (the guard's no-op fast path), measured PAIRED
    // with a plain call — back-to-back per query, order alternating — so
    // clock drift and thermal noise hit both sides equally. The p50s of
    // the paired samples must stay within 2 % and answers bit-identical.
    let unlimited = drtopk_core::QueryBudget::unlimited();
    let mut plain_paired_us = Vec::with_capacity(weights.len());
    let mut guarded_lat_us = Vec::with_capacity(weights.len());
    let g_t0 = Instant::now();
    for (i, (w, s)) in weights.iter().zip(&reference).enumerate() {
        let (plain, guarded) = if i % 2 == 0 {
            let q0 = Instant::now();
            let p = idx.topk(w, k);
            let plain = q0.elapsed().as_secs_f64() * 1e6;
            let q1 = Instant::now();
            let g = idx.topk_guarded(w, k, &unlimited);
            ((p, plain), (g, q1.elapsed().as_secs_f64() * 1e6))
        } else {
            let q1 = Instant::now();
            let g = idx.topk_guarded(w, k, &unlimited);
            let guarded = q1.elapsed().as_secs_f64() * 1e6;
            let q0 = Instant::now();
            let p = idx.topk(w, k);
            ((p, q0.elapsed().as_secs_f64() * 1e6), (g, guarded))
        };
        let (p, plain_us) = plain;
        let (g, guarded_us) = guarded;
        plain_paired_us.push(plain_us);
        guarded_lat_us.push(guarded_us);
        assert_eq!(g.ids, s.ids, "guarded path changed answers");
        assert_eq!(g.cost, s.cost, "guarded path changed costs");
        assert_eq!(p.ids, s.ids, "plain paired pass changed answers");
        assert!(g.truncated.is_none(), "unlimited budget tripped");
    }
    let guarded_qps = 2.0 * weights.len() as f64 / g_t0.elapsed().as_secs_f64();
    plain_paired_us.sort_by(|a, b| a.total_cmp(b));
    guarded_lat_us.sort_by(|a, b| a.total_cmp(b));
    let p50_plain_paired = percentile(&plain_paired_us, 0.50);
    let p50_guarded = percentile(&guarded_lat_us, 0.50);
    let guarded_overhead_pct = if p50_plain_paired > 0.0 {
        (p50_guarded - p50_plain_paired) / p50_plain_paired * 100.0
    } else {
        f64::NAN
    };
    eprintln!(
        "  guarded (unlimited budget): p50 {p50_guarded:.2}µs vs paired plain \
         {p50_plain_paired:.2}µs ({guarded_overhead_pct:+.2}%)"
    );

    // Scratch split: the epoch-versioned reset must be O(1) — independent
    // of n — and the traversal O(nodes touched). Both are timed separately
    // with one reused scratch; answers stay bit-identical to the fresh-
    // scratch reference. (topk_with_scratch resets internally, so each
    // query pays the reset twice here; at single-digit nanoseconds that is
    // measurement noise.)
    let mut scratch = drtopk_core::QueryScratch::for_index(&idx);
    let mut reset_ns = Vec::with_capacity(weights.len());
    let mut with_scratch_us = Vec::with_capacity(weights.len());
    for (w, s) in weights.iter().zip(&reference) {
        let r0 = Instant::now();
        scratch.reset(&idx);
        reset_ns.push(r0.elapsed().as_secs_f64() * 1e9);
        let q0 = Instant::now();
        let r = idx.topk_with_scratch(w, k, &mut scratch);
        with_scratch_us.push(q0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(r.ids, s.ids, "scratch reuse changed answers");
        assert_eq!(r.cost, s.cost, "scratch reuse changed costs");
    }
    let with_scratch_secs: f64 = with_scratch_us.iter().sum::<f64>() / 1e6;
    let scratch_qps = weights.len() as f64 / with_scratch_secs;
    reset_ns.sort_by(|a, b| a.total_cmp(b));
    with_scratch_us.sort_by(|a, b| a.total_cmp(b));
    let reset_p50_ns = percentile(&reset_ns, 0.50);
    let reset_p99_ns = percentile(&reset_ns, 0.99);
    let scratch_p50 = percentile(&with_scratch_us, 0.50);
    eprintln!(
        "  scratch split: reset p50 {reset_p50_ns:.0}ns (p99 {reset_p99_ns:.0}ns), \
         traversal p50 {scratch_p50:.2}µs, {scratch_qps:.0} q/s reused-scratch"
    );

    // Executor passes at each thread count; every result is checked
    // against the sequential reference (the determinism contract).
    let mut executor_rows = Vec::new();
    let mut single_qps = seq_qps;
    for &t in &cfg.threads {
        let exec = BatchExecutor::with_threads(&idx, t);
        let e0 = Instant::now();
        let results = exec.run_uniform(&weights, k);
        let secs = e0.elapsed().as_secs_f64();
        let qps = weights.len() as f64 / secs;
        for (r, s) in results.iter().zip(&reference) {
            assert_eq!(r.ids, s.ids, "executor answers diverged at threads={t}");
            assert_eq!(r.cost, s.cost, "executor costs diverged at threads={t}");
        }
        eprintln!(
            "  executor threads={t}: {qps:.0} q/s ({:.2}x sequential)",
            qps / seq_qps
        );
        if t == 1 {
            single_qps = qps;
        }
        executor_rows.push(Value::object([
            ("threads", Value::uint(t)),
            ("qps", Value::float(qps)),
            ("speedup_vs_sequential", Value::float(qps / seq_qps)),
        ]));
    }

    // Result-cache pass: a Zipf workload over a small weight pool so
    // queries repeat, replayed uncached (the oracle) and then through a
    // fresh ResultCache. Ids must stay bit-identical; the report carries
    // hit rate, cached vs uncached p50, and the hit-path p50 per skew.
    let mut zipf_rows = Vec::new();
    for &skew in &cfg.zipf_skews {
        let pool = cfg.zipf_pool;
        let zipf =
            ZipfWeightWorkload::new(d, pool, cfg.queries, skew, 0x21BF ^ n as u64).generate();
        // Two uncached baselines: the plain convenience API (fresh
        // scratch per query, what a cache hit actually replaces) and the
        // reused-scratch loop (the tightest uncached configuration).
        let mut uncached_us = Vec::with_capacity(zipf.len());
        let mut uncached_scratch_us = Vec::with_capacity(zipf.len());
        let mut oracle = Vec::with_capacity(zipf.len());
        for w in &zipf {
            let q0 = Instant::now();
            let r = idx.topk(w, k);
            uncached_us.push(q0.elapsed().as_secs_f64() * 1e6);
            oracle.push(r);
        }
        for (w, o) in zipf.iter().zip(&oracle) {
            let q0 = Instant::now();
            let r = idx.topk_with_scratch(w, k, &mut scratch);
            uncached_scratch_us.push(q0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(r.ids, o.ids, "scratch reuse diverged at skew {skew}");
        }
        let cache = ResultCache::default();
        let mut cached_us = Vec::with_capacity(zipf.len());
        let mut hit_us = Vec::new();
        let c_t0 = Instant::now();
        for (w, o) in zipf.iter().zip(&oracle) {
            let q0 = Instant::now();
            let r = cache.topk_with_scratch(&idx, w, k, &mut scratch);
            let us = q0.elapsed().as_secs_f64() * 1e6;
            cached_us.push(us);
            assert_eq!(r.ids, o.ids, "cached answers diverged at skew {skew}");
            if r.is_hit() {
                hit_us.push(us);
            }
        }
        let cached_qps = zipf.len() as f64 / c_t0.elapsed().as_secs_f64();
        let s = cache.stats();
        let looked = s.hits + s.misses;
        let hit_rate = if looked > 0 {
            s.hits as f64 / looked as f64
        } else {
            0.0
        };
        uncached_us.sort_by(|a, b| a.total_cmp(b));
        uncached_scratch_us.sort_by(|a, b| a.total_cmp(b));
        cached_us.sort_by(|a, b| a.total_cmp(b));
        hit_us.sort_by(|a, b| a.total_cmp(b));
        let p50_uncached = percentile(&uncached_us, 0.50);
        let p50_uncached_scratch = percentile(&uncached_scratch_us, 0.50);
        let p50_cached = percentile(&cached_us, 0.50);
        let hit_p50 = percentile(&hit_us, 0.50);
        eprintln!(
            "  zipf cache skew={skew}: {:.1}% hit rate ({} hits / {} misses, \
             {} cert rejects), hit p50 {hit_p50:.2}µs vs uncached \
             {p50_uncached:.2}µs plain / {p50_uncached_scratch:.2}µs \
             reused-scratch, {cached_qps:.0} q/s cached",
            hit_rate * 100.0,
            s.hits,
            s.misses,
            s.cert_rejects
        );
        zipf_rows.push(Value::object([
            ("skew", Value::float(skew)),
            ("pool", Value::uint(pool)),
            ("hit_rate", Value::float(hit_rate)),
            ("hits", Value::uint(s.hits as usize)),
            ("misses", Value::uint(s.misses as usize)),
            ("cert_rejects", Value::uint(s.cert_rejects as usize)),
            ("p50_us_cached", Value::float(p50_cached)),
            ("p50_us_uncached", Value::float(p50_uncached)),
            (
                "p50_us_uncached_scratch",
                Value::float(p50_uncached_scratch),
            ),
            ("hit_p50_us", Value::float(hit_p50)),
            ("qps_cached", Value::float(cached_qps)),
        ]));
    }

    // Registry snapshot for this cell: the instrumented sequential pass
    // plus every executor and cache pass.
    let snap = m.snapshot();
    let cell = Value::object([
        ("n", Value::uint(n)),
        ("d", Value::uint(d)),
        ("k", Value::uint(k)),
        ("queries", Value::uint(cfg.queries)),
        ("build_seconds", Value::float(build_secs)),
        ("mean_cost", Value::float(mean_cost)),
        (
            "sequential",
            Value::object([
                ("qps", Value::float(seq_qps)),
                ("p50_us", Value::float(p50)),
                ("p99_us", Value::float(p99)),
            ]),
        ),
        ("executor", Value::Array(executor_rows)),
        ("single_thread_qps", Value::float(single_qps)),
        (
            "scratch",
            Value::object([
                ("reset_p50_ns", Value::float(reset_p50_ns)),
                ("reset_p99_ns", Value::float(reset_p99_ns)),
                ("p50_us", Value::float(scratch_p50)),
                ("qps", Value::float(scratch_qps)),
            ]),
        ),
        (
            "guarded",
            Value::object([
                ("paired_qps", Value::float(guarded_qps)),
                ("p50_us", Value::float(p50_guarded)),
                ("p50_us_paired_plain", Value::float(p50_plain_paired)),
                ("overhead_pct_vs_plain", Value::float(guarded_overhead_pct)),
            ]),
        ),
        ("zipf_cache", Value::Array(zipf_rows)),
        (
            "obs",
            Value::object([
                ("p50_us_recording_off", Value::float(p50_off)),
                ("p50_us_recording_on", Value::float(p50)),
                ("overhead_pct", Value::float(overhead_pct)),
                ("metrics", metrics_json(&snap)),
            ]),
        ),
    ]);
    (cell, single_qps)
}

/// The cell's registry snapshot as report JSON: every counter plus the
/// quantiles of both histograms.
fn metrics_json(snap: &drtopk_obs::MetricsSnapshot) -> Value {
    let mut fields: Vec<(String, Value)> = snap
        .counter_rows()
        .into_iter()
        .map(|(name, _help, v)| (name.to_string(), Value::uint(v as usize)))
        .collect();
    for (name, h) in [
        ("query_latency_ns", &snap.query_latency_ns),
        ("query_cost", &snap.query_cost),
    ] {
        fields.push((
            name.to_string(),
            Value::object([
                ("count", Value::uint(h.count() as usize)),
                ("p50", Value::float(h.p50())),
                ("p95", Value::float(h.p95())),
                ("p99", Value::float(h.p99())),
                ("mean", Value::float(h.mean())),
            ]),
        ));
    }
    Value::Object(fields)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match Config::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("throughput: {e}");
            eprintln!(
                "usage: throughput [--n N[,..]] [--d D[,..]] [--k K[,..]] \
                 [--threads T[,..]] [--queries Q] [--out FILE] [--min-qps F] \
                 [--zipf-pool P] [--zipf-skews S[,..]]"
            );
            std::process::exit(2);
        }
    };

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut cells = Vec::new();
    let mut floor_violations = Vec::new();
    for &n in &cfg.ns {
        for &d in &cfg.ds {
            for &k in &cfg.ks {
                let (cell, single_qps) = run_cell(n, d, k, &cfg);
                cells.push(cell);
                if let Some(floor) = cfg.min_qps {
                    if single_qps < floor {
                        floor_violations.push(format!(
                            "cell n={n} d={d} k={k}: single-thread {single_qps:.0} q/s \
                             below the floor {floor:.0}"
                        ));
                    }
                }
            }
        }
    }
    let doc = Value::object([
        (
            "host",
            Value::object([("available_parallelism", Value::uint(host_threads))]),
        ),
        (
            "obs",
            Value::object([
                ("compiled", Value::Bool(drtopk_obs::COMPILED)),
                (
                    "methodology",
                    Value::str(
                        "per cell: identical sequential pass with runtime recording \
                         off then on; overhead_pct compares the p50s (budget <= 2%)",
                    ),
                ),
            ]),
        ),
        (
            "note",
            Value::str(
                "executor results are bit-identical to sequential topk; \
                 thread speedups require available_parallelism > 1",
            ),
        ),
        ("cells", Value::Array(cells)),
    ]);
    std::fs::write(&cfg.out, doc.pretty()).expect("write results file");
    eprintln!("wrote {}", cfg.out);
    if !floor_violations.is_empty() {
        for v in &floor_violations {
            eprintln!("PERF REGRESSION: {v}");
        }
        std::process::exit(1);
    }
}
