//! Batch query throughput harness.
//!
//! Measures, for each `(n, d, k)` cell:
//!
//! * per-query latency (p50/p99) and QPS of a sequential loop of
//!   [`DualLayerIndex::topk`] calls (fresh scratch each query — the
//!   baseline an application gets without the batch engine);
//! * wall-clock QPS of [`BatchExecutor::run_uniform`] at each requested
//!   thread count (pooled scratch, scoped-thread fan-out);
//! * mean paper cost (Definition 9) per query, which is identical across
//!   all execution modes — the executor is bit-deterministic.
//!
//! Results land in a JSON file (default `BENCH_throughput.json`), one
//! object per cell, plus host metadata so numbers from different machines
//! are never compared blindly.
//!
//! ```text
//! throughput [--n 100000[,N...]] [--d 3[,...]] [--k 10[,...]]
//!            [--threads 1,2,4] [--queries 1000] [--out FILE]
//! ```

use drtopk_bench::json::Value;
use drtopk_bench::{dataset, query_weights};
use drtopk_common::Distribution;
use drtopk_core::{BatchExecutor, DlOptions, DualLayerIndex};
use std::time::Instant;

struct Config {
    ns: Vec<usize>,
    ds: Vec<usize>,
    ks: Vec<usize>,
    threads: Vec<usize>,
    queries: usize,
    out: String,
}

impl Config {
    fn parse(args: &[String]) -> Result<Config, String> {
        let mut cfg = Config {
            ns: vec![100_000],
            ds: vec![3],
            ks: vec![10],
            threads: vec![1, 2, 4],
            queries: 1000,
            out: "BENCH_throughput.json".to_string(),
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let val = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            match flag {
                "--n" => cfg.ns = parse_list(val)?,
                "--d" => cfg.ds = parse_list(val)?,
                "--k" => cfg.ks = parse_list(val)?,
                "--threads" => cfg.threads = parse_list(val)?,
                "--queries" => cfg.queries = parse_list(val)?[0],
                "--out" => cfg.out = val.clone(),
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        if cfg.queries == 0 {
            return Err("--queries must be positive".to_string());
        }
        Ok(cfg)
    }
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    let v: Result<Vec<usize>, _> = s.split(',').map(|p| p.trim().parse::<usize>()).collect();
    match v {
        Ok(list) if !list.is_empty() => Ok(list),
        _ => Err(format!("cannot parse list {s:?}")),
    }
}

/// Nearest-rank percentile of a sorted slice (q in 0..=1).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_cell(n: usize, d: usize, k: usize, cfg: &Config) -> Value {
    eprintln!("cell n={n} d={d} k={k}: building DL+ index...");
    let rel = dataset(Distribution::Independent, d, n);
    let t0 = Instant::now();
    let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
    let build_secs = t0.elapsed().as_secs_f64();
    let weights = query_weights(d, cfg.queries, 0xC0FFEE);

    // Warmup: touch the index and fault in the columns once.
    let _ = idx.topk(&weights[0], k);

    // Sequential baseline: one topk call per query, timed individually
    // for the latency distribution.
    let mut latencies_us = Vec::with_capacity(weights.len());
    let mut total_cost = 0u64;
    let seq_t0 = Instant::now();
    let mut reference = Vec::with_capacity(weights.len());
    for w in &weights {
        let q0 = Instant::now();
        let r = idx.topk(w, k);
        latencies_us.push(q0.elapsed().as_secs_f64() * 1e6);
        total_cost += r.cost.total();
        reference.push(r);
    }
    let seq_secs = seq_t0.elapsed().as_secs_f64();
    let seq_qps = weights.len() as f64 / seq_secs;
    let mean_cost = total_cost as f64 / weights.len() as f64;
    let mut sorted = latencies_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
    eprintln!(
        "  sequential: {seq_qps:.0} q/s, p50 {p50:.1}µs p99 {p99:.1}µs, mean cost {mean_cost:.1}"
    );

    // Executor passes at each thread count; every result is checked
    // against the sequential reference (the determinism contract).
    let mut executor_rows = Vec::new();
    let mut single_qps = seq_qps;
    for &t in &cfg.threads {
        let exec = BatchExecutor::with_threads(&idx, t);
        let e0 = Instant::now();
        let results = exec.run_uniform(&weights, k);
        let secs = e0.elapsed().as_secs_f64();
        let qps = weights.len() as f64 / secs;
        for (r, s) in results.iter().zip(&reference) {
            assert_eq!(r.ids, s.ids, "executor answers diverged at threads={t}");
            assert_eq!(r.cost, s.cost, "executor costs diverged at threads={t}");
        }
        eprintln!(
            "  executor threads={t}: {qps:.0} q/s ({:.2}x sequential)",
            qps / seq_qps
        );
        if t == 1 {
            single_qps = qps;
        }
        executor_rows.push(Value::object([
            ("threads", Value::uint(t)),
            ("qps", Value::float(qps)),
            ("speedup_vs_sequential", Value::float(qps / seq_qps)),
        ]));
    }

    Value::object([
        ("n", Value::uint(n)),
        ("d", Value::uint(d)),
        ("k", Value::uint(k)),
        ("queries", Value::uint(cfg.queries)),
        ("build_seconds", Value::float(build_secs)),
        ("mean_cost", Value::float(mean_cost)),
        (
            "sequential",
            Value::object([
                ("qps", Value::float(seq_qps)),
                ("p50_us", Value::float(p50)),
                ("p99_us", Value::float(p99)),
            ]),
        ),
        ("executor", Value::Array(executor_rows)),
        ("single_thread_qps", Value::float(single_qps)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match Config::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("throughput: {e}");
            eprintln!(
                "usage: throughput [--n N[,..]] [--d D[,..]] [--k K[,..]] \
                 [--threads T[,..]] [--queries Q] [--out FILE]"
            );
            std::process::exit(2);
        }
    };

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut cells = Vec::new();
    for &n in &cfg.ns {
        for &d in &cfg.ds {
            for &k in &cfg.ks {
                cells.push(run_cell(n, d, k, &cfg));
            }
        }
    }
    let doc = Value::object([
        (
            "host",
            Value::object([("available_parallelism", Value::uint(host_threads))]),
        ),
        (
            "note",
            Value::str(
                "executor results are bit-identical to sequential topk; \
                 thread speedups require available_parallelism > 1",
            ),
        ),
        ("cells", Value::Array(cells)),
    ]);
    std::fs::write(&cfg.out, doc.pretty()).expect("write results file");
    eprintln!("wrote {}", cfg.out);
}
