//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section VI).
//!
//! ```text
//! repro <experiment> [--scale small|full] [--queries N] [--n N] [--json PATH]
//!
//! experiments:
//!   table2   measured selectivity per approach (1st layer vs rest)
//!   table4   index construction time (HL, HL+, DG, DG+, DL, DL+)
//!   fig8     DL vs DL+, varying k          fig9    DL vs DL+, varying d
//!   fig10    DG vs DL, varying k           fig11   DG+ vs DL+, varying k
//!   fig12    HL+ vs DL+, varying k         fig13   DG vs DL, varying d
//!   fig14    DG+ vs DL+, varying d         fig15   HL+ vs DL+, varying d
//!   fig16    DG+ vs DL+, varying n
//!   ablation design-choice ablations (EDS policy, fine cap, clusters)
//!   families one representative per approach family (layer/list/view)
//!   all      every table and figure above
//! ```
//!
//! Cost is the paper's Definition 9: tuples evaluated by the scoring
//! function per query, averaged over random weight vectors.

use drtopk_bench::{build_index, dataset, measure_cost, Algo, BuiltIndex, Measurement, Scale};
use drtopk_common::Distribution;
use std::collections::HashMap;

const K_SWEEP: [usize; 5] = [10, 20, 30, 40, 50];
const D_SWEEP: [usize; 4] = [2, 3, 4, 5];
const DEFAULT_D: usize = 4;
const DEFAULT_K: usize = 10;

struct Config {
    scale: Scale,
    queries: usize,
    n_override: Option<usize>,
    json: Option<String>,
}

impl Config {
    fn n(&self) -> usize {
        self.n_override.unwrap_or(self.scale.default_n())
    }
}

/// Caches built indexes per (distribution, d, n, index kind) so sweeps over
/// k reuse one build, as a real deployment would.
#[derive(Default)]
struct Cache {
    map: HashMap<(String, usize, usize, &'static str), BuiltIndex>,
    build_secs: HashMap<(String, usize, usize, &'static str), f64>,
}

impl Cache {
    fn get(&mut self, dist: Distribution, d: usize, n: usize, algo: Algo) -> &BuiltIndex {
        // HL and HL+ share one index; DG/DG+/DL/DL+ are distinct builds.
        let kind = match algo {
            Algo::Hl | Algo::HlPlus => "HL",
            other => other.name(),
        };
        let key = (dist.code().to_string(), d, n, kind);
        if !self.map.contains_key(&key) {
            eprintln!("  [build {kind} {} d={d} n={n} …]", dist.code());
            let rel = dataset(dist, d, n);
            let (built, secs) = build_index(&rel, algo);
            self.build_secs.insert(key.clone(), secs);
            self.map.insert(key.clone(), built);
        }
        &self.map[&key]
    }

    fn build_time(&mut self, dist: Distribution, d: usize, n: usize, algo: Algo) -> f64 {
        self.get(dist, d, n, algo);
        let kind = match algo {
            Algo::Hl | Algo::HlPlus => "HL",
            other => other.name(),
        };
        self.build_secs[&(dist.code().to_string(), d, n, kind)]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return;
    }
    let experiment = args[0].clone();
    let mut cfg = Config {
        scale: Scale::Small,
        queries: 50,
        n_override: None,
        json: None,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = match args.get(i).map(|s| s.as_str()) {
                    Some("full") => Scale::Full,
                    _ => Scale::Small,
                };
            }
            "--queries" => {
                i += 1;
                cfg.queries = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(50);
            }
            "--n" => {
                i += 1;
                cfg.n_override = args.get(i).and_then(|s| s.parse().ok());
            }
            "--json" => {
                i += 1;
                cfg.json = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown flag {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut cache = Cache::default();
    let mut out: Vec<Measurement> = Vec::new();
    match experiment.as_str() {
        "table2" => table2(&cfg, &mut cache, &mut out),
        "table4" => table4(&cfg, &mut cache),
        "fig8" => fig_k_sweep(&cfg, &mut cache, &mut out, "fig8", Algo::Dl, Algo::DlPlus),
        "fig9" => fig_d_sweep(&cfg, &mut cache, &mut out, "fig9", Algo::Dl, Algo::DlPlus),
        "fig10" => fig_k_sweep(&cfg, &mut cache, &mut out, "fig10", Algo::Dg, Algo::Dl),
        "fig11" => fig_k_sweep(
            &cfg,
            &mut cache,
            &mut out,
            "fig11",
            Algo::DgPlus,
            Algo::DlPlus,
        ),
        "fig12" => fig_k_sweep(
            &cfg,
            &mut cache,
            &mut out,
            "fig12",
            Algo::HlPlus,
            Algo::DlPlus,
        ),
        "fig13" => fig_d_sweep(&cfg, &mut cache, &mut out, "fig13", Algo::Dg, Algo::Dl),
        "fig14" => fig_d_sweep(
            &cfg,
            &mut cache,
            &mut out,
            "fig14",
            Algo::DgPlus,
            Algo::DlPlus,
        ),
        "fig15" => fig_d_sweep(
            &cfg,
            &mut cache,
            &mut out,
            "fig15",
            Algo::HlPlus,
            Algo::DlPlus,
        ),
        "fig16" => fig16(&cfg, &mut cache, &mut out),
        "ablation" => ablation(&cfg, &mut out),
        "families" => families(&cfg, &mut out),
        "all" => {
            table2(&cfg, &mut cache, &mut out);
            table4(&cfg, &mut cache);
            fig_k_sweep(&cfg, &mut cache, &mut out, "fig8", Algo::Dl, Algo::DlPlus);
            fig_d_sweep(&cfg, &mut cache, &mut out, "fig9", Algo::Dl, Algo::DlPlus);
            fig_k_sweep(&cfg, &mut cache, &mut out, "fig10", Algo::Dg, Algo::Dl);
            fig_k_sweep(
                &cfg,
                &mut cache,
                &mut out,
                "fig11",
                Algo::DgPlus,
                Algo::DlPlus,
            );
            fig_k_sweep(
                &cfg,
                &mut cache,
                &mut out,
                "fig12",
                Algo::HlPlus,
                Algo::DlPlus,
            );
            fig_d_sweep(&cfg, &mut cache, &mut out, "fig13", Algo::Dg, Algo::Dl);
            fig_d_sweep(
                &cfg,
                &mut cache,
                &mut out,
                "fig14",
                Algo::DgPlus,
                Algo::DlPlus,
            );
            fig_d_sweep(
                &cfg,
                &mut cache,
                &mut out,
                "fig15",
                Algo::HlPlus,
                Algo::DlPlus,
            );
            fig16(&cfg, &mut cache, &mut out);
        }
        other => {
            eprintln!("unknown experiment {other}");
            print_usage();
            std::process::exit(2);
        }
    }

    if let Some(path) = &cfg.json {
        let json = drtopk_bench::json::Value::array(out.iter().map(|m| m.to_json())).pretty();
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {} measurements to {path}", out.len());
    }
}

fn print_usage() {
    println!(
        "usage: repro <table2|table4|fig8..fig16|ablation|families|all> \
         [--scale small|full] [--queries N] [--n N] [--json PATH]"
    );
}

fn dists() -> [Distribution; 2] {
    [Distribution::Independent, Distribution::AntiCorrelated]
}

/// Table II (measured): per-approach mean cost split into first-coarse-
/// layer access vs deeper access is not separable for all baselines, so we
/// report the overall selectivity each approach achieves at the default
/// parameters — the quantity Table II ranks qualitatively.
fn table2(cfg: &Config, cache: &mut Cache, out: &mut Vec<Measurement>) {
    let (d, n, k) = (DEFAULT_D, cfg.n(), DEFAULT_K);
    println!("\nTable II (measured) — mean tuples evaluated, d={d}, n={n}, k={k}");
    println!("{:<10} {:>14} {:>14}", "approach", "IND", "ANT");
    for algo in [
        Algo::Onion,
        Algo::AppRi,
        Algo::HlPlus,
        Algo::Dg,
        Algo::Dl,
        Algo::DlPlus,
    ] {
        let mut row = format!("{:<10}", algo.name());
        for dist in dists() {
            let built = cache.get(dist, d, n, algo);
            let m = measure_cost("table2", dist, n, d, k, cfg.queries, built, algo);
            row += &format!(" {:>14.1}", m.mean_cost);
            out.push(m);
        }
        println!("{row}");
    }
}

/// Table IV: index construction time.
fn table4(cfg: &Config, cache: &mut Cache) {
    let (d, n) = (DEFAULT_D, cfg.n());
    println!("\nTable IV — index construction time (sec), d={d}, n={n}");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Dist.", "HL", "HL+", "DG", "DG+", "DL", "DL+"
    );
    for dist in dists() {
        let hl = cache.build_time(dist, d, n, Algo::Hl);
        let dg = cache.build_time(dist, d, n, Algo::Dg);
        let dgp = cache.build_time(dist, d, n, Algo::DgPlus);
        let dl = cache.build_time(dist, d, n, Algo::Dl);
        let dlp = cache.build_time(dist, d, n, Algo::DlPlus);
        println!(
            "{:<6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            dist.code(),
            hl,
            hl, // HL+ shares HL's index
            dg,
            dgp,
            dl,
            dlp
        );
    }
}

/// Figures 8, 10, 11, 12: two algorithms, varying retrieval size k.
fn fig_k_sweep(
    cfg: &Config,
    cache: &mut Cache,
    out: &mut Vec<Measurement>,
    name: &str,
    a: Algo,
    b: Algo,
) {
    let (d, n) = (DEFAULT_D, cfg.n());
    for dist in dists() {
        println!(
            "\n{} — {} vs {}, varying k ({}, d={d}, n={n}, {} queries)",
            name,
            a.name(),
            b.name(),
            dist.code(),
            cfg.queries
        );
        println!(
            "{:>4} {:>14} {:>14} {:>8}",
            "k",
            a.name(),
            b.name(),
            "ratio"
        );
        for k in K_SWEEP {
            let ma = {
                let built = cache.get(dist, d, n, a);
                measure_cost(name, dist, n, d, k, cfg.queries, built, a)
            };
            let mb = {
                let built = cache.get(dist, d, n, b);
                measure_cost(name, dist, n, d, k, cfg.queries, built, b)
            };
            println!(
                "{:>4} {:>14.1} {:>14.1} {:>8.2}",
                k,
                ma.mean_cost,
                mb.mean_cost,
                ma.mean_cost / mb.mean_cost.max(1e-9)
            );
            out.push(ma);
            out.push(mb);
        }
    }
}

/// Figures 9, 13, 14, 15: two algorithms, varying dimensionality d.
fn fig_d_sweep(
    cfg: &Config,
    cache: &mut Cache,
    out: &mut Vec<Measurement>,
    name: &str,
    a: Algo,
    b: Algo,
) {
    let (k, n) = (DEFAULT_K, cfg.n());
    for dist in dists() {
        println!(
            "\n{} — {} vs {}, varying d ({}, k={k}, n={n}, {} queries)",
            name,
            a.name(),
            b.name(),
            dist.code(),
            cfg.queries
        );
        println!(
            "{:>4} {:>14} {:>14} {:>8}",
            "d",
            a.name(),
            b.name(),
            "ratio"
        );
        for d in D_SWEEP {
            let ma = {
                let built = cache.get(dist, d, n, a);
                measure_cost(name, dist, n, d, k, cfg.queries, built, a)
            };
            let mb = {
                let built = cache.get(dist, d, n, b);
                measure_cost(name, dist, n, d, k, cfg.queries, built, b)
            };
            println!(
                "{:>4} {:>14.1} {:>14.1} {:>8.2}",
                d,
                ma.mean_cost,
                mb.mean_cost,
                ma.mean_cost / mb.mean_cost.max(1e-9)
            );
            out.push(ma);
            out.push(mb);
        }
    }
}

/// Figure 16: DG+ vs DL+, varying cardinality n.
fn fig16(cfg: &Config, cache: &mut Cache, out: &mut Vec<Measurement>) {
    let (d, k) = (DEFAULT_D, DEFAULT_K);
    for dist in dists() {
        println!(
            "\nfig16 — DG+ vs DL+, varying n ({}, d={d}, k={k}, {} queries)",
            dist.code(),
            cfg.queries
        );
        println!("{:>8} {:>14} {:>14} {:>8}", "n", "DG+", "DL+", "ratio");
        for n in cfg.scale.cardinality_sweep() {
            let ma = {
                let built = cache.get(dist, d, n, Algo::DgPlus);
                measure_cost("fig16", dist, n, d, k, cfg.queries, built, Algo::DgPlus)
            };
            let mb = {
                let built = cache.get(dist, d, n, Algo::DlPlus);
                measure_cost("fig16", dist, n, d, k, cfg.queries, built, Algo::DlPlus)
            };
            println!(
                "{:>8} {:>14.1} {:>14.1} {:>8.2}",
                n,
                ma.mean_cost,
                mb.mean_cost,
                ma.mean_cost / mb.mean_cost.max(1e-9)
            );
            out.push(ma);
            out.push(mb);
        }
    }
}

/// Ablations of DESIGN.md §4: ∃-edge policy, fine-sublayer cap, and
/// zero-layer cluster count, measured as mean query cost plus structural
/// counters on the anti-correlated default workload.
fn ablation(cfg: &Config, out: &mut Vec<Measurement>) {
    use drtopk_core::{DlOptions, DualLayerIndex, EdsPolicy, ZeroMode};
    let (d, k) = (DEFAULT_D, DEFAULT_K);
    let n = cfg.n_override.unwrap_or(5_000);
    let dist = Distribution::AntiCorrelated;
    let rel = dataset(dist, d, n);
    let weights = drtopk_bench::query_weights(d, cfg.queries, 0xC0FFEE);
    let mut run = |name: &str, opts: DlOptions| {
        let t0 = std::time::Instant::now();
        let idx = DualLayerIndex::build(&rel, opts);
        let secs = t0.elapsed().as_secs_f64();
        let total: u64 = weights.iter().map(|w| idx.topk(w, k).cost.total()).sum();
        let mean = total as f64 / weights.len() as f64;
        let s = idx.stats();
        println!(
            "  {:<26} cost {:>10.1}  build {:>7.2}s  ∃-edges {:>9}  fine-layers {:>5}  pseudo {:>4}",
            name, mean, secs, s.exists_edges, s.fine_layers, s.pseudo_tuples
        );
        out.push(Measurement {
            experiment: format!("ablation:{name}"),
            dist: dist.code().to_string(),
            algo: "DL*",
            n,
            d,
            k,
            mean_cost: mean,
            queries: weights.len(),
        });
    };

    println!("\nAblation — ∃-edge (EDS) policy (ANT, d={d}, n={n}, k={k})");
    run("eds=FirstFacet", DlOptions::dl());
    run(
        "eds=AllFacets",
        DlOptions {
            eds_policy: EdsPolicy::AllFacets,
            ..DlOptions::dl()
        },
    );
    run(
        "eds=BestUniform",
        DlOptions {
            eds_policy: EdsPolicy::BestUniform,
            ..DlOptions::dl()
        },
    );

    println!("\nAblation — fine-sublayer cap (1 ≈ DG; 0 = unlimited)");
    for cap in [1usize, 2, 4, 8, 0] {
        run(
            &format!("max_fine_layers={cap}"),
            DlOptions {
                max_fine_layers: cap,
                ..DlOptions::dl()
            },
        );
    }

    println!("\nAblation — zero-layer cluster count (0 = √|L1| default)");
    for c in [0usize, 4, 16, 64, 256] {
        run(
            &format!("clusters={c}"),
            DlOptions {
                zero: ZeroMode::Clustered { clusters: c },
                ..DlOptions::dl_plus()
            },
        );
    }

    println!("\nAblation — 2-d zero layer: exact weight ranges vs clustered");
    let rel2 = dataset(dist, 2, n);
    let weights2 = drtopk_bench::query_weights(2, cfg.queries, 0xC0FFEE);
    for (name, opts) in [
        ("2d zero=none (DL)", DlOptions::dl()),
        (
            "2d zero=exact",
            DlOptions {
                zero: ZeroMode::Exact2d,
                ..DlOptions::dl_plus()
            },
        ),
        (
            "2d zero=clustered",
            DlOptions {
                zero: ZeroMode::Clustered { clusters: 0 },
                ..DlOptions::dl_plus()
            },
        ),
    ] {
        let idx = DualLayerIndex::build(&rel2, opts);
        let total: u64 = weights2.iter().map(|w| idx.topk(w, k).cost.total()).sum();
        println!(
            "  {:<26} cost {:>10.1}",
            name,
            total as f64 / weights2.len() as f64
        );
    }
}

/// Section VII's taxonomy, measured: one representative per family —
/// layer-based (DL+), list-based (TA, NRA over the whole relation), and
/// view-based (PREFER with 8 materialized views).
fn families(cfg: &Config, out: &mut Vec<Measurement>) {
    use drtopk_baselines::PreferIndex;
    use drtopk_lists::{nra_topk, ta_topk};
    let (d, k) = (DEFAULT_D, DEFAULT_K);
    let n = cfg.n_override.unwrap_or(5_000);
    println!(
        "\nFamilies — mean tuples evaluated (d={d}, n={n}, k={k}, {} queries)",
        cfg.queries
    );
    println!("{:<22} {:>14} {:>14}", "approach", "IND", "ANT");
    let mut rows: Vec<(String, Vec<f64>)> = vec![
        ("layer: DL+".into(), Vec::new()),
        ("list: TA".into(), Vec::new()),
        ("list: NRA".into(), Vec::new()),
        ("view: PREFER(8)".into(), Vec::new()),
    ];
    for dist in dists() {
        let rel = dataset(dist, d, n);
        let weights = drtopk_bench::query_weights(d, cfg.queries, 0xC0FFEE);
        let dl = drtopk_core::DualLayerIndex::build(&rel, drtopk_core::DlOptions::dl_plus());
        let prefer = PreferIndex::build_with_default_views(&rel, 8);
        let means: Vec<f64> = {
            let mut sums = [0u64; 4];
            for w in &weights {
                sums[0] += dl.topk(w, k).cost.total();
                sums[1] += ta_topk(&rel, w, k).1.total();
                sums[2] += nra_topk(&rel, w, k).1.total();
                sums[3] += prefer.topk(w, k).1.total();
            }
            sums.iter()
                .map(|&s| s as f64 / weights.len() as f64)
                .collect()
        };
        for (row, &m) in rows.iter_mut().zip(&means) {
            row.1.push(m);
            out.push(Measurement {
                experiment: "families".into(),
                dist: dist.code().to_string(),
                algo: "family",
                n,
                d,
                k,
                mean_cost: m,
                queries: cfg.queries,
            });
        }
    }
    for (name, vals) in rows {
        println!("{:<22} {:>14.1} {:>14.1}", name, vals[0], vals[1]);
    }
}
