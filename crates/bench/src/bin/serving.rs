//! Serving load generator: drives a `drtopk_server::Server` over real
//! TCP loopback connections and reports what the paper's cost model
//! cannot — end-to-end latency under concurrency, admission control, and
//! overload.
//!
//! Three phases against one in-process index:
//!
//! * **closed loop** — `--clients` connections each issue the next query
//!   the moment the previous answer lands, for `--seconds`. Reports the
//!   achieved QPS and the latency distribution; `--min-qps` turns this
//!   into the CI serving-smoke regression gate.
//! * **open loop** — each offered rate in `--rates` is paced on a fixed
//!   schedule and latency is measured from the *scheduled* send time, so
//!   queue delay from a saturated server is charged to the server, not
//!   silently absorbed by the generator (no coordinated omission).
//! * **overload** — the same workload against a deliberately starved
//!   server (`--overload-queue` admission slots, one worker). Sheds must
//!   be explicit `Overloaded` replies, the shed rate is reported, and the
//!   p99 of the queries that *were* admitted stays bounded because the
//!   queue they waited in is short.
//!
//! Queries are Zipf-distributed over a `--pool`-sized weight pool
//! (`--skew`), the same repetition model as the throughput harness's
//! cache pass, so `--cache` exercises the server's result-cache fast
//! path. Results land in `BENCH_serving.json`.
//!
//! With `--shards P` a fourth phase serves the same relation through a
//! P-way sharded deployment: a healthy closed loop first, then
//! `--degrade-shard S` is cordoned mid-run and the loop repeats against
//! the degraded router. Every reply in the degraded pass must carry the
//! coverage extension, and the client-side degraded count is
//! cross-checked against the server's
//! `drtopk_shard_degraded_answers_total` counter — a mismatch is a
//! protocol bug and fails the run.
//!
//! With `--topology P` a fifth phase measures the *multi-node* stack
//! (OPERATIONS.md §10): the same relation served first by an in-process
//! sharded router, then by a router node fanning out over TCP to P real
//! shard-node servers — the QPS/p99 delta between the two rows is the
//! price of the network hop. `--topology FILE` instead points the router
//! at an externally managed cluster (no in-process comparison row).
//! Adding `--kill-replica` replicates shard 0 and drains its primary
//! mid-run: the run fails unless the drain cost zero errors and zero
//! degraded answers, and the router's `drtopk_shard_failovers_total`
//! counter confirms at least one failover actually happened — silence on
//! both sides would mean the phase never exercised the failover path.
//!
//! ```text
//! serving [--n 50000] [--d 3] [--k 10] [--clients 4] [--seconds 2.0]
//!         [--rates 2000,8000] [--pool 64] [--skew 1.0] [--workers 2]
//!         [--batch-max 32] [--batch-window-us 200] [--queue-depth 1024]
//!         [--overload-clients 8] [--overload-queue 1] [--cache]
//!         [--shards P] [--degrade-shard S]
//!         [--topology P|FILE] [--kill-replica]
//!         [--out BENCH_serving.json] [--min-qps F]
//! ```

use drtopk_bench::dataset;
use drtopk_bench::json::Value;
use drtopk_common::{Distribution, ZipfWeightWorkload};
use drtopk_core::{DlOptions, DualLayerIndex};
use drtopk_server::{
    Client, ClientError, ErrorCode, ServedShard, Server, ServerConfig, ServerHandle, Topology,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    n: usize,
    d: usize,
    k: u32,
    clients: usize,
    seconds: f64,
    rates: Vec<f64>,
    pool: usize,
    skew: f64,
    workers: usize,
    batch_max: usize,
    batch_window_us: u64,
    queue_depth: usize,
    overload_clients: usize,
    overload_queue: usize,
    cache: bool,
    shards: usize,
    degrade_shard: usize,
    /// Multi-node phase: a shard count (self-hosted loopback cluster) or
    /// a topology file path (externally managed cluster).
    topology: Option<String>,
    kill_replica: bool,
    out: String,
    min_qps: Option<f64>,
}

impl Config {
    fn parse(args: &[String]) -> Result<Config, String> {
        let mut cfg = Config {
            n: 50_000,
            d: 3,
            k: 10,
            clients: 4,
            seconds: 2.0,
            rates: vec![2_000.0, 8_000.0],
            pool: 64,
            skew: 1.0,
            workers: 2,
            batch_max: 32,
            batch_window_us: 200,
            queue_depth: 1024,
            overload_clients: 8,
            overload_queue: 1,
            cache: false,
            shards: 0,
            degrade_shard: 0,
            topology: None,
            kill_replica: false,
            out: "BENCH_serving.json".to_string(),
            min_qps: None,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag == "--cache" {
                cfg.cache = true;
                i += 1;
                continue;
            }
            if flag == "--kill-replica" {
                cfg.kill_replica = true;
                i += 1;
                continue;
            }
            let val = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            let num = || val.parse::<usize>().map_err(|_| format!("{flag}: {val:?}"));
            let fnum = || val.parse::<f64>().map_err(|_| format!("{flag}: {val:?}"));
            match flag {
                "--n" => cfg.n = num()?,
                "--d" => cfg.d = num()?,
                "--k" => cfg.k = num()? as u32,
                "--clients" => cfg.clients = num()?,
                "--seconds" => cfg.seconds = fnum()?,
                "--rates" => {
                    cfg.rates = val
                        .split(',')
                        .map(|p| p.trim().parse::<f64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("--rates: {val:?}"))?
                }
                "--pool" => cfg.pool = num()?,
                "--skew" => cfg.skew = fnum()?,
                "--workers" => cfg.workers = num()?,
                "--batch-max" => cfg.batch_max = num()?,
                "--batch-window-us" => cfg.batch_window_us = num()? as u64,
                "--queue-depth" => cfg.queue_depth = num()?,
                "--overload-clients" => cfg.overload_clients = num()?,
                "--overload-queue" => cfg.overload_queue = num()?,
                "--shards" => cfg.shards = num()?,
                "--degrade-shard" => cfg.degrade_shard = num()?,
                "--topology" => cfg.topology = Some(val.clone()),
                "--out" => cfg.out = val.clone(),
                "--min-qps" => cfg.min_qps = Some(fnum()?),
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        if cfg.clients == 0 || cfg.seconds <= 0.0 || cfg.pool == 0 {
            return Err("--clients, --seconds, and --pool must be positive".to_string());
        }
        if cfg.shards > 0 && cfg.degrade_shard >= cfg.shards {
            return Err(format!(
                "--degrade-shard {} is out of range for --shards {}",
                cfg.degrade_shard, cfg.shards
            ));
        }
        if matches!(cfg.topology.as_deref(), Some("0")) {
            return Err("--topology needs at least one shard".to_string());
        }
        if cfg.kill_replica {
            match &cfg.topology {
                Some(t) if t.parse::<usize>().is_ok() => {}
                Some(_) => {
                    return Err(
                        "--kill-replica drains a node this process owns; it needs a \
                         self-hosted cluster (--topology P), not a topology file"
                            .to_string(),
                    )
                }
                None => return Err("--kill-replica requires --topology P".to_string()),
            }
        }
        Ok(cfg)
    }
}

/// Nearest-rank percentile of a sorted slice (q in 0..=1).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// What one generator thread observed.
#[derive(Default)]
struct WorkerStats {
    latencies_us: Vec<f64>,
    ok: u64,
    sheds: u64,
    errors: u64,
    /// Answers that arrived with the degraded-coverage extension set
    /// (sharded phase only; always 0 against an unsharded server).
    degraded: u64,
}

impl WorkerStats {
    fn absorb(&mut self, other: WorkerStats) {
        self.latencies_us.extend(other.latencies_us);
        self.ok += other.ok;
        self.sheds += other.sheds;
        self.errors += other.errors;
        self.degraded += other.degraded;
    }
}

/// Classifies one reply into the stats; returns `false` when the
/// connection is unusable and the worker should stop.
fn record(
    stats: &mut WorkerStats,
    result: Result<drtopk_server::TopkReply, ClientError>,
    latency_us: f64,
) -> bool {
    match result {
        Ok(reply) => {
            stats.ok += 1;
            if reply.coverage.is_some() {
                stats.degraded += 1;
            }
            stats.latencies_us.push(latency_us);
            true
        }
        Err(ClientError::Server { code, .. }) => {
            // An explicit reply: the request was *answered*, with a
            // refusal. Overloaded is the admission controller shedding;
            // anything else is unexpected under this workload.
            if code == ErrorCode::Overloaded {
                stats.sheds += 1;
            } else {
                stats.errors += 1;
            }
            true
        }
        Err(_) => {
            stats.errors += 1;
            false
        }
    }
}

/// Zipf-ordered raw weight vectors for one generator thread. Each thread
/// gets its own draw order (seeded by its id) over the shared pool.
fn zipf_sequence(cfg: &Config, thread: usize) -> Vec<Vec<f64>> {
    ZipfWeightWorkload::new(cfg.d, cfg.pool, 4096, cfg.skew, 0x5E41 + thread as u64)
        .generate()
        .into_iter()
        .map(|w| w.as_slice().to_vec())
        .collect()
}

/// Closed loop: issue the next query as soon as the previous reply
/// arrives, across `clients` connections, for `seconds`.
fn closed_loop(addr: SocketAddr, cfg: &Config, clients: usize, k: u32) -> (WorkerStats, f64) {
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let mut total = WorkerStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let stop = &stop;
                let seq = zipf_sequence(cfg, c);
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let Ok(mut client) = Client::connect(addr) else {
                        stats.errors += 1;
                        return stats;
                    };
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let w = &seq[i % seq.len()];
                        i += 1;
                        let q0 = Instant::now();
                        let r = client.query(w, k, 0, 0);
                        let us = q0.elapsed().as_secs_f64() * 1e6;
                        if !record(&mut stats, r, us) {
                            break;
                        }
                    }
                    stats
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(cfg.seconds));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            total.absorb(h.join().expect("generator thread"));
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    (total, secs)
}

/// Open loop: each client paces `rate / clients` sends on a fixed
/// schedule; latency runs from the *scheduled* send time, so a server
/// that falls behind is charged its queue delay.
fn open_loop(addr: SocketAddr, cfg: &Config, rate: f64) -> (WorkerStats, f64) {
    let per_client = rate / cfg.clients as f64;
    let interval = Duration::from_secs_f64(1.0 / per_client);
    let duration = Duration::from_secs_f64(cfg.seconds);
    let t0 = Instant::now();
    let mut total = WorkerStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let seq = zipf_sequence(cfg, 100 + c);
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let Ok(mut client) = Client::connect(addr) else {
                        stats.errors += 1;
                        return stats;
                    };
                    let start = Instant::now();
                    let mut scheduled = start;
                    let mut i = 0usize;
                    while start.elapsed() < duration {
                        let now = Instant::now();
                        if now < scheduled {
                            std::thread::sleep(scheduled - now);
                        }
                        let w = &seq[i % seq.len()];
                        i += 1;
                        let r = client.query(w, cfg.k, 0, 0);
                        let us = scheduled.elapsed().as_secs_f64() * 1e6;
                        scheduled += interval;
                        if !record(&mut stats, r, us) {
                            break;
                        }
                    }
                    stats
                })
            })
            .collect();
        for h in handles {
            total.absorb(h.join().expect("generator thread"));
        }
    });
    (total, t0.elapsed().as_secs_f64())
}

/// Pulls one counter's value out of the Prometheus exposition.
fn scrape(prom: &str, name: &str) -> Option<f64> {
    prom.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Phase report: aggregate stats → JSON object (+ a console line).
fn phase_json(label: &str, stats: &WorkerStats, secs: f64) -> Value {
    let mut sorted = stats.latencies_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
    let attempts = stats.ok + stats.sheds + stats.errors;
    let qps = stats.ok as f64 / secs;
    let shed_rate = if attempts > 0 {
        stats.sheds as f64 / attempts as f64
    } else {
        0.0
    };
    eprintln!(
        "  {label}: {qps:.0} answered q/s, p50 {p50:.0}µs p99 {p99:.0}µs, \
         {} ok / {} shed ({:.1}%) / {} errors",
        stats.ok,
        stats.sheds,
        shed_rate * 100.0,
        stats.errors
    );
    Value::object([
        ("seconds", Value::float(secs)),
        ("answered_qps", Value::float(qps)),
        ("p50_us", Value::float(p50)),
        ("p99_us", Value::float(p99)),
        ("ok", Value::uint(stats.ok as usize)),
        ("sheds", Value::uint(stats.sheds as usize)),
        ("errors", Value::uint(stats.errors as usize)),
        ("shed_rate", Value::float(shed_rate)),
    ])
}

/// Server-side counters for a finished phase, scraped over the wire so
/// the report shows what an operator's dashboard would.
fn server_counters(addr: SocketAddr) -> Value {
    let Ok(mut client) = Client::connect(addr) else {
        return Value::Null;
    };
    let Ok(prom) = client.metrics_text() else {
        return Value::Null;
    };
    let count = scrape(&prom, "drtopk_server_batch_size_count").unwrap_or(0.0);
    let sum = scrape(&prom, "drtopk_server_batch_size_sum").unwrap_or(0.0);
    let mean_batch = if count > 0.0 { sum / count } else { 0.0 };
    Value::object([
        (
            "requests_total",
            Value::float(scrape(&prom, "drtopk_server_requests_total").unwrap_or(0.0)),
        ),
        (
            "sheds_total",
            Value::float(scrape(&prom, "drtopk_server_sheds_total").unwrap_or(0.0)),
        ),
        (
            "protocol_errors_total",
            Value::float(scrape(&prom, "drtopk_server_protocol_errors_total").unwrap_or(0.0)),
        ),
        ("mean_batch_size", Value::float(mean_batch)),
    ])
}

fn start_server(idx: &Arc<DualLayerIndex>, cfg: &ServerConfig) -> (ServerHandle, SocketAddr) {
    let handle = Server::start(Arc::clone(idx), cfg.clone()).expect("start server");
    let addr = handle.addr();
    (handle, addr)
}

/// One counter scraped over the wire, defaulting to 0 when the family is
/// absent (e.g. a build without `obs`).
fn scrape_counter(addr: SocketAddr, name: &str) -> f64 {
    Client::connect(addr)
        .ok()
        .and_then(|mut c| c.metrics_text().ok())
        .and_then(|prom| scrape(&prom, name))
        .unwrap_or(0.0)
}

/// Phase 4 (`--shards P`): the same relation through a P-way sharded
/// deployment — a healthy closed loop, then `--degrade-shard S` cordoned
/// and the loop repeated. Returns the JSON section and whether the
/// degraded-coverage cross-check failed.
fn sharded_phase(
    rel: &drtopk_common::Relation,
    cfg: &Config,
    base: &ServerConfig,
) -> (Value, bool) {
    let dir = std::env::temp_dir().join(format!("drtopk_bench_sharded_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let stores = drtopk_storage::create_sharded(
        &dir,
        rel,
        cfg.shards,
        &drtopk_storage::DurableOptions::default(),
    )
    .expect("create sharded deployment");
    let shards: Vec<drtopk_server::ServedShard> = stores
        .into_iter()
        .enumerate()
        .map(|(s, st)| drtopk_server::ServedShard::new(s, st))
        .collect();
    let router = Arc::new(
        drtopk_core::ShardRouter::new(shards, drtopk_core::RouterConfig::default())
            .expect("shard router"),
    );
    let handle =
        Server::start_sharded(Arc::clone(&router), base.clone()).expect("start sharded server");
    let addr = handle.addr();

    eprintln!(
        "sharded: {} shards, {} clients healthy for {} s",
        cfg.shards, cfg.clients, cfg.seconds
    );
    let (healthy, healthy_secs) = closed_loop(addr, cfg, cfg.clients, cfg.k);
    let healthy_json = phase_json("sharded/healthy", &healthy, healthy_secs);

    // Cordon one shard mid-deployment and rerun: every answer must now
    // carry the coverage extension, and the server's degraded-answer
    // counter must advance exactly once per such answer.
    let before = scrape_counter(addr, "drtopk_shard_degraded_answers_total");
    router.cordon(cfg.degrade_shard);
    eprintln!(
        "sharded: shard {} cordoned, rerunning closed loop",
        cfg.degrade_shard
    );
    let (degraded, degraded_secs) = closed_loop(addr, cfg, cfg.clients, cfg.k);
    let degraded_json = phase_json("sharded/degraded", &degraded, degraded_secs);
    let server_degraded = scrape_counter(addr, "drtopk_shard_degraded_answers_total") - before;
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if healthy.degraded != 0 {
        eprintln!(
            "SHARDED ERROR: {} answers from the healthy deployment claimed degraded coverage",
            healthy.degraded
        );
        failed = true;
    }
    if degraded.ok == 0 || degraded.degraded != degraded.ok {
        eprintln!(
            "SHARDED ERROR: {} of {} answers from the degraded deployment carried the \
             coverage extension (expected all)",
            degraded.degraded, degraded.ok
        );
        failed = true;
    }
    if server_degraded as u64 != degraded.degraded {
        eprintln!(
            "SHARDED ERROR: client saw {} degraded answers but the server counted {}",
            degraded.degraded, server_degraded
        );
        failed = true;
    }
    if healthy.errors > 0 || degraded.errors > 0 {
        eprintln!(
            "SHARDED ERRORS: {} healthy / {} degraded protocol or transport errors",
            healthy.errors, degraded.errors
        );
        failed = true;
    }
    let json = Value::object([
        ("shards", Value::uint(cfg.shards)),
        ("degrade_shard", Value::uint(cfg.degrade_shard)),
        ("healthy", healthy_json),
        ("degraded", degraded_json),
        (
            "client_degraded_answers",
            Value::uint(degraded.degraded as usize),
        ),
        (
            "server_degraded_answers",
            Value::uint(server_degraded as usize),
        ),
    ]);
    (json, failed)
}

/// The answered-QPS a phase achieved (what the ratio rows divide).
fn qps(stats: &WorkerStats, secs: f64) -> f64 {
    stats.ok as f64 / secs
}

/// Phase 5 (`--topology`): the multi-node serving stack. A shard count
/// self-hosts a loopback cluster (shard-node servers + a router node)
/// and reports the in-process vs remote QPS/p99 comparison; a file path
/// benches a router over an externally managed cluster.
fn multinode_phase(
    rel: &drtopk_common::Relation,
    cfg: &Config,
    base: &ServerConfig,
) -> (Value, bool) {
    let arg = cfg.topology.as_deref().expect("phase gated on --topology");
    match arg.parse::<usize>() {
        Ok(p) => selfhost_multinode(rel, cfg, base, p),
        Err(_) => external_multinode(arg, cfg, base),
    }
}

/// Router node over a cluster someone else runs: measure, don't manage.
/// Degraded answers are reported but tolerated — the external cluster
/// may legitimately be running with a shard down.
fn external_multinode(file: &str, cfg: &Config, base: &ServerConfig) -> (Value, bool) {
    let topo = Topology::load(file).expect("load topology file");
    eprintln!(
        "multinode: router over {file} ({} shard(s)), {} clients for {} s",
        topo.shard_count(),
        cfg.clients,
        cfg.seconds
    );
    let router = Server::start_router(
        topo.build_router().expect("build remote router"),
        Some(topo.pinger_config()),
        base.clone(),
    )
    .expect("start router node");
    let (stats, secs) = closed_loop(router.addr(), cfg, cfg.clients, cfg.k);
    let remote_json = phase_json("multinode/remote", &stats, secs);
    router.shutdown();

    let failed = stats.errors > 0;
    if failed {
        eprintln!(
            "MULTINODE ERRORS: {} protocol or transport errors against {file}",
            stats.errors
        );
    }
    let json = Value::object([
        ("mode", Value::str("file")),
        ("topology", Value::str(file)),
        ("shards", Value::uint(topo.shard_count())),
        ("remote", remote_json),
        ("degraded_answers", Value::uint(stats.degraded as usize)),
    ]);
    (json, failed)
}

/// Self-hosted loopback cluster: the same stores measured twice — once
/// behind one in-process sharded server, once as real shard-node
/// processes' worth of servers behind a router node — so the two rows
/// isolate the cost of the wire hop. With `--kill-replica`, shard 0 is
/// replicated and its primary drained mid-run; the phase fails unless
/// the drain cost zero errors and zero degraded answers *and* the
/// router's failover counter moved.
fn selfhost_multinode(
    rel: &drtopk_common::Relation,
    cfg: &Config,
    base: &ServerConfig,
    p: usize,
) -> (Value, bool) {
    use drtopk_storage::{shards::shard_dir, DurableDynamicIndex, DurableOptions};
    let dir = std::env::temp_dir().join(format!("drtopk_bench_multinode_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut failed = false;

    // Row 1: in-process sharded baseline over the freshly created stores.
    let stores = drtopk_storage::create_sharded(&dir, rel, p, &DurableOptions::default())
        .expect("create sharded deployment");
    let shards: Vec<ServedShard> = stores
        .into_iter()
        .enumerate()
        .map(|(s, st)| ServedShard::new(s, st))
        .collect();
    let router = Arc::new(
        drtopk_core::ShardRouter::new(shards, drtopk_core::RouterConfig::default())
            .expect("shard router"),
    );
    let handle = Server::start_sharded(router, base.clone()).expect("start sharded server");
    eprintln!(
        "multinode: in-process {p}-shard baseline, {} clients for {} s",
        cfg.clients, cfg.seconds
    );
    let (inproc, inproc_secs) = closed_loop(handle.addr(), cfg, cfg.clients, cfg.k);
    let inproc_json = phase_json("multinode/in-process", &inproc, inproc_secs);
    handle.shutdown();

    // Row 2: the same directories reopened by real shard-node servers,
    // fronted by a router node. With --kill-replica, shard 0's directory
    // is copied byte-for-byte — exactly how an operator seeds a replica
    // (OPERATIONS.md §10) — and both endpoints go into the topology.
    let open_node = |node_dir: &std::path::Path, s: usize| -> ServerHandle {
        let (store, _) =
            DurableDynamicIndex::open(node_dir, DurableOptions::default()).expect("open shard dir");
        Server::start_shard_node(Arc::new(ServedShard::new(s, store)), base.clone())
            .expect("start shard node")
    };
    let mut nodes: Vec<ServerHandle> = (0..p).map(|s| open_node(&shard_dir(&dir, s), s)).collect();
    let replica = cfg.kill_replica.then(|| {
        let src = shard_dir(&dir, 0);
        let dst = dir.join("replica.0000");
        std::fs::create_dir_all(&dst).expect("create replica dir");
        for e in std::fs::read_dir(&src).expect("read shard dir") {
            let e = e.expect("read shard dir entry");
            std::fs::copy(e.path(), dst.join(e.file_name())).expect("seed replica");
        }
        open_node(&dst, 0)
    });
    let mut topo_text = format!("dims {}\n", cfg.d);
    for (s, node) in nodes.iter().enumerate() {
        topo_text.push_str(&format!("shard {s} {}", node.addr()));
        if s == 0 {
            if let Some(r) = &replica {
                topo_text.push_str(&format!(" {}", r.addr()));
            }
        }
        topo_text.push('\n');
    }
    topo_text.push_str("probe-timeout-ms 1000\nping-interval-ms 100\nping-timeout-ms 100\n");
    let topo = Topology::parse(&topo_text).expect("self-hosted topology");
    let router = Server::start_router(
        topo.build_router().expect("build remote router"),
        Some(topo.pinger_config()),
        base.clone(),
    )
    .expect("start router node");
    let raddr = router.addr();
    eprintln!("multinode: remote {p}-shard cluster behind a router node");
    let (remote, remote_secs) = closed_loop(raddr, cfg, cfg.clients, cfg.k);
    let remote_json = phase_json("multinode/remote", &remote, remote_secs);
    if remote.errors > 0 || remote.degraded > 0 {
        eprintln!(
            "MULTINODE ERRORS: healthy remote cluster produced {} errors / {} degraded answers",
            remote.errors, remote.degraded
        );
        failed = true;
    }

    // Kill-one-replica: drain shard 0's primary mid-loop. Clients must
    // observe nothing (zero errors, zero degraded, answers keep coming)
    // while the router's failover counter proves the path actually ran.
    let kill_json = if let Some(replica) = replica {
        let before = scrape_counter(raddr, "drtopk_shard_failovers_total");
        let primary = nodes.remove(0);
        let drain_after = Duration::from_secs_f64(cfg.seconds * 0.4);
        eprintln!(
            "multinode: draining shard 0's primary {:.1} s into the loop",
            drain_after.as_secs_f64()
        );
        let (killed, killed_secs) = std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(drain_after);
                primary.shutdown();
            });
            closed_loop(raddr, cfg, cfg.clients, cfg.k)
        });
        let failovers = scrape_counter(raddr, "drtopk_shard_failovers_total") - before;
        let mut row = phase_json("multinode/kill-replica", &killed, killed_secs);
        if let Value::Object(fields) = &mut row {
            fields.push((
                "degraded_answers".to_string(),
                Value::uint(killed.degraded as usize),
            ));
            fields.push((
                "server_failovers".to_string(),
                Value::uint(failovers as usize),
            ));
        }
        if killed.errors > 0 || killed.degraded > 0 || killed.ok == 0 {
            eprintln!(
                "MULTINODE ERRORS: draining a replicated primary cost {} errors / {} degraded \
                 answers ({} ok)",
                killed.errors, killed.degraded, killed.ok
            );
            failed = true;
        }
        if failovers < 1.0 {
            eprintln!(
                "MULTINODE ERROR: the failover counter never moved — the drain was not \
                 client-observed and the phase proved nothing"
            );
            failed = true;
        }
        replica.shutdown();
        row
    } else {
        Value::Null
    };

    router.shutdown();
    for n in nodes {
        n.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let ratio = qps(&remote, remote_secs) / qps(&inproc, inproc_secs).max(f64::EPSILON);
    eprintln!(
        "multinode: remote serves at {:.0}% of in-process QPS",
        ratio * 100.0
    );
    let json = Value::object([
        ("mode", Value::str("self-host")),
        ("shards", Value::uint(p)),
        ("in_process", inproc_json),
        ("remote", remote_json),
        ("remote_over_in_process_qps", Value::float(ratio)),
        ("kill_replica", kill_json),
    ]);
    (json, failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match Config::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serving: {e}");
            eprintln!(
                "usage: serving [--n N] [--d D] [--k K] [--clients C] [--seconds S] \
                 [--rates R[,..]] [--pool P] [--skew Z] [--workers W] [--batch-max B] \
                 [--batch-window-us US] [--queue-depth Q] [--overload-clients C] \
                 [--overload-queue Q] [--cache] [--shards P] [--degrade-shard S] \
                 [--topology P|FILE] [--kill-replica] [--out FILE] [--min-qps F]"
            );
            std::process::exit(2);
        }
    };

    eprintln!("serving: building DL+ index (n={}, d={})...", cfg.n, cfg.d);
    let rel = dataset(Distribution::Independent, cfg.d, cfg.n);
    let idx = Arc::new(DualLayerIndex::build(&rel, DlOptions::dl_plus()));

    let base = ServerConfig::new()
        .addr("127.0.0.1:0")
        .workers(cfg.workers)
        .batch_max(cfg.batch_max)
        .batch_window(Duration::from_micros(cfg.batch_window_us))
        .queue_depth(cfg.queue_depth)
        .cache(cfg.cache);

    // Phase 1+2: a healthy server — closed loop, then each offered rate.
    let (handle, addr) = start_server(&idx, &base);
    eprintln!("closed loop: {} clients for {} s", cfg.clients, cfg.seconds);
    let (closed, closed_secs) = closed_loop(addr, &cfg, cfg.clients, cfg.k);
    let closed_json = phase_json("closed", &closed, closed_secs);
    let mut open_rows = Vec::new();
    for &rate in &cfg.rates {
        eprintln!("open loop: offering {rate:.0} q/s");
        let (stats, secs) = open_loop(addr, &cfg, rate);
        let mut row = phase_json(&format!("open@{rate:.0}"), &stats, secs);
        if let Value::Object(fields) = &mut row {
            fields.insert(0, ("offered_qps".to_string(), Value::float(rate)));
        }
        open_rows.push(row);
    }
    let healthy_counters = server_counters(addr);
    handle.shutdown();

    // Phase 3: overload — one worker, a starved admission queue, and more
    // closed-loop clients than the queue can hold. The point of the
    // numbers: sheds are explicit (clients got an Overloaded reply, not a
    // hang), and the p99 of admitted queries stays bounded because the
    // queue they sat in is at most `overload_queue` deep.
    let starved = base
        .clone()
        .workers(1)
        .queue_depth(cfg.overload_queue)
        .cache(false);
    let (handle, addr) = start_server(&idx, &starved);
    eprintln!(
        "overload: {} clients against a queue of {}",
        cfg.overload_clients, cfg.overload_queue
    );
    let (over, over_secs) = closed_loop(addr, &cfg, cfg.overload_clients, cfg.k);
    let mut overload_json = phase_json("overload", &over, over_secs);
    if let Value::Object(fields) = &mut overload_json {
        fields.insert(
            0,
            ("queue_depth".to_string(), Value::uint(cfg.overload_queue)),
        );
        fields.insert(
            0,
            ("clients".to_string(), Value::uint(cfg.overload_clients)),
        );
    }
    let overload_counters = server_counters(addr);
    handle.shutdown();

    if over.sheds == 0 {
        eprintln!("serving: WARNING overload phase produced no sheds — not actually overloaded");
    }

    // Phase 4 (opt-in): sharded serving with a mid-run shard failure.
    let (sharded_json, sharded_failed) = if cfg.shards > 0 {
        sharded_phase(&rel, &cfg, &base)
    } else {
        (Value::Null, false)
    };

    // Phase 5 (opt-in): the multi-node stack — in-process vs remote rows,
    // plus the kill-one-replica failover cross-check.
    let (multinode_json, multinode_failed) = if cfg.topology.is_some() {
        multinode_phase(&rel, &cfg, &base)
    } else {
        (Value::Null, false)
    };

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let doc = Value::object([
        (
            "host",
            Value::object([("available_parallelism", Value::uint(host_threads))]),
        ),
        (
            "config",
            Value::object([
                ("n", Value::uint(cfg.n)),
                ("d", Value::uint(cfg.d)),
                ("k", Value::uint(cfg.k as usize)),
                ("clients", Value::uint(cfg.clients)),
                ("pool", Value::uint(cfg.pool)),
                ("skew", Value::float(cfg.skew)),
                ("workers", Value::uint(cfg.workers)),
                ("batch_max", Value::uint(cfg.batch_max)),
                ("batch_window_us", Value::uint(cfg.batch_window_us as usize)),
                ("queue_depth", Value::uint(cfg.queue_depth)),
                ("cache", Value::Bool(cfg.cache)),
            ]),
        ),
        ("closed_loop", closed_json),
        ("open_loop", Value::Array(open_rows)),
        ("overload", overload_json),
        ("sharded", sharded_json),
        ("multinode", multinode_json),
        (
            "server_counters",
            Value::object([
                ("healthy", healthy_counters),
                ("overload", overload_counters),
            ]),
        ),
        (
            "note",
            Value::str(
                "open-loop latency is measured from the scheduled send time \
                 (coordinated-omission safe); overload sheds are explicit \
                 Overloaded replies per PROTOCOL.md §5.1, never silent drops",
            ),
        ),
    ]);
    std::fs::write(&cfg.out, doc.pretty()).expect("write results file");
    eprintln!("wrote {}", cfg.out);

    if let Some(floor) = cfg.min_qps {
        let qps = closed.ok as f64 / closed_secs;
        if qps < floor {
            eprintln!("SERVING REGRESSION: closed-loop {qps:.0} q/s below the floor {floor:.0}");
            std::process::exit(1);
        }
    }
    if closed.errors > 0 || over.errors > 0 {
        eprintln!(
            "SERVING ERRORS: {} closed-loop / {} overload protocol or transport errors",
            closed.errors, over.errors
        );
        std::process::exit(1);
    }
    if sharded_failed || multinode_failed {
        std::process::exit(1);
    }
}
