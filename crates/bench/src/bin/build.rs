//! Index-construction benchmark.
//!
//! Measures, for each `(dist, n, d)` cell:
//!
//! * wall-clock seconds of the retained sequential reference build
//!   (`DualLayerIndex::build_reference` — repeated whole-set peels,
//!   pairwise edge generation, no pruning);
//! * wall-clock seconds of the optimized pipeline at each requested
//!   worker count, with the per-phase breakdown from
//!   [`DualLayerIndex::build_with_profile`] (seconds *and* dominance-test
//!   counts, so pruning effectiveness is visible independently of machine
//!   speed);
//! * whether the optimized index is snapshot-identical to the reference
//!   (it must be — the run aborts otherwise).
//!
//! Results land in a JSON file (default `BENCH_build.json`), one object
//! per cell, plus host metadata.
//!
//! ```text
//! build [--n 100000[,N...]] [--d 2,3[,...]] [--dist ind[,ant,cor]]
//!       [--threads 1,2,4] [--reference-max-n 100000] [--out FILE]
//! ```

use drtopk_bench::dataset;
use drtopk_bench::json::Value;
use drtopk_common::Distribution;
use drtopk_core::{BuildProfile, DlOptions, DualLayerIndex};
use std::time::Instant;

struct Config {
    ns: Vec<usize>,
    ds: Vec<usize>,
    dists: Vec<Distribution>,
    threads: Vec<usize>,
    /// Cells with `n` above this skip the (slow, unpruned) reference
    /// timing; identity is still enforced by the differential test suite.
    reference_max_n: usize,
    out: String,
}

impl Config {
    fn parse(args: &[String]) -> Result<Config, String> {
        let mut cfg = Config {
            ns: vec![100_000],
            ds: vec![2, 3],
            dists: vec![Distribution::Independent],
            threads: vec![1, 2, 4],
            reference_max_n: 100_000,
            out: "BENCH_build.json".to_string(),
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let val = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            match flag {
                "--n" => cfg.ns = parse_list(val)?,
                "--d" => cfg.ds = parse_list(val)?,
                "--dist" => cfg.dists = parse_dists(val)?,
                "--threads" => cfg.threads = parse_list(val)?,
                "--reference-max-n" => cfg.reference_max_n = parse_list(val)?[0],
                "--out" => cfg.out = val.clone(),
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        Ok(cfg)
    }
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    let v: Result<Vec<usize>, _> = s.split(',').map(|p| p.trim().parse::<usize>()).collect();
    match v {
        Ok(list) if !list.is_empty() => Ok(list),
        _ => Err(format!("cannot parse list {s:?}")),
    }
}

fn parse_dists(s: &str) -> Result<Vec<Distribution>, String> {
    s.split(',')
        .map(|p| match p.trim() {
            "ind" => Ok(Distribution::Independent),
            "ant" => Ok(Distribution::AntiCorrelated),
            "cor" => Ok(Distribution::Correlated),
            other => Err(format!("--dist must be ind|ant|cor, got {other:?}")),
        })
        .collect()
}

fn phase_json(name: &str, seconds: f64, tests: u64) -> (String, Value) {
    (
        name.to_string(),
        Value::object([
            ("seconds", Value::float(seconds)),
            ("dominance_tests", Value::uint(tests as usize)),
        ]),
    )
}

fn profile_json(p: &BuildProfile) -> Value {
    let fields: Vec<(String, Value)> = vec![
        phase_json(
            "coarse_peel",
            p.coarse_peel.seconds,
            p.coarse_peel.dominance_tests,
        ),
        phase_json(
            "fine_split",
            p.fine_split.seconds,
            p.fine_split.dominance_tests,
        ),
        phase_json(
            "forall_edges",
            p.forall_edges.seconds,
            p.forall_edges.dominance_tests,
        ),
        phase_json(
            "exists_edges",
            p.exists_edges.seconds,
            p.exists_edges.dominance_tests,
        ),
        phase_json(
            "zero_layer",
            p.zero_layer.seconds,
            p.zero_layer.dominance_tests,
        ),
    ];
    Value::object(fields.iter().map(|(k, v)| (k.as_str(), v.clone())).chain([
        ("assemble_seconds", Value::float(p.assemble_seconds)),
        (
            "total_dominance_tests",
            Value::uint(p.dominance_tests() as usize),
        ),
    ]))
}

fn run_cell(dist: Distribution, n: usize, d: usize, cfg: &Config) -> Value {
    eprintln!("cell dist={} n={n} d={d}", dist.code());
    let rel = dataset(dist, d, n);

    // Reference build (sequential, unpruned) — the baseline the speedup
    // is measured against, and the ground truth for bit-identity.
    let reference = if n <= cfg.reference_max_n {
        let t0 = Instant::now();
        let idx = DualLayerIndex::build_reference(&rel, DlOptions::dl_plus());
        let secs = t0.elapsed().as_secs_f64();
        eprintln!("  reference: {secs:.3}s");
        Some((idx.to_snapshot(), secs))
    } else {
        eprintln!("  reference: skipped (n > {})", cfg.reference_max_n);
        None
    };

    let mut rows = Vec::new();
    for &t in &cfg.threads {
        let opts = DlOptions {
            parallel: true,
            build_threads: t,
            ..DlOptions::dl_plus()
        };
        let (idx, profile) = DualLayerIndex::build_with_profile(&rel, opts);
        let identical = reference
            .as_ref()
            .map(|(snap, _)| *snap == idx.to_snapshot());
        if identical == Some(false) {
            eprintln!("FATAL: optimized build diverged from reference at threads={t}");
            std::process::exit(1);
        }
        let speedup = reference
            .as_ref()
            .map(|(_, ref_secs)| ref_secs / profile.total_seconds);
        eprintln!(
            "  optimized threads={t}: {:.3}s ({}), {} dominance tests",
            profile.total_seconds,
            speedup.map_or("no reference".to_string(), |s| format!("{s:.2}x")),
            profile.dominance_tests()
        );
        let mut fields = vec![
            ("threads", Value::uint(t)),
            ("seconds", Value::float(profile.total_seconds)),
            ("phases", profile_json(&profile)),
            (
                "identical_to_reference",
                identical.map_or(Value::Null, Value::Bool),
            ),
        ];
        if let Some(s) = speedup {
            fields.push(("speedup_vs_reference", Value::float(s)));
        }
        rows.push(Value::object(fields));
    }

    let stats = {
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let s = idx.stats();
        Value::object([
            ("coarse_layers", Value::uint(s.coarse_layers)),
            ("fine_layers", Value::uint(s.fine_layers)),
            ("forall_edges", Value::uint(s.forall_edges)),
            ("exists_edges", Value::uint(s.exists_edges)),
            ("pseudo_tuples", Value::uint(s.pseudo_tuples)),
        ])
    };

    let mut fields = vec![
        ("dist", Value::str(dist.code())),
        ("n", Value::uint(n)),
        ("d", Value::uint(d)),
        ("index", stats),
        ("optimized", Value::Array(rows)),
    ];
    if let Some((_, secs)) = &reference {
        fields.push(("reference_seconds", Value::float(*secs)));
    }
    Value::object(fields)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match Config::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("build: {e}");
            eprintln!(
                "usage: build [--n N[,..]] [--d D[,..]] [--dist ind|ant|cor[,..]] \
                 [--threads T[,..]] [--reference-max-n N] [--out FILE]"
            );
            std::process::exit(2);
        }
    };

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut cells = Vec::new();
    for &dist in &cfg.dists {
        for &n in &cfg.ns {
            for &d in &cfg.ds {
                cells.push(run_cell(dist, n, d, &cfg));
            }
        }
    }
    let doc = Value::object([
        (
            "host",
            Value::object([("available_parallelism", Value::uint(host_threads))]),
        ),
        (
            "note",
            Value::str(
                "optimized builds are snapshot-identical to the sequential \
                 reference at every thread count; thread speedups require \
                 available_parallelism > 1",
            ),
        ),
        ("cells", Value::Array(cells)),
    ]);
    std::fs::write(&cfg.out, doc.pretty()).expect("write results file");
    eprintln!("wrote {}", cfg.out);
}
