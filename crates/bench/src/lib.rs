//! Shared machinery for the experiment harness (`repro` binary), the
//! timing benches, and the `throughput` driver: dataset construction,
//! index wrappers, and cost measurement matching the paper's Definition 9.

pub mod json;
pub mod timing;

use drtopk_baselines::HlIndex;
use drtopk_common::{Distribution, Weights, WorkloadSpec};
use drtopk_core::{DlOptions, DualLayerIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Session-friendly defaults (n = 20K; 10K–50K for the cardinality sweep).
    Small,
    /// The paper's parameters (n = 200K default, up to 500K).
    Full,
}

impl Scale {
    /// Default cardinality for most experiments.
    pub fn default_n(&self) -> usize {
        match self {
            Scale::Small => 20_000,
            Scale::Full => 200_000,
        }
    }

    /// Cardinality sweep for Fig. 16.
    pub fn cardinality_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![10_000, 20_000, 30_000, 40_000, 50_000],
            Scale::Full => vec![100_000, 200_000, 300_000, 400_000, 500_000],
        }
    }
}

/// The algorithms compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    Onion,
    AppRi,
    Hl,
    HlPlus,
    Dg,
    DgPlus,
    Dl,
    DlPlus,
}

impl Algo {
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Onion => "Onion",
            Algo::AppRi => "AppRI",
            Algo::Hl => "HL",
            Algo::HlPlus => "HL+",
            Algo::Dg => "DG",
            Algo::DgPlus => "DG+",
            Algo::Dl => "DL",
            Algo::DlPlus => "DL+",
        }
    }
}

/// A built index of any of the compared kinds.
pub enum BuiltIndex {
    Dual(Box<DualLayerIndex>),
    AppRi(drtopk_baselines::AppRiIndex),
    Hl(HlIndex),
    Onion(drtopk_baselines::OnionIndex),
}

/// Cap on convex layers materialized for Onion/HL: queries sweep k ≤ 50,
/// so 64 layers plus the overflow remainder always suffice.
pub const LAYER_CAP: usize = 64;

/// Builds one index, returning it with its wall-clock build time (seconds).
pub fn build_index(rel: &drtopk_common::Relation, algo: Algo) -> (BuiltIndex, f64) {
    let t0 = Instant::now();
    let built = match algo {
        Algo::Onion => BuiltIndex::Onion(drtopk_baselines::OnionIndex::build(rel, LAYER_CAP)),
        Algo::AppRi => BuiltIndex::AppRi(drtopk_baselines::AppRiIndex::build(rel)),
        Algo::Hl | Algo::HlPlus => BuiltIndex::Hl(HlIndex::build(rel, LAYER_CAP)),
        Algo::Dg => BuiltIndex::Dual(Box::new(DualLayerIndex::build(rel, DlOptions::dg()))),
        Algo::DgPlus => {
            BuiltIndex::Dual(Box::new(DualLayerIndex::build(rel, DlOptions::dg_plus())))
        }
        Algo::Dl => BuiltIndex::Dual(Box::new(DualLayerIndex::build(rel, DlOptions::dl()))),
        Algo::DlPlus => {
            BuiltIndex::Dual(Box::new(DualLayerIndex::build(rel, DlOptions::dl_plus())))
        }
    };
    (built, t0.elapsed().as_secs_f64())
}

impl BuiltIndex {
    /// Runs one query, returning the paper's cost (tuples evaluated,
    /// pseudo-tuples included).
    pub fn query_cost(&self, algo: Algo, w: &Weights, k: usize) -> u64 {
        match (self, algo) {
            (BuiltIndex::Dual(idx), _) => idx.topk(w, k).cost.total(),
            (BuiltIndex::Hl(idx), Algo::Hl) => idx.topk_hl(w, k).1.total(),
            (BuiltIndex::Hl(idx), _) => idx.topk_hl_plus(w, k).1.total(),
            (BuiltIndex::Onion(idx), _) => idx.topk(w, k).1.total(),
            (BuiltIndex::AppRi(idx), _) => idx.topk(w, k).1.total(),
        }
    }
}

/// One measured series point, serializable for EXPERIMENTS.md tooling.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub experiment: String,
    pub dist: String,
    pub algo: &'static str,
    pub n: usize,
    pub d: usize,
    pub k: usize,
    /// Mean tuples evaluated per query (Definition 9).
    pub mean_cost: f64,
    pub queries: usize,
}

impl Measurement {
    /// Renders this point as a JSON object.
    pub fn to_json(&self) -> json::Value {
        json::Value::object([
            ("experiment", json::Value::str(&self.experiment)),
            ("dist", json::Value::str(&self.dist)),
            ("algo", json::Value::str(self.algo)),
            ("n", json::Value::uint(self.n)),
            ("d", json::Value::uint(self.d)),
            ("k", json::Value::uint(self.k)),
            ("mean_cost", json::Value::float(self.mean_cost)),
            ("queries", json::Value::uint(self.queries)),
        ])
    }
}

/// Generates `queries` random weight vectors (the paper's setting:
/// uniform over the open simplex), deterministic per seed.
pub fn query_weights(d: usize, queries: usize, seed: u64) -> Vec<Weights> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..queries).map(|_| Weights::random(d, &mut rng)).collect()
}

/// Measures the mean per-query cost of `algo` on a built index.
#[allow(clippy::too_many_arguments)] // experiment cells really have this many coordinates
pub fn measure_cost(
    experiment: &str,
    dist: Distribution,
    n: usize,
    d: usize,
    k: usize,
    queries: usize,
    built: &BuiltIndex,
    algo: Algo,
) -> Measurement {
    let weights = query_weights(d, queries, 0xC0FFEE);
    let total: u64 = weights.iter().map(|w| built.query_cost(algo, w, k)).sum();
    Measurement {
        experiment: experiment.to_string(),
        dist: dist.code().to_string(),
        algo: algo.name(),
        n,
        d,
        k,
        mean_cost: total as f64 / queries as f64,
        queries,
    }
}

/// Generates the standard dataset for an experiment cell (deterministic).
pub fn dataset(dist: Distribution, d: usize, n: usize) -> drtopk_common::Relation {
    WorkloadSpec::new(dist, d, n, 0xDA7A).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_each_algo() {
        let rel = dataset(Distribution::Independent, 3, 500);
        let w = Weights::uniform(3);
        for algo in [
            Algo::Onion,
            Algo::AppRi,
            Algo::Hl,
            Algo::HlPlus,
            Algo::Dg,
            Algo::DgPlus,
            Algo::Dl,
            Algo::DlPlus,
        ] {
            let (built, secs) = build_index(&rel, algo);
            assert!(secs >= 0.0);
            let cost = built.query_cost(algo, &w, 10);
            assert!(cost >= 10, "{algo:?} cost {cost}");
            assert!(cost <= 600, "{algo:?} cost {cost} exceeds n + pseudo");
        }
    }

    #[test]
    fn measurement_records_parameters() {
        let rel = dataset(Distribution::Independent, 2, 200);
        let (built, _) = build_index(&rel, Algo::Dl);
        let m = measure_cost(
            "fig8",
            Distribution::Independent,
            200,
            2,
            5,
            4,
            &built,
            Algo::Dl,
        );
        assert_eq!((m.n, m.d, m.k, m.queries), (200, 2, 5, 4));
        assert!(m.mean_cost >= 5.0);
        assert_eq!(m.algo, "DL");
    }
}
