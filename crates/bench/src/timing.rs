//! Plain-`main()` timing support for the `benches/` programs.
//!
//! The offline build has no Criterion, so each bench is an ordinary
//! binary (`harness = false`) that samples a closure a fixed number of
//! times and prints one summary line. Deliberately simple: no outlier
//! rejection, no plots — min/mean/max over explicit samples, which is
//! enough to rank alternatives and spot order-of-magnitude regressions.

use std::hint::black_box;
use std::time::Instant;

/// Runs `f` once as warm-up, then `samples` timed times, and prints
/// `label: min/mean/max` in adaptive units. Returns the mean seconds.
pub fn sample<R>(label: &str, samples: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{label:<44} {:>10}/{:>10}/{:>10}  ({} samples)",
        fmt_secs(min),
        fmt_secs(mean),
        fmt_secs(max),
        times.len()
    );
    mean
}

/// Formats a duration in seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_returns_positive_mean() {
        let mean = sample("noop", 3, || 1 + 1);
        assert!(mean >= 0.0);
    }

    #[test]
    fn units_scale() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(2.5e-3), "2.500 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500 µs");
        assert_eq!(fmt_secs(2.5e-9), "2.5 ns");
    }
}
