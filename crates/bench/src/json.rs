//! Minimal JSON emitter for benchmark reports.
//!
//! The build environment is offline, so instead of `serde_json` the bench
//! binaries serialize through this tiny tree builder. Only what the
//! reports need: objects (insertion-ordered), arrays, strings, integers,
//! floats, and booleans, pretty-printed with two-space indentation.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Keys keep insertion order so reports diff cleanly.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::String(s.to_string())
    }

    pub fn uint(v: usize) -> Value {
        Value::Int(v as i64)
    }

    pub fn float(v: f64) -> Value {
        Value::Float(v)
    }

    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => {
                if v.is_finite() {
                    // `{v:?}` keeps a decimal point or exponent so the token
                    // parses back as a float; plain `{}` prints `1` for 1.0.
                    let _ = write!(out, "{v:?}");
                } else {
                    // JSON has no NaN/Infinity literal.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structure() {
        let v = Value::object([
            ("name", Value::str("dl+")),
            ("n", Value::uint(100)),
            ("qps", Value::float(1234.5)),
            ("ok", Value::Bool(true)),
            ("tags", Value::array([Value::str("a"), Value::str("b")])),
            ("empty", Value::array([])),
        ]);
        let s = v.pretty();
        assert!(s.starts_with("{\n  \"name\": \"dl+\",\n"));
        assert!(s.contains("\"qps\": 1234.5"));
        assert!(s.contains("\"tags\": [\n    \"a\",\n    \"b\"\n  ]"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn floats_always_parse_as_floats() {
        assert_eq!(Value::float(1.0).pretty(), "1.0\n");
        assert_eq!(Value::float(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Value::str("a\"b\\c\nd\u{1}").pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }
}
