//! Timing bench: top-k query latency per index (complements the
//! tuples-evaluated cost metric reported by the `repro` harness — the
//! paper notes the two are proportional).

use drtopk_bench::timing::sample;
use drtopk_bench::{build_index, dataset, query_weights, Algo};
use drtopk_common::Distribution;

fn main() {
    println!("query_latency — one pass over 64 random weight vectors");
    let n = 10_000;
    let d = 4;
    let k = 10;
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let rel = dataset(dist, d, n);
        let weights = query_weights(d, 64, 7);
        for algo in [
            Algo::Onion,
            Algo::HlPlus,
            Algo::Dg,
            Algo::DgPlus,
            Algo::Dl,
            Algo::DlPlus,
        ] {
            let (built, _) = build_index(&rel, algo);
            let label = format!("query/{}/{}", algo.name(), dist.code());
            sample(&label, 5, || {
                weights
                    .iter()
                    .map(|w| built.query_cost(algo, w, k))
                    .sum::<u64>()
            });
        }
    }
}
