//! Criterion bench: top-k query latency per index (complements the
//! tuples-evaluated cost metric reported by the `repro` harness — the
//! paper notes the two are proportional).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drtopk_bench::{build_index, dataset, query_weights, Algo};
use drtopk_common::Distribution;
use std::hint::black_box;
use std::time::Duration;

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_latency");
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    let n = 10_000;
    let d = 4;
    let k = 10;
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let rel = dataset(dist, d, n);
        let weights = query_weights(d, 64, 7);
        for algo in [
            Algo::Onion,
            Algo::HlPlus,
            Algo::Dg,
            Algo::DgPlus,
            Algo::Dl,
            Algo::DlPlus,
        ] {
            let (built, _) = build_index(&rel, algo);
            let mut i = 0usize;
            g.bench_with_input(
                BenchmarkId::new(algo.name(), dist.code()),
                &built,
                |b, built| {
                    b.iter(|| {
                        i = (i + 1) % weights.len();
                        black_box(built.query_cost(algo, &weights[i], k))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
