//! Criterion bench: skyline algorithm comparison (BNL vs SFS vs BSkyTree),
//! the substrate choice behind the coarse layers (paper reference [28]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drtopk_bench::dataset;
use drtopk_common::{Distribution, TupleId};
use drtopk_skyline::SkylineAlgo;
use std::hint::black_box;
use std::time::Duration;

fn bench_skyline(c: &mut Criterion) {
    let mut g = c.benchmark_group("skyline");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let rel = dataset(dist, 4, 10_000);
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        for algo in [SkylineAlgo::Bnl, SkylineAlgo::Sfs, SkylineAlgo::BSkyTree] {
            g.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), dist.code()),
                &rel,
                |b, rel| b.iter(|| black_box(algo.run(rel, &ids))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_skyline);
criterion_main!(benches);
