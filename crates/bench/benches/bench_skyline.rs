//! Timing bench: skyline algorithm comparison (BNL vs SFS vs BSkyTree),
//! the substrate choice behind the coarse layers (paper reference [28]).

use drtopk_bench::dataset;
use drtopk_bench::timing::sample;
use drtopk_common::{Distribution, TupleId};
use drtopk_skyline::SkylineAlgo;

fn main() {
    println!("skyline — one full skyline over n=10000, d=4");
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let rel = dataset(dist, 4, 10_000);
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        for algo in [SkylineAlgo::Bnl, SkylineAlgo::Sfs, SkylineAlgo::BSkyTree] {
            let label = format!("skyline/{algo:?}/{}", dist.code());
            sample(&label, 5, || algo.run(&rel, &ids));
        }
    }
}
