//! Criterion bench: index construction time (the paper's Table IV),
//! bench-sized so Criterion can iterate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drtopk_bench::{build_index, dataset, Algo};
use drtopk_common::Distribution;
use std::hint::black_box;
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_build");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let n = 2_000;
        let d = 4;
        let rel = dataset(dist, d, n);
        for algo in [Algo::Hl, Algo::Dg, Algo::DgPlus, Algo::Dl, Algo::DlPlus] {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), dist.code()),
                &rel,
                |b, rel| b.iter(|| black_box(build_index(rel, algo).0)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
