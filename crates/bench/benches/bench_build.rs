//! Timing bench: index construction time (the paper's Table IV),
//! bench-sized so a run finishes in seconds.

use drtopk_bench::timing::sample;
use drtopk_bench::{build_index, dataset, Algo};
use drtopk_common::Distribution;

fn main() {
    println!("table4_build — build time, min/mean/max per build");
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let n = 2_000;
        let d = 4;
        let rel = dataset(dist, d, n);
        for algo in [Algo::Hl, Algo::Dg, Algo::DgPlus, Algo::Dl, Algo::DlPlus] {
            let label = format!("build/{}/{}", algo.name(), dist.code());
            sample(&label, 5, || build_index(&rel, algo).0);
        }
    }
}
