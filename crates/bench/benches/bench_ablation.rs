//! Timing bench: ablations of the design choices DESIGN.md calls out —
//! ∃-edge policy, fine-sublayer cap, and zero-layer cluster count — on
//! build time. (Their effect on query *cost* is reported by
//! `repro`-companion measurements in EXPERIMENTS.md.)

use drtopk_bench::dataset;
use drtopk_bench::timing::sample;
use drtopk_common::Distribution;
use drtopk_core::{DlOptions, DualLayerIndex, EdsPolicy, ZeroMode};

fn main() {
    let rel = dataset(Distribution::AntiCorrelated, 3, 2_000);

    println!("ablation_eds_policy — build time per ∃-edge policy");
    for policy in [
        EdsPolicy::FirstFacet,
        EdsPolicy::AllFacets,
        EdsPolicy::BestUniform,
    ] {
        sample(&format!("eds/{policy:?}"), 5, || {
            DualLayerIndex::build(
                &rel,
                DlOptions {
                    eds_policy: policy,
                    ..DlOptions::dl()
                },
            )
        });
    }

    println!("ablation_fine_cap — build time per fine-sublayer cap (0 = unlimited)");
    for cap in [1usize, 2, 4, 0] {
        sample(&format!("fine_cap/{cap}"), 5, || {
            DualLayerIndex::build(
                &rel,
                DlOptions {
                    max_fine_layers: cap,
                    ..DlOptions::dl()
                },
            )
        });
    }

    println!("ablation_zero_clusters — build time per zero-layer cluster count");
    for clusters in [4usize, 16, 64] {
        sample(&format!("zero_clusters/{clusters}"), 5, || {
            DualLayerIndex::build(
                &rel,
                DlOptions {
                    zero: ZeroMode::Clustered { clusters },
                    ..DlOptions::default()
                },
            )
        });
    }
}
