//! Criterion bench: ablations of the design choices DESIGN.md calls out —
//! ∃-edge policy, fine-sublayer cap, and zero-layer cluster count — on
//! build time. (Their effect on query *cost* is reported by
//! `repro`-companion measurements in EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drtopk_bench::dataset;
use drtopk_common::Distribution;
use drtopk_core::{DlOptions, DualLayerIndex, EdsPolicy, ZeroMode};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let rel = dataset(Distribution::AntiCorrelated, 3, 2_000);

    let mut g = c.benchmark_group("ablation_eds_policy");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for policy in [
        EdsPolicy::FirstFacet,
        EdsPolicy::AllFacets,
        EdsPolicy::BestUniform,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &rel,
            |b, rel| {
                b.iter(|| {
                    black_box(DualLayerIndex::build(
                        rel,
                        DlOptions {
                            eds_policy: policy,
                            ..DlOptions::dl()
                        },
                    ))
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_fine_cap");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for cap in [1usize, 2, 4, 0] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &rel, |b, rel| {
            b.iter(|| {
                black_box(DualLayerIndex::build(
                    rel,
                    DlOptions {
                        max_fine_layers: cap,
                        ..DlOptions::dl()
                    },
                ))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_zero_clusters");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for clusters in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(clusters), &rel, |b, rel| {
            b.iter(|| {
                black_box(DualLayerIndex::build(
                    rel,
                    DlOptions {
                        zero: ZeroMode::Clustered { clusters },
                        ..DlOptions::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
