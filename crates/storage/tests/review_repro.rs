use drtopk_common::{Distribution, WorkloadSpec};
use drtopk_storage::{DurableDynamicIndex, DurableOptions};

#[test]
fn short_header_wal_recovery() {
    let dir = std::env::temp_dir().join("review_short_header");
    let _ = std::fs::remove_dir_all(&dir);
    let rel = WorkloadSpec::new(Distribution::Independent, 2, 20, 3).generate();
    let mut store = DurableDynamicIndex::create(&dir, &rel, DurableOptions::default()).unwrap();
    store.insert(&[0.4, 0.4]).unwrap();
    drop(store);
    // Model a crash during checkpoint's WalWriter::create for generation 1:
    // the file exists but only part of the header was written.
    let wal1 = dir.join(format!("wal.{:016}.log", 1));
    std::fs::write(&wal1, &b"DRTOPKW\x01"[..4]).unwrap(); // 4 of 16 header bytes

    // First recovery: should succeed (torn header on the newest WAL is
    // documented as recoverable).
    let (mut store, report) =
        DurableDynamicIndex::open(&dir, DurableOptions::default()).expect("first open");
    assert!(report.torn_tail);
    // Acknowledge a write post-recovery...
    store.insert(&[0.6, 0.6]).unwrap();
    drop(store);
    // ...and the store must still reopen with that write present.
    let (store, _report) =
        DurableDynamicIndex::open(&dir, DurableOptions::default()).expect("second open");
    assert_eq!(store.len(), 22);
}
