//! Seeded chaos suite: deterministic fault injection at every storage and
//! execution boundary, asserting the recovery invariants against an
//! acked-operations oracle.
//!
//! Requires `--features failpoints`. The failpoint registry is process
//! global, so every test serializes on [`LOCK`] and resets the registry
//! on entry and exit.
#![cfg(feature = "failpoints")]

use drtopk_common::{Distribution, Weights, WorkloadSpec};
use drtopk_core::{BatchExecutor, DlOptions, DualLayerIndex, Handle, QueryBudget};
use drtopk_failpoints::{arm, reset, FailAction};
use drtopk_storage::durable::failpoint_sites as fp;
use drtopk_storage::{DurableDynamicIndex, DurableOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes the test and guarantees a clean registry on entry.
fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset();
    g
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drtopk_chaos_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DurableOptions {
    DurableOptions {
        rebuild_fraction: 0.5,
        ..DurableOptions::default()
    }
}

/// The acked-operations oracle: a plain map of live handles to rows.
/// Recovery must reproduce exactly this multiset (plus, after a sync
/// failure, possibly the single in-flight operation — see the sync test).
struct Oracle {
    live: HashMap<Handle, Vec<f64>>,
}

impl Oracle {
    fn from_initial(rel: &drtopk_common::Relation) -> Oracle {
        Oracle {
            live: rel
                .iter()
                .map(|(t, row)| (t as Handle, row.to_vec()))
                .collect(),
        }
    }

    fn topk(&self, w: &Weights, k: usize) -> Vec<Handle> {
        let mut v: Vec<(f64, Handle)> = self
            .live
            .iter()
            .map(|(&h, row)| (w.score(row), h))
            .collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        v.truncate(k);
        v.into_iter().map(|(_, h)| h).collect()
    }
}

/// Asserts the recovered store answers bit-identically to the oracle.
fn assert_matches_oracle(store: &DurableDynamicIndex, oracle: &Oracle, d: usize, seed: u64) {
    assert_eq!(store.len(), oracle.live.len(), "live tuple count");
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..12 {
        let w = Weights::random(d, &mut rng);
        let k = rng.gen_range(1..=20);
        assert_eq!(
            store.topk(&w, k).0,
            oracle.topk(&w, k),
            "query {i} after recovery"
        );
    }
}

fn fresh_store(name: &str, d: usize, n: usize) -> (PathBuf, DurableDynamicIndex, Oracle) {
    let dir = tmpdir(name);
    let rel = WorkloadSpec::new(Distribution::Independent, d, n, 7).generate();
    let store = DurableDynamicIndex::create(&dir, &rel, opts()).unwrap();
    let oracle = Oracle::from_initial(&rel);
    (dir, store, oracle)
}

#[test]
fn append_error_loses_only_the_unacked_op_and_poisons_the_store() {
    let _g = guard();
    let (dir, mut store, mut oracle) = fresh_store("append_err", 3, 40);
    let row = vec![0.5, 0.5, 0.5];
    let h = store.insert(&row).unwrap();
    oracle.live.insert(h, row);

    // The next append fails before any byte reaches the disk.
    arm(fp::FP_WAL_APPEND, 0, FailAction::Error);
    assert!(store.insert(&[0.1, 0.2, 0.3]).is_err());
    assert!(store.poisoned().is_some());
    // Every further mutation is refused; queries still work.
    assert!(store.insert(&[0.6, 0.6, 0.6]).is_err());
    assert!(store.delete(h).is_err());
    assert_eq!(store.topk(&Weights::uniform(3), 5).0.len(), 5);
    drop(store);

    let (recovered, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
    assert!(!report.torn_tail, "nothing was written, nothing is torn");
    assert_eq!(report.replayed, 1, "only the acked insert");
    assert_matches_oracle(&recovered, &oracle, 3, 11);
    reset();
}

#[test]
fn torn_and_bitflipped_appends_recover_the_acked_prefix() {
    let _g = guard();
    for (case, action) in [
        ("torn_1b", FailAction::Truncate(1)),
        ("torn_5b", FailAction::Truncate(5)),
        ("torn_9b", FailAction::Truncate(9)),
        (
            "flip_len",
            FailAction::BitFlip {
                offset: 1,
                mask: 0x10,
            },
        ),
        (
            "flip_crc",
            FailAction::BitFlip {
                offset: 5,
                mask: 0x01,
            },
        ),
        (
            "flip_payload",
            FailAction::BitFlip {
                offset: 12,
                mask: 0x80,
            },
        ),
    ] {
        let (dir, mut store, mut oracle) = fresh_store(&format!("tear_{case}"), 3, 30);
        for i in 0..3 {
            let row = vec![0.1 * (i + 1) as f64, 0.5, 0.5];
            let h = store.insert(&row).unwrap();
            oracle.live.insert(h, row);
        }
        // The 4th append is torn mid-write: damaged bytes land on disk
        // and the operation errors.
        arm(fp::FP_WAL_APPEND_DATA, 0, action.clone());
        assert!(store.insert(&[0.9, 0.9, 0.9]).is_err(), "{case}");
        assert!(store.poisoned().is_some(), "{case}");
        drop(store);

        let (recovered, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
        assert!(report.torn_tail, "{case}: the tail must be detected");
        assert_eq!(report.replayed, 3, "{case}: acked prefix only");
        assert_matches_oracle(&recovered, &oracle, 3, 13);
        reset();
    }
}

#[test]
fn sync_failure_poisons_but_the_durable_record_resurfaces() {
    let _g = guard();
    let (dir, mut store, mut oracle) = fresh_store("sync_err", 2, 25);
    let row_acked = vec![0.3, 0.7];
    let h = store.insert(&row_acked).unwrap();
    oracle.live.insert(h, row_acked);

    // The record is fully written, then the fsync fails: the caller gets
    // an error (the op is NOT acknowledged) but the bytes are on disk, so
    // recovery replays it — the documented may-resurface contract for
    // in-flight operations.
    arm(fp::FP_WAL_SYNC, 0, FailAction::Error);
    let in_flight = vec![0.8, 0.2];
    let next = store.index().next_handle();
    assert!(store.insert(&in_flight).is_err());
    assert!(store.poisoned().is_some());
    drop(store);

    let (recovered, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
    assert_eq!(report.replayed, 2, "acked insert + resurfaced in-flight");
    oracle.live.insert(next, in_flight);
    assert_matches_oracle(&recovered, &oracle, 2, 17);
    reset();
}

#[test]
fn checkpoint_faults_leave_the_current_generation_fully_functional() {
    let _g = guard();
    for (case, site, action) in [
        ("wal_create", fp::FP_WAL_CREATE, FailAction::Error),
        ("snap_torn", fp::FP_WRITE_DATA, FailAction::Truncate(10)),
        (
            "snap_flip",
            fp::FP_WRITE_DATA,
            FailAction::BitFlip {
                offset: 100,
                mask: 0x04,
            },
        ),
        ("snap_rename", fp::FP_WRITE_RENAME, FailAction::Error),
    ] {
        let (dir, mut store, mut oracle) = fresh_store(&format!("ckpt_{case}"), 2, 20);
        let row = vec![0.4, 0.6];
        let h = store.insert(&row).unwrap();
        oracle.live.insert(h, row);

        arm(site, 0, action);
        assert!(store.checkpoint().is_err(), "{case}");
        assert!(
            store.poisoned().is_none(),
            "{case}: a failed checkpoint must not poison the store"
        );
        assert_eq!(store.generation(), 0, "{case}: generation unchanged");

        // The store keeps working on the old generation.
        let row2 = vec![0.15, 0.85];
        let h2 = store.insert(&row2).unwrap();
        oracle.live.insert(h2, row2);
        drop(store);

        let (recovered, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
        assert_eq!(report.generation, 0, "{case}");
        assert_matches_oracle(&recovered, &oracle, 2, 19);
        // And the mangled snapshot temp file, if any, never became
        // visible as a real snapshot.
        assert!(
            !dir.join(format!("snapshot.{:016}.drt", 1)).exists() || case == "wal_create",
            "{case}: torn snapshot must not commit"
        );
        reset();
    }
}

#[test]
fn read_faults_on_open_fall_back_to_the_previous_generation() {
    let _g = guard();
    for (case, action) in [
        ("io_error", FailAction::Error),
        ("short_read", FailAction::Truncate(40)),
        (
            "bit_rot",
            FailAction::BitFlip {
                offset: 200,
                mask: 0x02,
            },
        ),
    ] {
        let site = if case == "io_error" {
            fp::FP_READ_IO
        } else {
            fp::FP_READ_DATA
        };
        let (dir, mut store, mut oracle) = fresh_store(&format!("read_{case}"), 2, 30);
        let row = vec![0.25, 0.75];
        let h = store.insert(&row).unwrap();
        oracle.live.insert(h, row);
        store.checkpoint().unwrap();
        let row2 = vec![0.65, 0.35];
        let h2 = store.insert(&row2).unwrap();
        oracle.live.insert(h2, row2);
        drop(store);

        // The first read in open() is the newest snapshot (generation 1):
        // fail it, forcing fallback to generation 0 + full WAL replay.
        arm(site, 0, action);
        let (recovered, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
        assert_eq!(report.generation, 0, "{case}: fell back");
        assert_eq!(report.snapshots_skipped, 1, "{case}");
        assert_eq!(report.replayed, 2, "{case}: wal.0 then wal.1");
        assert_matches_oracle(&recovered, &oracle, 2, 23);
        reset();
    }
}

#[test]
fn worker_panic_is_isolated_to_its_request() {
    let _g = guard();
    let d = 3;
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 400, 31).generate();
    let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
    let mut rng = StdRng::seed_from_u64(41);
    let requests: Vec<(Weights, usize)> = (0..24)
        .map(|_| (Weights::random(d, &mut rng), rng.gen_range(1..=15)))
        .collect();
    // Single worker thread: request i is the i-th visit to the failpoint.
    let exec = BatchExecutor::with_threads(&idx, 1);
    let clean = exec.run_guarded(&requests, &QueryBudget::unlimited());
    assert!(clean.iter().all(|r| r.is_ok()));

    let victim = 17;
    arm(
        drtopk_core::batch::WORKER_FAILPOINT,
        victim as u64,
        FailAction::Panic,
    );
    let faulted = exec.run_guarded(&requests, &QueryBudget::unlimited());
    reset();
    for (i, (clean_r, faulted_r)) in clean.iter().zip(&faulted).enumerate() {
        if i == victim {
            let err = faulted_r.as_ref().expect_err("victim must fail");
            assert!(
                err.message.contains("failpoint panic"),
                "panic payload surfaced: {}",
                err.message
            );
        } else {
            assert_eq!(
                faulted_r.as_ref().unwrap(),
                clean_r.as_ref().unwrap(),
                "request {i} must be bit-identical despite the panicked neighbour"
            );
        }
    }
}

/// The acceptance gate: a seeded storm of random operations with random
/// faults armed at random sites, recovering after every failure, always
/// converging to exactly the acked-operation state.
#[test]
fn seeded_chaos_storm_always_recovers_the_acked_state() {
    let _g = guard();
    let d = 2;
    let dir = tmpdir("storm");
    let rel = WorkloadSpec::new(Distribution::Independent, d, 50, 3).generate();
    let mut store = Some(DurableDynamicIndex::create(&dir, &rel, opts()).unwrap());
    let mut oracle = Oracle::from_initial(&rel);
    let mut rng = StdRng::seed_from_u64(0xC4A05);
    let mut known: Vec<Handle> = oracle.live.keys().copied().collect();
    let mut recoveries = 0usize;

    for round in 0..60 {
        // Arm one random fault somewhere in the mutation path.
        let (site, action) = match rng.gen_range(0..5) {
            0 => (fp::FP_WAL_APPEND, FailAction::Error),
            1 => (
                fp::FP_WAL_APPEND_DATA,
                FailAction::Truncate(rng.gen_range(0..12)),
            ),
            2 => (
                fp::FP_WAL_APPEND_DATA,
                FailAction::BitFlip {
                    offset: rng.gen_range(0..64),
                    mask: 1 << rng.gen_range(0..8),
                },
            ),
            3 => (fp::FP_WAL_CREATE, FailAction::Error),
            _ => (
                fp::FP_WRITE_DATA,
                FailAction::Truncate(rng.gen_range(0..30)),
            ),
        };
        arm(site, rng.gen_range(0..6), action);

        let s = store.as_mut().unwrap();
        for _ in 0..8 {
            match rng.gen_range(0..10) {
                0..=5 => {
                    let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.001..0.999)).collect();
                    match s.insert(&row) {
                        Ok(h) => {
                            oracle.live.insert(h, row);
                            known.push(h);
                        }
                        Err(_) => break,
                    }
                }
                6..=7 => {
                    if known.is_empty() {
                        continue;
                    }
                    let h = known[rng.gen_range(0..known.len())];
                    match s.delete(h) {
                        Ok(was_live) => {
                            assert_eq!(was_live, oracle.live.remove(&h).is_some());
                        }
                        Err(_) => break,
                    }
                }
                _ => {
                    let _ = s.checkpoint();
                }
            }
        }
        reset();
        if store.as_ref().unwrap().poisoned().is_some() {
            // Crash-and-recover. Nothing was armed during recovery.
            drop(store.take());
            let (recovered, _report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
            recoveries += 1;
            assert_matches_oracle(&recovered, &oracle, d, 100 + round);
            store = Some(recovered);
        }
    }
    assert!(
        recoveries >= 5,
        "the storm must actually trigger recoveries"
    );
    // Final recovery from a clean shutdown.
    drop(store.take());
    let (recovered, _) = DurableDynamicIndex::open(&dir, opts()).unwrap();
    assert_matches_oracle(&recovered, &oracle, d, 999);
    // And the recovered state is itself bit-identical to a fresh replay
    // (recover twice, compare).
    drop(recovered);
    let (again, _) = DurableDynamicIndex::open(&dir, opts()).unwrap();
    assert_matches_oracle(&again, &oracle, d, 1000);
}
