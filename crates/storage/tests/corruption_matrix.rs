//! Corruption matrix: every way a persisted file can rot must surface as
//! a typed [`FormatError`], never a panic, hang, or silently wrong data.
//!
//! The matrix crosses three file kinds (relation, index snapshot, dynamic
//! state) with truncation at *every* byte boundary, single-bit flips in
//! every region (magic, length header, payload, CRC trailer), and forged
//! length fields.

use drtopk_common::{Distribution, WorkloadSpec};
use drtopk_core::{DlOptions, DualLayerIndex, DynamicIndex};
use drtopk_storage::format::{
    dynamic_state_from_bytes, dynamic_state_to_bytes, index_from_bytes, index_to_bytes,
    relation_from_bytes, relation_to_bytes, FormatError,
};

/// Well-formed sample encodings of each file kind.
fn samples() -> Vec<(&'static str, Vec<u8>)> {
    let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 60, 13).generate();
    let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
    let mut dynamic = DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.5);
    dynamic.insert(&[0.2, 0.4, 0.6]).unwrap();
    dynamic.insert(&[0.8, 0.1, 0.3]).unwrap();
    dynamic.delete(5);
    vec![
        ("relation", relation_to_bytes(&rel)),
        ("index", index_to_bytes(&idx.to_snapshot())),
        ("dynamic", dynamic_state_to_bytes(&dynamic.to_state(), 9)),
    ]
}

/// Decodes `bytes` as file kind `kind`, returning the typed error if any.
fn decode(kind: &str, bytes: &[u8]) -> Result<(), FormatError> {
    match kind {
        "relation" => relation_from_bytes(bytes).map(|_| ()),
        "index" => index_from_bytes(bytes).map(|_| ()),
        "dynamic" => dynamic_state_from_bytes(bytes).map(|_| ()),
        _ => unreachable!(),
    }
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    for (kind, bytes) in samples() {
        assert!(decode(kind, &bytes).is_ok(), "{kind}: intact decode");
        for cut in 0..bytes.len() {
            let err = decode(kind, &bytes[..cut])
                .expect_err(&format!("{kind}: truncation to {cut} bytes must fail"));
            assert!(
                matches!(err, FormatError::Truncated | FormatError::BadMagic),
                "{kind}: truncation to {cut} gave unexpected {err:?}"
            );
        }
    }
}

#[test]
fn single_bit_flips_in_every_region_are_typed_errors() {
    for (kind, bytes) in samples() {
        // Every byte for small regions; payload sampled with a stride to
        // keep the matrix fast while still covering each section.
        let payload_end = bytes.len() - 4;
        let positions = (0..16)
            .chain((16..payload_end).step_by(7))
            .chain(payload_end..bytes.len());
        for pos in positions {
            for mask in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[pos] ^= mask;
                match decode(kind, &bad) {
                    Err(_) => {}
                    Ok(()) => {
                        // A flip inside an f64 mantissa can decode to a
                        // *valid* value; the CRC must have caught it first,
                        // so reaching here is only legal if... it is not.
                        panic!("{kind}: bit flip at {pos} mask {mask:#x} decoded cleanly");
                    }
                }
            }
        }
    }
}

#[test]
fn forged_length_headers_never_panic_or_overallocate() {
    for (kind, bytes) in samples() {
        for forged in [0u64, 1, u64::MAX, u64::MAX / 8, bytes.len() as u64 * 2] {
            let mut bad = bytes.clone();
            bad[8..16].copy_from_slice(&forged.to_le_bytes());
            assert!(
                decode(kind, &bad).is_err(),
                "{kind}: forged frame length {forged} must fail"
            );
        }
        // Forge the first section length inside the payload too (offset 16
        // is the start of the payload for all three kinds).
        for forged in [u64::MAX, u64::MAX / 8] {
            let mut bad = bytes.clone();
            bad[16..24].copy_from_slice(&forged.to_le_bytes());
            assert!(
                decode(kind, &bad).is_err(),
                "{kind}: forged section length {forged} must fail"
            );
        }
    }
}

#[test]
fn empty_and_tiny_inputs_are_typed_errors() {
    for (kind, _) in samples() {
        for len in 0..20 {
            let tiny = vec![0u8; len];
            assert!(
                matches!(
                    decode(kind, &tiny),
                    Err(FormatError::Truncated | FormatError::BadMagic)
                ),
                "{kind}: {len}-byte input"
            );
        }
    }
}

#[test]
fn wrong_kind_byte_is_bad_magic_not_misparse() {
    // A relation file handed to the index decoder (and every other cross
    // pairing) must fail on magic, not attempt a decode.
    let all = samples();
    for (kind, _) in &all {
        for (other_kind, other_bytes) in &all {
            if kind == other_kind {
                continue;
            }
            assert!(
                matches!(decode(kind, other_bytes), Err(FormatError::BadMagic)),
                "{other_kind} file fed to {kind} decoder"
            );
        }
    }
}

#[test]
fn errors_carry_a_source_chain_and_convert_to_common_error() {
    use drtopk_common::Error;
    use std::error::Error as StdError;

    let io = FormatError::Io(std::io::Error::other("disk on fire"));
    assert!(io.source().is_some(), "Io wraps its cause");
    assert!(matches!(Error::from(io), Error::Io(_)));

    let bad = FormatError::BadMagic;
    assert!(bad.source().is_none());
    assert!(matches!(
        Error::from(FormatError::BadMagic),
        Error::Corrupt(_)
    ));
    assert!(matches!(
        Error::from(FormatError::Truncated),
        Error::Corrupt(_)
    ));
    assert!(matches!(
        Error::from(FormatError::Checksum {
            expected: 1,
            got: 2
        }),
        Error::Corrupt(_)
    ));
    assert!(matches!(
        Error::from(FormatError::Invalid("x".into())),
        Error::Invalid(_)
    ));
}
