//! Failure-injection tests for the storage format: arbitrary and mutated
//! byte streams must never panic the decoders — every malformed input is
//! a clean `Err`.

use drtopk_common::{Distribution, WorkloadSpec};
use drtopk_core::{DlOptions, DualLayerIndex};
use drtopk_storage::format::{
    index_from_bytes, index_to_bytes, relation_from_bytes, relation_to_bytes,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = relation_from_bytes(&data);
        let _ = index_from_bytes(&data);
    }

    #[test]
    fn mutated_relation_files_never_panic(
        seed in 0u64..50,
        flip_at in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 40, seed).generate();
        let mut bytes = relation_to_bytes(&rel);
        let pos = flip_at % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        if let Ok(back) = relation_from_bytes(&bytes) {
            // A flip that survives decoding must have hit a value bit
            // AND still match the CRC — impossible for a single flip;
            // the only legal outcome is the untouched original (the
            // flip landed on a byte that decodes identically, which a
            // single bit flip cannot do). Reaching here means CRC
            // failed to catch a corruption.
            prop_assert!(back == rel, "single bit flip slipped past the checksum");
        }
    }

    #[test]
    fn truncated_index_files_never_panic(seed in 0u64..20, cut in 1usize..200) {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 30, seed).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let bytes = index_to_bytes(&idx.to_snapshot());
        let cut = cut % bytes.len();
        prop_assert!(index_from_bytes(&bytes[..cut]).is_err());
    }
}
