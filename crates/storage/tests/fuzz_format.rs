//! Failure-injection tests for the storage format: arbitrary and mutated
//! byte streams must never panic the decoders — every malformed input is
//! a clean `Err`. Seeded loops stand in for a fuzzing framework (the
//! build is offline); every case is deterministic per seed.

use drtopk_common::{Distribution, WorkloadSpec};
use drtopk_core::{DlOptions, DualLayerIndex};
use drtopk_storage::format::{
    index_from_bytes, index_to_bytes, relation_from_bytes, relation_to_bytes,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn random_bytes_never_panic() {
    for case in 0u64..256 {
        let mut rng = StdRng::seed_from_u64(0xF0_0000 + case);
        let len = rng.gen_range(0usize..512);
        let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let _ = relation_from_bytes(&data);
        let _ = index_from_bytes(&data);
    }
}

#[test]
fn mutated_relation_files_never_panic() {
    for case in 0u64..256 {
        let mut rng = StdRng::seed_from_u64(0xF1_0000 + case);
        let seed = rng.gen_range(0u64..50);
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 40, seed).generate();
        let mut bytes = relation_to_bytes(&rel);
        let pos = rng.gen_range(0usize..4096) % bytes.len();
        let flip_bit = rng.gen_range(0u8..8);
        bytes[pos] ^= 1 << flip_bit;
        if let Ok(back) = relation_from_bytes(&bytes) {
            // A flip that survives decoding must have hit a value bit
            // AND still match the CRC — impossible for a single flip;
            // the only legal outcome is the untouched original (the
            // flip landed on a byte that decodes identically, which a
            // single bit flip cannot do). Reaching here means CRC
            // failed to catch a corruption.
            assert!(
                back == rel,
                "case {case}: single bit flip slipped past the checksum"
            );
        }
    }
}

#[test]
fn truncated_index_files_never_panic() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0xF2_0000 + case);
        let seed = rng.gen_range(0u64..20);
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 30, seed).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let bytes = index_to_bytes(&idx.to_snapshot());
        let cut = rng.gen_range(1usize..200) % bytes.len();
        assert!(
            index_from_bytes(&bytes[..cut]).is_err(),
            "case {case}: truncated file decoded"
        );
    }
}
