//! Versioned, checksummed binary format for relations and index snapshots.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes   "DRTOPK\x00\x01" (kind byte + version byte at the end)
//! length   8 bytes   payload byte count
//! payload  ...       section-encoded body
//! crc32    4 bytes   CRC-32 (IEEE) over the payload
//! ```
//!
//! The payload is a sequence of length-prefixed primitive vectors; the
//! decoder validates every length against the remaining buffer, so
//! truncated or bit-flipped files fail loudly instead of producing a
//! corrupt index.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use drtopk_common::Relation;
use drtopk_core::{DualLayerIndex, DynamicState, IndexSnapshot};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC_RELATION: &[u8; 8] = b"DRTOPK\x01\x01";
// Index/dynamic payload version 2: appends the traversal-order node
// permutation after the zero-layer section.
const MAGIC_INDEX: &[u8; 8] = b"DRTOPK\x02\x02";
const MAGIC_DYNAMIC: &[u8; 8] = b"DRTOPK\x03\x02";

/// Failpoint: the data an atomic write is about to place in its temp file.
/// Mangling models a crash mid-write — the temp file holds torn bytes and
/// the rename never happens, so the destination is untouched.
pub const FP_WRITE_DATA: &str = "storage::write_atomic::data";
/// Failpoint: the rename step of an atomic write.
pub const FP_WRITE_RENAME: &str = "storage::write_atomic::rename";
/// Failpoint: the read syscall of any storage load. Firing models EIO.
pub const FP_READ_IO: &str = "storage::read::io";
/// Failpoint: bytes just read from disk. Mangling models at-rest
/// corruption — the damaged bytes flow on to the checksumming decoder.
pub const FP_READ_DATA: &str = "storage::read::data";

/// Errors raised while reading or writing index files.
#[derive(Debug)]
pub enum FormatError {
    Io(std::io::Error),
    /// Wrong magic bytes or version.
    BadMagic,
    /// Payload shorter/longer than the header claims.
    Truncated,
    /// CRC mismatch: the file is corrupt.
    Checksum {
        expected: u32,
        got: u32,
    },
    /// Structurally invalid content (e.g. layer partition broken).
    Invalid(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "io error: {e}"),
            FormatError::BadMagic => write!(f, "not a drtopk file (bad magic/version)"),
            FormatError::Truncated => write!(f, "file truncated"),
            FormatError::Checksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:08x}, got {got:08x}"
                )
            }
            FormatError::Invalid(msg) => write!(f, "invalid content: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

impl From<drtopk_failpoints::Injected> for FormatError {
    fn from(e: drtopk_failpoints::Injected) -> Self {
        FormatError::Io(std::io::Error::other(e))
    }
}

impl From<FormatError> for drtopk_common::Error {
    fn from(e: FormatError) -> Self {
        use drtopk_common::Error;
        match e {
            FormatError::Io(io) => Error::Io(io.to_string()),
            FormatError::Invalid(msg) => Error::Invalid(msg),
            // BadMagic / Truncated / Checksum all mean the bytes on disk
            // cannot be trusted; their Display carries the specifics.
            other => Error::Corrupt(other.to_string()),
        }
    }
}

/// CRC-32 (IEEE 802.3); the lookup table is built once per process.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        const POLY: u32 = 0xEDB8_8320;
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

fn put_f64s(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_f64_le(x);
    }
}

fn put_u32s(buf: &mut BytesMut, v: &[u32]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_u32_le(x);
    }
}

fn put_u64s(buf: &mut BytesMut, v: &[u64]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_u64_le(x);
    }
}

fn get_len(buf: &mut Bytes, elem: usize) -> Result<usize, FormatError> {
    if buf.remaining() < 8 {
        return Err(FormatError::Truncated);
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() < len.checked_mul(elem).ok_or(FormatError::Truncated)? {
        return Err(FormatError::Truncated);
    }
    Ok(len)
}

fn get_f64s(buf: &mut Bytes) -> Result<Vec<f64>, FormatError> {
    let len = get_len(buf, 8)?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        let x = buf.get_f64_le();
        if x.is_nan() {
            return Err(FormatError::Invalid("NaN payload value".into()));
        }
        v.push(x);
    }
    Ok(v)
}

fn get_u32s(buf: &mut Bytes) -> Result<Vec<u32>, FormatError> {
    let len = get_len(buf, 4)?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(buf.get_u32_le());
    }
    Ok(v)
}

fn get_u64s(buf: &mut Bytes) -> Result<Vec<u64>, FormatError> {
    let len = get_len(buf, 8)?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(buf.get_u64_le());
    }
    Ok(v)
}

fn frame(magic: &[u8; 8], payload: BytesMut) -> BytesMut {
    let mut out = BytesMut::with_capacity(payload.len() + 20);
    out.put_slice(magic);
    out.put_u64_le(payload.len() as u64);
    let crc = crc32(&payload);
    out.put_slice(&payload);
    out.put_u32_le(crc);
    out
}

fn unframe(magic: &[u8; 8], data: &[u8]) -> Result<Bytes, FormatError> {
    if data.len() < 20 {
        return Err(FormatError::Truncated);
    }
    if &data[..8] != magic {
        return Err(FormatError::BadMagic);
    }
    let len = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
    // checked_add guards a forged length header near usize::MAX from
    // wrapping (release) or panicking (debug) in the comparison below.
    let framed = len.checked_add(20).ok_or(FormatError::Truncated)?;
    if data.len() != framed {
        return Err(FormatError::Truncated);
    }
    let payload = &data[16..16 + len];
    let expected = u32::from_le_bytes(data[16 + len..].try_into().unwrap());
    let got = crc32(payload);
    if expected != got {
        return Err(FormatError::Checksum { expected, got });
    }
    Ok(Bytes::copy_from_slice(payload))
}

/// Serializes a relation to bytes.
pub fn relation_to_bytes(rel: &Relation) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u64_le(rel.dims() as u64);
    put_f64s(&mut payload, rel.flat());
    frame(MAGIC_RELATION, payload).to_vec()
}

/// Deserializes a relation from bytes.
pub fn relation_from_bytes(data: &[u8]) -> Result<Relation, FormatError> {
    let mut buf = unframe(MAGIC_RELATION, data)?;
    if buf.remaining() < 8 {
        return Err(FormatError::Truncated);
    }
    let dims = buf.get_u64_le() as usize;
    if dims == 0 {
        return Err(FormatError::Invalid("zero dimensionality".into()));
    }
    let flat = get_f64s(&mut buf)?;
    if flat.len() % dims != 0 {
        return Err(FormatError::Invalid(
            "payload not a multiple of dims".into(),
        ));
    }
    // Checked constructor: a file that passes CRC can still carry
    // out-of-range or non-finite coordinates (e.g. written by another
    // tool); reject those instead of handing them to the traversal.
    Relation::from_flat(dims, flat).map_err(|e| FormatError::Invalid(e.to_string()))
}

/// Serializes an index snapshot to bytes.
pub fn index_to_bytes(snap: &IndexSnapshot) -> Vec<u8> {
    let mut p = BytesMut::new();
    encode_index_payload(snap, &mut p);
    frame(MAGIC_INDEX, p).to_vec()
}

fn encode_index_payload(snap: &IndexSnapshot, p: &mut BytesMut) {
    p.put_u64_le(snap.dims as u64);
    p.put_u8(u8::from(snap.split_fine));
    p.put_u64_le(snap.max_fine_layers as u64);
    put_f64s(p, &snap.data);
    // Fine layers.
    p.put_u64_le(snap.fine_layers.len() as u64);
    for (ci, fi, members) in &snap.fine_layers {
        p.put_u32_le(*ci);
        p.put_u32_le(*fi);
        put_u32s(p, members);
    }
    // Edges.
    for edges in [&snap.forall_edges, &snap.exists_edges] {
        p.put_u64_le(edges.len() as u64);
        for &(s, t) in edges.iter() {
            p.put_u32_le(s);
            p.put_u32_le(t);
        }
    }
    put_f64s(p, &snap.pseudo);
    p.put_u64_le(snap.pseudo_fine.len() as u64);
    for group in &snap.pseudo_fine {
        put_u32s(p, group);
    }
    match &snap.zero2d_chain {
        Some(chain) => {
            p.put_u8(1);
            put_u32s(p, chain);
            put_f64s(p, &snap.zero2d_breakpoints);
        }
        None => p.put_u8(0),
    }
    put_u32s(p, &snap.node_perm);
}

/// Deserializes an index snapshot from bytes.
pub fn index_from_bytes(data: &[u8]) -> Result<IndexSnapshot, FormatError> {
    let mut b = unframe(MAGIC_INDEX, data)?;
    let snap = decode_index_payload(&mut b)?;
    if b.has_remaining() {
        return Err(FormatError::Invalid("trailing bytes".into()));
    }
    Ok(snap)
}

fn decode_index_payload(b: &mut Bytes) -> Result<IndexSnapshot, FormatError> {
    if b.remaining() < 17 {
        return Err(FormatError::Truncated);
    }
    let dims = b.get_u64_le() as usize;
    let split_fine = b.get_u8() != 0;
    let max_fine_layers = b.get_u64_le() as usize;
    let payload = get_f64s(b)?;
    let n_fine = get_len(b, 8)?;
    let mut fine_layers = Vec::with_capacity(n_fine);
    for _ in 0..n_fine {
        if b.remaining() < 8 {
            return Err(FormatError::Truncated);
        }
        let ci = b.get_u32_le();
        let fi = b.get_u32_le();
        let members = get_u32s(b)?;
        fine_layers.push((ci, fi, members));
    }
    let read_edges = |b: &mut Bytes| -> Result<Vec<(u32, u32)>, FormatError> {
        let len = get_len(b, 8)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push((b.get_u32_le(), b.get_u32_le()));
        }
        Ok(v)
    };
    let forall_edges = read_edges(b)?;
    let exists_edges = read_edges(b)?;
    let pseudo = get_f64s(b)?;
    let n_groups = get_len(b, 8)?;
    let mut pseudo_fine = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        pseudo_fine.push(get_u32s(b)?);
    }
    if b.remaining() < 1 {
        return Err(FormatError::Truncated);
    }
    let (zero2d_chain, zero2d_breakpoints) = if b.get_u8() != 0 {
        (Some(get_u32s(b)?), get_f64s(b)?)
    } else {
        (None, Vec::new())
    };
    let node_perm = get_u32s(b)?;
    Ok(IndexSnapshot {
        dims,
        data: payload,
        fine_layers,
        forall_edges,
        exists_edges,
        pseudo,
        pseudo_fine,
        zero2d_chain,
        zero2d_breakpoints,
        split_fine,
        max_fine_layers,
        node_perm,
    })
}

/// Serializes a dynamic-index state (plus its WAL generation) to bytes.
pub fn dynamic_state_to_bytes(state: &DynamicState, generation: u64) -> Vec<u8> {
    let mut p = BytesMut::new();
    p.put_u64_le(generation);
    encode_index_payload(&state.index, &mut p);
    put_u64s(&mut p, &state.indexed_handles);
    p.put_u64_le(state.buffer.len() as u64);
    for (h, row) in &state.buffer {
        p.put_u64_le(*h);
        put_f64s(&mut p, row);
    }
    put_u64s(&mut p, &state.tombstones);
    p.put_u64_le(state.next_handle);
    frame(MAGIC_DYNAMIC, p).to_vec()
}

/// Deserializes a dynamic-index state and its WAL generation from bytes.
///
/// Byte-level checks only (framing, CRC, section lengths); the semantic
/// invariants are enforced by `DynamicIndex::from_state` on load.
pub fn dynamic_state_from_bytes(data: &[u8]) -> Result<(DynamicState, u64), FormatError> {
    let mut b = unframe(MAGIC_DYNAMIC, data)?;
    if b.remaining() < 8 {
        return Err(FormatError::Truncated);
    }
    let generation = b.get_u64_le();
    let index = decode_index_payload(&mut b)?;
    let indexed_handles = get_u64s(&mut b)?;
    let n_buf = get_len(&mut b, 8)?;
    let mut buffer = Vec::with_capacity(n_buf);
    for _ in 0..n_buf {
        if b.remaining() < 8 {
            return Err(FormatError::Truncated);
        }
        let h = b.get_u64_le();
        buffer.push((h, get_f64s(&mut b)?));
    }
    let tombstones = get_u64s(&mut b)?;
    if b.remaining() != 8 {
        return Err(FormatError::Truncated);
    }
    let next_handle = b.get_u64_le();
    Ok((
        DynamicState {
            index,
            indexed_handles,
            buffer,
            tombstones,
            next_handle,
        },
        generation,
    ))
}

/// Writes a relation to `path` atomically (temp file + rename).
pub fn save_relation(rel: &Relation, path: &Path) -> Result<(), FormatError> {
    write_atomic(path, relation_to_bytes(rel))
}

/// Reads a relation from `path`.
pub fn load_relation(path: &Path) -> Result<Relation, FormatError> {
    relation_from_bytes(&read_file(path)?)
}

/// Writes a built index to `path` atomically.
pub fn save_index(idx: &DualLayerIndex, path: &Path) -> Result<(), FormatError> {
    write_atomic(path, index_to_bytes(&idx.to_snapshot()))
}

/// Reads and reconstructs an index from `path`, validating structure.
pub fn load_index(path: &Path) -> Result<DualLayerIndex, FormatError> {
    let snap = index_from_bytes(&read_file(path)?)?;
    DualLayerIndex::from_snapshot(&snap).map_err(|e| FormatError::Invalid(e.to_string()))
}

/// Writes a dynamic-index state to `path` atomically.
pub fn save_dynamic_state(
    state: &DynamicState,
    generation: u64,
    path: &Path,
) -> Result<(), FormatError> {
    write_atomic(path, dynamic_state_to_bytes(state, generation))
}

/// Reads a dynamic-index state (and its WAL generation) from `path`.
pub fn load_dynamic_state(path: &Path) -> Result<(DynamicState, u64), FormatError> {
    dynamic_state_from_bytes(&read_file(path)?)
}

/// Reads a whole file, passing through the read-side failpoints so chaos
/// tests can model I/O errors and at-rest corruption.
pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, FormatError> {
    drtopk_failpoints::hit(FP_READ_IO)?;
    let mut data = fs::read(path)?;
    // A fired read-side mangle models at-rest corruption: the damaged
    // bytes flow on to the checksumming decoder rather than erroring here.
    let _ = drtopk_failpoints::mangle(FP_READ_DATA, &mut data);
    Ok(data)
}

/// Writes `data` to `path` atomically: temp file, fsync, rename. Readers
/// either see the old content or the complete new content, never a mix.
pub(crate) fn write_atomic(path: &Path, mut data: Vec<u8>) -> Result<(), FormatError> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    // A fired mangle models a crash mid-write: the torn bytes land in the
    // temp file and the rename below never runs, leaving `path` untouched.
    let fault = drtopk_failpoints::mangle(FP_WRITE_DATA, &mut data);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&data)?;
        f.sync_all()?;
    }
    fault?;
    drtopk_failpoints::hit(FP_WRITE_RENAME)?;
    fs::rename(&tmp, path)?;
    // Make the rename itself durable; best-effort on filesystems that
    // refuse to fsync directories.
    if let Some(parent) = path.parent() {
        if let Ok(d) = fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, Weights, WorkloadSpec};
    use drtopk_core::DlOptions;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn relation_roundtrip() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 200, 9).generate();
        let bytes = relation_to_bytes(&rel);
        let back = relation_from_bytes(&bytes).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn relation_decode_rejects_out_of_range_values() {
        // A well-framed file (valid CRC) whose payload carries coordinates
        // the engine's invariants forbid must fail to decode.
        for bad in [-0.5, 1.5, f64::NAN, f64::INFINITY] {
            let rel = Relation::from_flat_unchecked(2, vec![0.2, 0.8, bad, 0.5]);
            let bytes = relation_to_bytes(&rel);
            assert!(
                matches!(relation_from_bytes(&bytes), Err(FormatError::Invalid(_))),
                "value {bad} must be rejected"
            );
        }
    }

    #[test]
    fn index_roundtrip_bytes() {
        for d in [2, 3] {
            let rel = WorkloadSpec::new(Distribution::Independent, d, 150, 4).generate();
            for opts in [DlOptions::dl(), DlOptions::dl_plus()] {
                let idx = DualLayerIndex::build(&rel, opts);
                let snap = idx.to_snapshot();
                let bytes = index_to_bytes(&snap);
                let back = index_from_bytes(&bytes).unwrap();
                assert_eq!(back, snap);
                let rebuilt = DualLayerIndex::from_snapshot(&back).unwrap();
                let w = Weights::uniform(d);
                assert_eq!(rebuilt.topk(&w, 10).ids, idx.topk(&w, 10).ids);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("drtopk_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 120, 6).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());

        let rpath = dir.join("rel.drt");
        save_relation(&rel, &rpath).unwrap();
        assert_eq!(load_relation(&rpath).unwrap(), rel);

        let ipath = dir.join("index.drt");
        save_index(&idx, &ipath).unwrap();
        let back = load_index(&ipath).unwrap();
        let w = Weights::uniform(3);
        assert_eq!(back.topk(&w, 15).ids, idx.topk(&w, 15).ids);
        assert_eq!(back.topk(&w, 15).cost, idx.topk(&w, 15).cost);
    }

    #[test]
    fn detects_corruption() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 50, 2).generate();
        let mut bytes = relation_to_bytes(&rel);
        // Flip a payload bit.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            relation_from_bytes(&bytes),
            Err(FormatError::Checksum { .. })
        ));
        // Truncate.
        let bytes2 = relation_to_bytes(&rel);
        assert!(matches!(
            relation_from_bytes(&bytes2[..bytes2.len() - 3]),
            Err(FormatError::Truncated)
        ));
        // Wrong magic.
        let mut bytes3 = relation_to_bytes(&rel);
        bytes3[0] = b'X';
        assert!(matches!(
            relation_from_bytes(&bytes3),
            Err(FormatError::BadMagic)
        ));
    }

    #[test]
    fn rejects_semantic_garbage() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 40, 3).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let mut snap = idx.to_snapshot();
        snap.forall_edges.push((40_000, 2));
        let bytes = index_to_bytes(&snap);
        // Byte-level decode succeeds; reconstruction must reject it.
        let decoded = index_from_bytes(&bytes).unwrap();
        assert!(DualLayerIndex::from_snapshot(&decoded).is_err());
    }
}
