//! Disk-block I/O cost model.
//!
//! The paper keeps all indexes in main memory but notes they "can be
//! modified into disk-based algorithms, where tuples in the same layer are
//! stored in the same disk block to reduce I/O cost" (Section VI-A,
//! following DG \[5\]). This module makes that concrete: a [`BlockLayout`]
//! assigns every tuple to a fixed-size block — either clustered by
//! (coarse, fine) layer order or in raw insertion order — and counts how
//! many distinct blocks a query's access set touches.

use drtopk_common::{TupleId, Weights};
use drtopk_core::DualLayerIndex;

/// How tuples are placed into blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Tuples laid out following the index's layer order (the paper's
    /// recommendation): queries touch few, dense blocks.
    LayerClustered,
    /// Tuples laid out by insertion order (the naive heap file).
    InsertionOrder,
}

/// A tuple → block assignment with a fixed number of tuples per block.
#[derive(Debug, Clone)]
pub struct BlockLayout {
    block_of: Vec<u32>,
    blocks: usize,
    block_size: usize,
}

impl BlockLayout {
    /// Builds a layout for the index's relation.
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn new(idx: &DualLayerIndex, placement: Placement, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let n = idx.len();
        let mut block_of = vec![0u32; n];
        match placement {
            Placement::InsertionOrder => {
                for (t, b) in block_of.iter_mut().enumerate() {
                    *b = (t / block_size) as u32;
                }
            }
            Placement::LayerClustered => {
                let mut slot = 0usize;
                for layer in idx.coarse_layers() {
                    for fine in &layer.fine {
                        for &t in fine {
                            block_of[t as usize] = (slot / block_size) as u32;
                            slot += 1;
                        }
                    }
                }
                debug_assert_eq!(slot, n);
            }
        }
        let blocks = n.div_ceil(block_size);
        BlockLayout {
            block_of,
            blocks,
            block_size,
        }
    }

    /// Block id of a tuple.
    #[inline]
    pub fn block_of(&self, t: TupleId) -> u32 {
        self.block_of[t as usize]
    }

    /// Total number of blocks.
    #[inline]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Tuples per block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of distinct blocks an access set touches — the I/O cost of
    /// a query under this layout.
    pub fn blocks_touched(&self, accesses: &[TupleId]) -> usize {
        let mut touched = vec![false; self.blocks];
        let mut count = 0;
        for &t in accesses {
            let b = self.block_of[t as usize] as usize;
            if !touched[b] {
                touched[b] = true;
                count += 1;
            }
        }
        count
    }
}

/// The set of *real* tuples a query evaluates (pseudo-tuples live in the
/// in-memory directory, not in data blocks), derived from a traced run.
/// The result is sorted and deduplicated; its length equals the query's
/// `cost.evaluated`.
pub fn query_accesses(idx: &DualLayerIndex, w: &Weights, k: usize) -> Vec<TupleId> {
    let n = idx.len() as u32;
    let (_, trace) = idx.topk_traced(w, k);
    let mut acc: Vec<TupleId> = Vec::new();
    acc.extend(trace.seeds.iter().copied().filter(|&t| t < n));
    for step in &trace.steps {
        if step.popped < n {
            acc.push(step.popped);
        }
        acc.extend(step.queue_after.iter().copied().filter(|&t| t < n));
    }
    acc.sort_unstable();
    acc.dedup();
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, WorkloadSpec};
    use drtopk_core::DlOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accesses_match_cost_metric() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 500, 8).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let w = Weights::random(3, &mut rng);
            let res = idx.topk(&w, 10);
            let acc = query_accesses(&idx, &w, 10);
            assert_eq!(acc.len() as u64, res.cost.evaluated);
            assert!(
                res.ids.iter().all(|t| acc.contains(t)),
                "answers are accesses"
            );
        }
    }

    #[test]
    fn layer_clustering_reduces_block_reads() {
        // Shuffle insertion order so it is uncorrelated with layers, then
        // layer-clustered placement must touch far fewer blocks.
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 2000, 11).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let clustered = BlockLayout::new(&idx, Placement::LayerClustered, 32);
        let heap_file = BlockLayout::new(&idx, Placement::InsertionOrder, 32);
        let mut rng = StdRng::seed_from_u64(17);
        let (mut io_clustered, mut io_heap) = (0usize, 0usize);
        for _ in 0..10 {
            let w = Weights::random(4, &mut rng);
            let acc = query_accesses(&idx, &w, 10);
            io_clustered += clustered.blocks_touched(&acc);
            io_heap += heap_file.blocks_touched(&acc);
        }
        assert!(
            io_clustered < io_heap,
            "layer clustering must reduce I/O: {io_clustered} vs {io_heap}"
        );
    }

    #[test]
    fn layout_covers_all_tuples_once() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 333, 5).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        for placement in [Placement::LayerClustered, Placement::InsertionOrder] {
            let layout = BlockLayout::new(&idx, placement, 10);
            assert_eq!(layout.blocks(), 34);
            // Every block holds at most block_size tuples.
            let mut counts = vec![0usize; layout.blocks()];
            for t in 0..333u32 {
                counts[layout.block_of(t) as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c <= 10));
            assert_eq!(counts.iter().sum::<usize>(), 333);
        }
    }

    #[test]
    fn full_scan_touches_all_blocks() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 100, 1).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let layout = BlockLayout::new(&idx, Placement::LayerClustered, 7);
        let all: Vec<TupleId> = (0..100).collect();
        assert_eq!(layout.blocks_touched(&all), layout.blocks());
        assert_eq!(layout.blocks_touched(&[]), 0);
    }
}
