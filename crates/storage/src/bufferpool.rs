//! LRU buffer-pool simulation over a block layout.
//!
//! Complements [`crate::blocks`]: where `blocks_touched` prices a single
//! query in cold reads, a [`BufferPool`] models a query *stream* sharing a
//! fixed-size page cache — the regime an actual disk-resident deployment
//! runs in. Layer-clustered placement concentrates the hot working set
//! (first layers) into few pages, so it both reduces cold misses and makes
//! the cache dramatically more effective across queries.

use crate::blocks::BlockLayout;
use drtopk_common::TupleId;
use std::collections::HashMap;

/// Aggregate I/O statistics of a simulated workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Block requests that were served from the pool.
    pub hits: u64,
    /// Block requests that had to read from storage.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl IoStats {
    /// Fraction of requests served from memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU page cache over block ids.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    /// block id -> last-use tick.
    resident: HashMap<u32, u64>,
    tick: u64,
    stats: IoStats,
}

impl BufferPool {
    /// Creates a pool holding up to `capacity` blocks.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs capacity");
        BufferPool {
            capacity,
            resident: HashMap::new(),
            tick: 0,
            stats: IoStats::default(),
        }
    }

    /// Requests one block; updates recency and stats.
    pub fn touch(&mut self, block: u32) {
        self.tick += 1;
        if self.resident.contains_key(&block) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            if self.resident.len() == self.capacity {
                // Evict the least-recently-used page (linear scan: the
                // simulation favors clarity; capacities here are small).
                let (&lru, _) = self
                    .resident
                    .iter()
                    .min_by_key(|(_, &t)| t)
                    .expect("pool is non-empty at capacity");
                self.resident.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.resident.insert(block, self.tick);
    }

    /// Plays one query's access set through the pool (within a query,
    /// repeated tuples on one block count once — the engine pins the page).
    pub fn run_query(&mut self, layout: &BlockLayout, accesses: &[TupleId]) {
        let mut blocks: Vec<u32> = accesses.iter().map(|&t| layout.block_of(t)).collect();
        blocks.sort_unstable();
        blocks.dedup();
        for b in blocks {
            self.touch(b);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{query_accesses, Placement};
    use drtopk_common::{Distribution, Weights, WorkloadSpec};
    use drtopk_core::{DlOptions, DualLayerIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lru_evicts_oldest() {
        let mut pool = BufferPool::new(2);
        pool.touch(1);
        pool.touch(2);
        pool.touch(1); // 1 is now more recent than 2
        pool.touch(3); // evicts 2
        pool.touch(1);
        assert_eq!(pool.stats().hits, 2, "1 hit twice");
        assert_eq!(pool.stats().misses, 3);
        assert_eq!(pool.stats().evictions, 1);
        pool.touch(2); // miss again (was evicted)
        assert_eq!(pool.stats().misses, 4);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut pool = BufferPool::new(4);
        assert_eq!(pool.stats().hit_rate(), 0.0);
        pool.touch(1);
        pool.touch(1);
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(pool.resident_blocks(), 1);
    }

    #[test]
    fn clustered_layout_has_higher_hit_rate() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 3000, 5).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let clustered = BlockLayout::new(&idx, Placement::LayerClustered, 32);
        let heap_file = BlockLayout::new(&idx, Placement::InsertionOrder, 32);
        let mut pool_c = BufferPool::new(16);
        let mut pool_h = BufferPool::new(16);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let w = Weights::random(4, &mut rng);
            let acc = query_accesses(&idx, &w, 10);
            pool_c.run_query(&clustered, &acc);
            pool_h.run_query(&heap_file, &acc);
        }
        let (hc, hh) = (pool_c.stats().hit_rate(), pool_h.stats().hit_rate());
        assert!(
            hc > hh,
            "layer clustering must cache better: {hc:.3} vs {hh:.3}"
        );
        assert!(
            pool_c.stats().misses < pool_h.stats().misses,
            "and cause fewer physical reads"
        );
    }

    #[test]
    fn bigger_pool_never_reads_more() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 2000, 8).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let layout = BlockLayout::new(&idx, Placement::LayerClustered, 16);
        let mut rng = StdRng::seed_from_u64(4);
        let queries: Vec<Vec<TupleId>> = (0..20)
            .map(|_| query_accesses(&idx, &Weights::random(3, &mut rng), 10))
            .collect();
        let mut misses = Vec::new();
        for cap in [2usize, 8, 32, 128] {
            let mut pool = BufferPool::new(cap);
            for q in &queries {
                pool.run_query(&layout, q);
            }
            misses.push(pool.stats().misses);
        }
        assert!(
            misses.windows(2).all(|w| w[1] <= w[0]),
            "misses must be non-increasing in capacity: {misses:?}"
        );
    }
}
