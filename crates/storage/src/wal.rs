//! Write-ahead log for dynamic-index mutations.
//!
//! One log file per snapshot generation. Layout (integers little-endian):
//!
//! ```text
//! header   16 bytes  "DRTOPKW\x01" magic + generation u64
//! record   ...       len u32 | crc32 u32 | payload (repeated)
//! ```
//!
//! Each record is independently checksummed, so a crash mid-append leaves
//! a *torn tail* that the reader detects and stops at: replay recovers the
//! longest valid prefix, never an interior subset. Payloads are tagged
//! operations — insert (handle + row) or delete (handle).

use crate::format::{crc32, FormatError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use drtopk_core::Handle;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

const WAL_MAGIC: &[u8; 8] = b"DRTOPKW\x01";
const HEADER_LEN: u64 = 16;

/// Upper bound on a single record's payload. A torn length field can
/// claim anything; capping it keeps the reader from trusting garbage.
pub const MAX_WAL_RECORD: usize = 1 << 20;

/// Failpoint: WAL file creation (header write). Firing models a crash
/// before the new log exists.
pub const FP_WAL_CREATE: &str = "wal::create";
/// Failpoint: an append, before any byte is written. Firing models an I/O
/// error with nothing on disk.
pub const FP_WAL_APPEND: &str = "wal::append";
/// Failpoint: the encoded record bytes of an append. Mangling models a
/// crash mid-append — the torn bytes land on disk and the append errors.
pub const FP_WAL_APPEND_DATA: &str = "wal::append::data";
/// Failpoint: the fsync after an append. Firing models a sync failure
/// after the bytes (durably or not) left the process.
pub const FP_WAL_SYNC: &str = "wal::sync";

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An insert, with the handle the store assigned to it.
    Insert {
        /// The assigned handle.
        handle: Handle,
        /// The tuple's attribute values.
        row: Vec<f64>,
    },
    /// A delete of a live handle.
    Delete {
        /// The deleted handle.
        handle: Handle,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut p = BytesMut::new();
    match rec {
        WalRecord::Insert { handle, row } => {
            p.put_u8(TAG_INSERT);
            p.put_u64_le(*handle);
            p.put_u64_le(row.len() as u64);
            for &x in row {
                p.put_f64_le(x);
            }
        }
        WalRecord::Delete { handle } => {
            p.put_u8(TAG_DELETE);
            p.put_u64_le(*handle);
        }
    }
    p.to_vec()
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut b = Bytes::copy_from_slice(payload);
    if b.remaining() < 9 {
        return None;
    }
    let tag = b.get_u8();
    let handle = b.get_u64_le();
    match tag {
        TAG_INSERT => {
            if b.remaining() < 8 {
                return None;
            }
            let len = b.get_u64_le() as usize;
            if b.remaining() != len.checked_mul(8)? {
                return None;
            }
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                row.push(b.get_f64_le());
            }
            Some(WalRecord::Insert { handle, row })
        }
        TAG_DELETE => {
            if b.has_remaining() {
                return None;
            }
            Some(WalRecord::Delete { handle })
        }
        _ => None,
    }
}

/// Appends checksummed records to a generation's log file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    generation: u64,
}

impl WalWriter {
    /// Creates (truncating) the log for `generation` and writes its header.
    pub fn create(path: &Path, generation: u64) -> Result<WalWriter, FormatError> {
        drtopk_failpoints::hit(FP_WAL_CREATE)?;
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&generation.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(WalWriter { file, generation })
    }

    /// Reopens an existing log for appending, first truncating it to
    /// `valid_bytes` — the byte offset [`read_wal`] reported after the
    /// last valid record — so a torn tail is physically discarded.
    pub fn open_append(
        path: &Path,
        generation: u64,
        valid_bytes: u64,
    ) -> Result<WalWriter, FormatError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if file.metadata()?.len() < HEADER_LEN {
            // Torn header (crash during create): set_len would zero-pad the
            // partial bytes into a bogus header, so rewrite it whole.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(WAL_MAGIC);
            header.extend_from_slice(&generation.to_le_bytes());
            file.write_all(&header)?;
        } else {
            file.set_len(valid_bytes.max(HEADER_LEN))?;
        }
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter { file, generation })
    }

    /// The generation this log belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends one record (no fsync; see [`WalWriter::sync`]).
    ///
    /// On error the file may hold a torn partial record at its tail —
    /// exactly the state a crash mid-append leaves — which [`read_wal`]
    /// detects and [`WalWriter::open_append`] truncates.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), FormatError> {
        drtopk_failpoints::hit(FP_WAL_APPEND)?;
        let payload = encode_payload(rec);
        debug_assert!(payload.len() <= MAX_WAL_RECORD);
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        // A fired mangle tears the record *and* reports failure, like a
        // crash mid-write: the damaged bytes still land on disk.
        let fault = drtopk_failpoints::mangle(FP_WAL_APPEND_DATA, &mut framed);
        self.file.write_all(&framed)?;
        fault?;
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), FormatError> {
        drtopk_failpoints::hit(FP_WAL_SYNC)?;
        self.file.sync_all()?;
        Ok(())
    }
}

/// The result of scanning a log file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Decoded records, in append order (the longest valid prefix).
    pub records: Vec<WalRecord>,
    /// Whether trailing bytes after the last valid record were discarded
    /// (a torn append, or at-rest corruption from that point on).
    pub torn: bool,
    /// Byte offset just past the last valid record — pass to
    /// [`WalWriter::open_append`] to drop the torn tail.
    pub valid_bytes: u64,
}

/// Reads a generation's log, stopping at the first invalid record.
///
/// A file shorter than its header is reported as empty-and-torn (a crash
/// during creation): recoverable when it is the newest log, since records
/// are only ever acknowledged after a complete header exists. A present
/// header with the wrong magic or generation is an error — that log can
/// not be trusted at all.
pub fn read_wal(path: &Path, expected_generation: u64) -> Result<WalReplay, FormatError> {
    let data = crate::format::read_file(path)?;
    if data.len() < HEADER_LEN as usize {
        return Ok(WalReplay {
            records: Vec::new(),
            torn: true,
            valid_bytes: HEADER_LEN,
        });
    }
    if &data[..8] != WAL_MAGIC {
        return Err(FormatError::BadMagic);
    }
    let generation = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if generation != expected_generation {
        return Err(FormatError::Invalid(format!(
            "wal header generation {generation} does not match file name generation \
             {expected_generation}"
        )));
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn = false;
    while pos < data.len() {
        let rest = &data[pos..];
        if rest.len() < 8 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_WAL_RECORD || rest.len() - 8 < len {
            torn = true;
            break;
        }
        let expected_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let payload = &rest[8..8 + len];
        if crc32(payload) != expected_crc {
            torn = true;
            break;
        }
        let Some(rec) = decode_payload(payload) else {
            torn = true;
            break;
        };
        records.push(rec);
        pos += 8 + len;
    }
    Ok(WalReplay {
        records,
        torn,
        valid_bytes: pos as u64,
    })
}

/// Removes a log file; missing files are not an error (pruning is
/// idempotent).
pub fn remove_wal(path: &Path) -> Result<(), FormatError> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("drtopk_wal_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                handle: 7,
                row: vec![0.25, 0.5, 0.75],
            },
            WalRecord::Delete { handle: 3 },
            WalRecord::Insert {
                handle: 8,
                row: vec![0.1, 0.9, 0.4],
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_records() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 5).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync().unwrap();
        let replay = read_wal(&path, 5).unwrap();
        assert_eq!(replay.records, sample_records());
        assert!(!replay.torn);
        assert_eq!(replay.valid_bytes, fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_at_every_byte_replays_longest_valid_prefix() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync().unwrap();
        let full = fs::read(&path).unwrap();

        // Record boundaries: offsets where a truncation is *clean*.
        let mut boundaries = vec![HEADER_LEN as usize];
        let mut pos = HEADER_LEN as usize;
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
            boundaries.push(pos);
        }

        for cut in 0..full.len() {
            let torn_path = dir.join(format!("torn_{cut}.log"));
            fs::write(&torn_path, &full[..cut]).unwrap();
            if cut < HEADER_LEN as usize {
                let r = read_wal(&torn_path, 1).unwrap();
                assert!(r.torn);
                assert!(r.records.is_empty(), "cut {cut}: header torn, no records");
                continue;
            }
            let replay = read_wal(&torn_path, 1).unwrap();
            // How many full records survive the cut?
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                replay.records,
                &sample_records()[..complete],
                "cut at byte {cut}"
            );
            let clean = boundaries.contains(&cut);
            assert_eq!(replay.torn, !clean, "cut at byte {cut}");
            // Reopening truncates the torn tail and appends cleanly after.
            let mut w2 = WalWriter::open_append(&torn_path, 1, replay.valid_bytes).unwrap();
            w2.append(&WalRecord::Delete { handle: 99 }).unwrap();
            w2.sync().unwrap();
            let again = read_wal(&torn_path, 1).unwrap();
            assert!(!again.torn);
            assert_eq!(again.records.len(), complete + 1);
            assert_eq!(again.records[complete], WalRecord::Delete { handle: 99 });
        }
    }

    #[test]
    fn bit_flips_stop_replay_without_panicking() {
        let dir = tmpdir("flip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 2).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync().unwrap();
        let full = fs::read(&path).unwrap();
        for pos in HEADER_LEN as usize..full.len() {
            let mut bytes = full.clone();
            bytes[pos] ^= 0x04;
            let flip_path = dir.join("flip.log");
            fs::write(&flip_path, &bytes).unwrap();
            let replay = read_wal(&flip_path, 2).unwrap();
            assert!(
                replay.records.len() < sample_records().len(),
                "flip at {pos} must drop at least the damaged record"
            );
            // Whatever survives must be a true prefix.
            assert_eq!(replay.records, &sample_records()[..replay.records.len()]);
        }
        // Header flips are fatal, not torn.
        for pos in 0..HEADER_LEN as usize {
            let mut bytes = full.clone();
            bytes[pos] ^= 0x04;
            let flip_path = dir.join("hflip.log");
            fs::write(&flip_path, &bytes).unwrap();
            assert!(read_wal(&flip_path, 2).is_err(), "header flip at {pos}");
        }
    }

    #[test]
    fn wrong_generation_is_rejected() {
        let dir = tmpdir("gen");
        let path = dir.join("wal.log");
        WalWriter::create(&path, 4).unwrap();
        assert!(read_wal(&path, 4).is_ok());
        assert!(matches!(read_wal(&path, 5), Err(FormatError::Invalid(_))));
    }

    #[test]
    fn forged_length_fields_are_bounded() {
        let dir = tmpdir("forged");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append(&WalRecord::Delete { handle: 1 }).unwrap();
        w.sync().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let rec_at = HEADER_LEN as usize;
        // Oversized length: must stop, not allocate or scan past the end.
        bytes[rec_at..rec_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let replay = read_wal(&path, 0).unwrap();
        assert!(replay.torn && replay.records.is_empty());
        // Zero length: likewise.
        bytes[rec_at..rec_at + 4].copy_from_slice(&0u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let replay = read_wal(&path, 0).unwrap();
        assert!(replay.torn && replay.records.is_empty());
    }
}
