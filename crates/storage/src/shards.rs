//! On-disk layout of a sharded durable deployment.
//!
//! A sharded deployment is a root directory holding one subdirectory per
//! shard, each a fully independent [`DurableDynamicIndex`] store (its own
//! WAL + snapshot generations):
//!
//! ```text
//! root/
//!   shard.0000/   snapshot.*.drt, wal.*.log   (tuples with h % P == 0)
//!   shard.0001/   ...                         (tuples with h % P == 1)
//!   ...
//! ```
//!
//! Independence is the point: a crash, torn WAL, or at-rest corruption in
//! one shard's directory quarantines to that shard — its peers' files are
//! never read, written, or pruned by its recovery. [`open_shards`] opens
//! strictly (first failure aborts); [`open_shards_tolerant`] returns a
//! per-shard `Result` so a serving path can bring the healthy shards up
//! and leave the damaged one Down for `drtopk recover --shard N`.

use crate::durable::{DurableDynamicIndex, DurableOptions, RecoveryReport};
use drtopk_common::{Error, Relation};
use drtopk_core::shard::{partition_relation, MAX_SHARDS};
use std::fs;
use std::path::{Path, PathBuf};

/// Directory name of shard `s` (`shard.0000` … zero-padded so listings
/// sort numerically).
pub fn shard_dir_name(s: usize) -> String {
    format!("shard.{s:04}")
}

/// Path of shard `s` under a deployment root.
pub fn shard_dir(root: &Path, s: usize) -> PathBuf {
    root.join(shard_dir_name(s))
}

/// Lists the shard directories under `root`, ascending by shard id.
/// Errors if the ids are not exactly `0..P` for some `P` (a gap means a
/// shard's directory is missing — losing a partition silently is not an
/// option).
pub fn list_shard_dirs(root: &Path) -> Result<Vec<PathBuf>, Error> {
    let mut ids = Vec::new();
    let entries = fs::read_dir(root).map_err(|e| Error::Io(e.to_string()))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::Io(e.to_string()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id) = name.strip_prefix("shard.") else {
            continue;
        };
        if let Ok(s) = id.parse::<usize>() {
            ids.push(s);
        }
    }
    ids.sort_unstable();
    for (expect, &got) in ids.iter().enumerate() {
        if got != expect {
            return Err(Error::Invalid(format!(
                "shard directories under {} are not contiguous: expected shard {expect}, \
                 found shard {got}",
                root.display()
            )));
        }
    }
    Ok(ids.into_iter().map(|s| shard_dir(root, s)).collect())
}

/// Creates a `P`-way sharded deployment under `root` from an initial
/// relation: partitions by tuple id (shard `s` holds global handles
/// `h % P == s`, see [`partition_relation`]) and creates one durable
/// store per shard. `root` must not already hold shards.
pub fn create_sharded(
    root: &Path,
    rel: &Relation,
    shards: usize,
    options: &DurableOptions,
) -> Result<Vec<DurableDynamicIndex>, Error> {
    if shards == 0 || shards > MAX_SHARDS {
        return Err(Error::Invalid(format!(
            "shard count {shards} outside 1..={MAX_SHARDS}"
        )));
    }
    fs::create_dir_all(root).map_err(|e| Error::Io(e.to_string()))?;
    if !list_shard_dirs(root)?.is_empty() {
        return Err(Error::Invalid(format!(
            "{} already holds a sharded deployment; open it instead",
            root.display()
        )));
    }
    let parts = partition_relation(rel, shards)?;
    let mut stores = Vec::with_capacity(shards);
    for (s, (shard_rel, handles)) in parts.into_iter().enumerate() {
        let dir = shard_dir(root, s);
        stores.push(DurableDynamicIndex::create_with_handles(
            &dir,
            &shard_rel,
            handles,
            options.clone(),
        )?);
    }
    Ok(stores)
}

/// Opens every shard under `root` strictly: the first shard that fails to
/// recover aborts the open. Use [`open_shards_tolerant`] to serve around
/// a damaged shard.
pub fn open_shards(
    root: &Path,
    options: &DurableOptions,
) -> Result<Vec<(DurableDynamicIndex, RecoveryReport)>, Error> {
    open_shards_tolerant(root)?
        .into_iter()
        .enumerate()
        .map(|(s, dir)| {
            DurableDynamicIndex::open(&dir, options.clone())
                .map_err(|e| Error::Io(format!("shard {s}: {e}")))
        })
        .collect()
}

/// Lists the shard directories of a deployment for per-shard (tolerant)
/// opening: the caller opens each with [`DurableDynamicIndex::open`] and
/// decides what a failure means — serving paths typically mark that
/// shard Down and carry on. A missing or gap-ridden deployment is still
/// an error: partial *discovery* (as opposed to partial recovery) would
/// silently drop whole partitions.
pub fn open_shards_tolerant(root: &Path) -> Result<Vec<PathBuf>, Error> {
    let dirs = list_shard_dirs(root)?;
    if dirs.is_empty() {
        return Err(Error::Invalid(format!(
            "no shard directories under {}",
            root.display()
        )));
    }
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, Weights, WorkloadSpec};
    use drtopk_core::shard::{RouterConfig, ShardRouter};
    use drtopk_core::{DlOptions, DynamicIndex, QueryBudget};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drtopk_shards_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> DurableOptions {
        DurableOptions {
            rebuild_fraction: 0.5,
            ..DurableOptions::default()
        }
    }

    #[test]
    fn create_open_roundtrip_matches_unsharded_oracle() {
        let root = tmpdir("roundtrip");
        let d = 3;
        let rel = WorkloadSpec::new(Distribution::Independent, d, 250, 41).generate();
        let stores = create_sharded(&root, &rel, 4, &opts()).unwrap();
        assert_eq!(stores.len(), 4);
        assert_eq!(stores.iter().map(|s| s.len()).sum::<usize>(), rel.len());
        drop(stores);

        let reopened = open_shards(&root, &opts()).unwrap();
        for (_, report) in &reopened {
            assert_eq!(report.replayed, 0);
            assert!(!report.torn_tail);
        }
        let shards: Vec<DynamicIndex> = reopened
            .into_iter()
            .map(|(s, _)| s.index().clone())
            .collect();
        let router = ShardRouter::new(shards, RouterConfig::default()).unwrap();
        let oracle = DynamicIndex::new(&rel, DlOptions::default(), 0.5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let w = Weights::random(d, &mut rng);
            let k = rng.gen_range(1..=30);
            let routed = router.topk(&w, k, &QueryBudget::unlimited());
            assert_eq!(routed.ids, oracle.topk(&w, k).0);
            assert!(routed.coverage.is_full());
        }
    }

    #[test]
    fn one_corrupt_shard_quarantines_to_itself() {
        let root = tmpdir("quarantine");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 90, 7).generate();
        let mut stores = create_sharded(&root, &rel, 3, &opts()).unwrap();
        for (i, store) in stores.iter_mut().enumerate() {
            // One mutation per shard so every WAL is non-trivial. Handles
            // keep the global stride: next global handle ≡ shard id (mod 3)
            // is not guaranteed after max+1, so use insert_with_handle.
            let h = store.index().next_handle();
            let h = h + ((3 - (h as usize + 3 - i) % 3) % 3) as u64;
            store.insert_with_handle(h, &[0.5, 0.5]).unwrap();
        }
        drop(stores);

        // Trash shard 1's snapshot *and* WAL beyond repair.
        let bad = shard_dir(&root, 1);
        for entry in fs::read_dir(&bad).unwrap() {
            let p = entry.unwrap().path();
            fs::write(&p, b"garbage").unwrap();
        }
        // Record the peers' bytes to prove their files are never touched.
        let fingerprint = |s: usize| -> Vec<(PathBuf, Vec<u8>)> {
            let mut files: Vec<_> = fs::read_dir(shard_dir(&root, s))
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            files.sort();
            files
                .into_iter()
                .map(|p| (p.clone(), fs::read(&p).unwrap()))
                .collect()
        };
        let before = (fingerprint(0), fingerprint(2));

        assert!(open_shards(&root, &opts()).is_err(), "strict open aborts");
        let dirs = open_shards_tolerant(&root).unwrap();
        let results: Vec<Result<_, _>> = dirs
            .iter()
            .map(|d| DurableDynamicIndex::open(d, opts()))
            .collect();
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "shard 1 is damaged");
        assert!(results[2].is_ok());
        assert_eq!(
            before,
            (fingerprint(0), fingerprint(2)),
            "peer shard files must be untouched by shard 1's failed recovery"
        );
    }

    #[test]
    fn layout_validation_rejects_gaps_and_double_create() {
        let root = tmpdir("layout");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 30, 2).generate();
        create_sharded(&root, &rel, 2, &opts()).unwrap();
        assert!(
            create_sharded(&root, &rel, 2, &opts()).is_err(),
            "double create refused"
        );
        assert!(create_sharded(&tmpdir("layout0"), &rel, 0, &opts()).is_err());
        fs::rename(shard_dir(&root, 0), root.join("shard.0007")).unwrap();
        assert!(
            list_shard_dirs(&root).is_err(),
            "non-contiguous shard ids are a discovery error"
        );
    }
}
