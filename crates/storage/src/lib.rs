//! Persistence and I/O-cost modeling for dual-resolution indexes.
//!
//! * [`mod@format`] — a versioned, checksummed binary file format for
//!   relations and built indexes ([`drtopk_core::IndexSnapshot`]), so the
//!   expensive construction (the paper's Table IV) runs once;
//! * [`blocks`] — the paper's disk-based note made concrete: "tuples in
//!   the same layer are stored in the same disk block to reduce I/O cost"
//!   (Section VI-A). A [`blocks::BlockLayout`] maps tuples to fixed-size
//!   blocks either layer-clustered or in insertion order, and counts the
//!   distinct blocks a query's access set touches;
//! * [`wal`] — a checksummed write-ahead log for dynamic-index mutations,
//!   whose reader recovers the longest valid prefix of a torn file;
//! * [`durable`] — [`durable::DurableDynamicIndex`], a crash-safe
//!   [`drtopk_core::DynamicIndex`]: append-before-apply WAL discipline,
//!   generation-numbered atomic snapshots, and recovery that replays the
//!   log over the newest loadable snapshot;
//! * [`shards`] — the on-disk layout of a sharded deployment: one
//!   independent durable store per shard directory, so failure and
//!   recovery quarantine to a single shard.
//!
//! Fault injection: with the `failpoints` feature on, every I/O boundary
//! in this crate visits a named failpoint (see
//! [`durable::failpoint_sites`]) so chaos tests can deterministically
//! tear writes, flip bits, and fail syscalls. With the feature off (the
//! default) the sites compile to no-ops.

pub mod blocks;
pub mod bufferpool;
pub mod durable;
pub mod format;
pub mod shards;
pub mod wal;

pub use blocks::{BlockLayout, Placement};
pub use bufferpool::{BufferPool, IoStats};
pub use durable::{DurableDynamicIndex, DurableOptions, RecoveryReport};
pub use format::{
    load_dynamic_state, load_index, load_relation, save_dynamic_state, save_index, save_relation,
    FormatError,
};
pub use shards::{create_sharded, list_shard_dirs, open_shards, open_shards_tolerant, shard_dir};
pub use wal::{read_wal, WalRecord, WalReplay, WalWriter, MAX_WAL_RECORD};
