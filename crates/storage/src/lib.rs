//! Persistence and I/O-cost modeling for dual-resolution indexes.
//!
//! * [`mod@format`] — a versioned, checksummed binary file format for
//!   relations and built indexes ([`drtopk_core::IndexSnapshot`]), so the
//!   expensive construction (the paper's Table IV) runs once;
//! * [`blocks`] — the paper's disk-based note made concrete: "tuples in
//!   the same layer are stored in the same disk block to reduce I/O cost"
//!   (Section VI-A). A [`blocks::BlockLayout`] maps tuples to fixed-size
//!   blocks either layer-clustered or in insertion order, and counts the
//!   distinct blocks a query's access set touches.

pub mod blocks;
pub mod bufferpool;
pub mod format;

pub use blocks::{BlockLayout, Placement};
pub use bufferpool::{BufferPool, IoStats};
pub use format::{load_index, load_relation, save_index, save_relation, FormatError};
