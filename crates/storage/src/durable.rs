//! Crash-safe persistence for [`DynamicIndex`]: WAL + atomic snapshots.
//!
//! A [`DurableDynamicIndex`] wraps a [`DynamicIndex`] with the classic
//! append-before-apply discipline. Each directory holds generation-
//! numbered pairs:
//!
//! ```text
//! snapshot.0000000000000007.drt   full dynamic state at generation 7
//! wal.0000000000000007.log        every mutation after that snapshot
//! ```
//!
//! * **Mutations** are validated, appended to the current WAL (optionally
//!   fsynced), and only then applied in memory. An acknowledged operation
//!   is therefore always on disk before the caller sees it succeed.
//! * **Checkpoints** rotate generations: create `wal.(g+1)` first, then
//!   write `snapshot.(g+1)` via temp-file + fsync + rename — the rename is
//!   the commit point — then prune generations below `g`, keeping the
//!   previous pair as a fallback against silent at-rest corruption.
//! * **Recovery** ([`DurableDynamicIndex::open`]) picks the newest
//!   snapshot that loads and validates, then replays every WAL with a
//!   generation at or above it, in order. A torn tail on the *newest* WAL
//!   is expected (a crash mid-append) and truncated; a torn *interior* WAL
//!   means acknowledged operations are missing and is an error.
//! * **Failure poisons the store**: once an append or sync errors, the
//!   in-memory state may be ahead of or behind the log, so every further
//!   mutation is refused until the directory is reopened (queries still
//!   work). Recovery — not in-place repair — is the only exit, exactly as
//!   if the process had crashed.

use crate::format::{self, FormatError};
use crate::wal::{self, WalRecord, WalWriter};
use drtopk_common::{Cost, Error, Relation, Weights};
use drtopk_core::{DlOptions, DynamicGuardedTopk, DynamicIndex, Handle, QueryBudget, ResultCache};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Every failpoint site the durable store and its storage layer visit,
/// for chaos suites to enumerate.
pub mod failpoint_sites {
    pub use crate::format::{FP_READ_DATA, FP_READ_IO, FP_WRITE_DATA, FP_WRITE_RENAME};
    pub use crate::wal::{FP_WAL_APPEND, FP_WAL_APPEND_DATA, FP_WAL_CREATE, FP_WAL_SYNC};
}

/// Configuration of a durable dynamic index.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Index construction options (must match persisted snapshots).
    pub opts: DlOptions,
    /// Pending-update fraction that triggers an in-memory rebuild.
    pub rebuild_fraction: f64,
    /// Fsync the WAL after every append. On by default: an acknowledged
    /// operation survives power loss. Turning it off trades that for
    /// throughput — acknowledged operations then survive process crashes
    /// (the OS holds the bytes) but not power loss since the last
    /// [`DurableDynamicIndex::sync`].
    pub sync_every_append: bool,
    /// Append count that triggers an automatic checkpoint (0 = never; use
    /// [`DurableDynamicIndex::checkpoint`] manually).
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            opts: DlOptions::default(),
            rebuild_fraction: 0.2,
            sync_every_append: true,
            checkpoint_every: 0,
        }
    }
}

/// What [`DurableDynamicIndex::open`] had to do to get back to a
/// consistent state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation that served as the recovery base.
    pub generation: u64,
    /// WAL records replayed over the base snapshot.
    pub replayed: usize,
    /// Whether any active (unsealed) WAL carried a torn tail; the torn
    /// bytes held no acknowledged operations and were truncated away.
    pub torn_tail: bool,
    /// Newer snapshots that failed to load (at-rest corruption) and were
    /// skipped in favour of an older generation.
    pub snapshots_skipped: usize,
}

/// A crash-safe [`DynamicIndex`]: all mutations go through a WAL, full
/// state is checkpointed to atomic snapshots.
#[derive(Debug)]
pub struct DurableDynamicIndex {
    dir: PathBuf,
    inner: DynamicIndex,
    wal: WalWriter,
    generation: u64,
    appends_since_checkpoint: u64,
    poisoned: Option<String>,
    options: DurableOptions,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation:016}.drt"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation:016}.log"))
}

/// Scans a directory for generation-numbered files with `prefix.`…`.suffix`
/// names, returning the generations in ascending order.
fn list_generations(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<u64>, FormatError> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else {
            continue;
        };
        let Some(middle) = rest.strip_suffix(suffix) else {
            continue;
        };
        if let Ok(g) = middle.parse::<u64>() {
            gens.push(g);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

impl DurableDynamicIndex {
    /// Creates a fresh store over an initial relation in `dir` (created if
    /// missing; must not already hold a store).
    pub fn create(dir: &Path, rel: &Relation, options: DurableOptions) -> Result<Self, Error> {
        fs::create_dir_all(dir).map_err(|e| Error::Io(e.to_string()))?;
        if !list_generations(dir, "snapshot.", ".drt")
            .map_err(Error::from)?
            .is_empty()
        {
            return Err(Error::Invalid(format!(
                "directory {} already holds a durable index; use open()",
                dir.display()
            )));
        }
        let inner = DynamicIndex::new(rel, options.opts.clone(), options.rebuild_fraction);
        // WAL first, snapshot second: the snapshot's appearance is the
        // commit point, and a committed snapshot must have its WAL ready.
        let wal = WalWriter::create(&wal_path(dir, 0), 0).map_err(Error::from)?;
        format::save_dynamic_state(&inner.to_state(), 0, &snapshot_path(dir, 0))
            .map_err(Error::from)?;
        Ok(DurableDynamicIndex {
            dir: dir.to_path_buf(),
            inner,
            wal,
            generation: 0,
            appends_since_checkpoint: 0,
            poisoned: None,
            options,
        })
    }

    /// Creates a fresh store whose tuples carry *caller-assigned* global
    /// handles (see [`DynamicIndex::with_handles`]) — the shard-deployment
    /// entry point: each shard persists its partition under the global ids
    /// the router merges on, and WAL records (which carry handles) replay
    /// into the same global id space on recovery.
    pub fn create_with_handles(
        dir: &Path,
        rel: &Relation,
        handles: Vec<Handle>,
        options: DurableOptions,
    ) -> Result<Self, Error> {
        fs::create_dir_all(dir).map_err(|e| Error::Io(e.to_string()))?;
        if !list_generations(dir, "snapshot.", ".drt")
            .map_err(Error::from)?
            .is_empty()
        {
            return Err(Error::Invalid(format!(
                "directory {} already holds a durable index; use open()",
                dir.display()
            )));
        }
        let inner = DynamicIndex::with_handles(
            rel,
            handles,
            options.opts.clone(),
            options.rebuild_fraction,
        )?;
        let wal = WalWriter::create(&wal_path(dir, 0), 0).map_err(Error::from)?;
        format::save_dynamic_state(&inner.to_state(), 0, &snapshot_path(dir, 0))
            .map_err(Error::from)?;
        Ok(DurableDynamicIndex {
            dir: dir.to_path_buf(),
            inner,
            wal,
            generation: 0,
            appends_since_checkpoint: 0,
            poisoned: None,
            options,
        })
    }

    /// Opens an existing store, recovering from whatever a crash left.
    pub fn open(dir: &Path, options: DurableOptions) -> Result<(Self, RecoveryReport), Error> {
        let snap_gens = list_generations(dir, "snapshot.", ".drt").map_err(Error::from)?;
        if snap_gens.is_empty() {
            return Err(Error::Invalid(format!(
                "no snapshot found in {}",
                dir.display()
            )));
        }
        // Newest snapshot that both decodes and validates wins; corrupt
        // ones are skipped in favour of the previous generation.
        let mut base: Option<(u64, DynamicIndex)> = None;
        let mut snapshots_skipped = 0usize;
        let mut last_err: Option<Error> = None;
        for &g in snap_gens.iter().rev() {
            let loaded = format::load_dynamic_state(&snapshot_path(dir, g))
                .map_err(Error::from)
                .and_then(|(state, file_gen)| {
                    if file_gen != g {
                        return Err(Error::Corrupt(format!(
                            "snapshot generation {file_gen} does not match file name \
                             generation {g}"
                        )));
                    }
                    DynamicIndex::from_state(&state, options.opts.clone(), options.rebuild_fraction)
                });
            match loaded {
                Ok(inner) => {
                    base = Some((g, inner));
                    break;
                }
                Err(e) => {
                    snapshots_skipped += 1;
                    last_err = Some(e);
                }
            }
        }
        let Some((base_gen, mut inner)) = base else {
            return Err(last_err.unwrap_or_else(|| {
                Error::Corrupt(format!("no loadable snapshot in {}", dir.display()))
            }));
        };

        // Replay every WAL at or above the base generation, in order. WALs
        // below it are already baked into the snapshot.
        //
        // A WAL is *sealed* once a snapshot of a newer generation exists on
        // disk — that snapshot's committed rename is what switches appends
        // to the next log, and committing requires every append before it
        // to have succeeded. A torn tail in a sealed WAL therefore means
        // acknowledged operations are gone: fatal. WALs at or above the
        // newest snapshot present (commit marker, loadable or not) are
        // still active — a failed checkpoint can leave a pre-created empty
        // `wal.(g+1)` while appends continue on `wal.g` — so a torn tail
        // there is the expected crash-mid-append and is truncated away.
        let commit_gen = *snap_gens.last().expect("checked non-empty");
        let wal_gens: Vec<u64> = list_generations(dir, "wal.", ".log")
            .map_err(Error::from)?
            .into_iter()
            .filter(|&g| g >= base_gen)
            .collect();
        let newest_wal = wal_gens.last().copied().unwrap_or(base_gen);
        let mut replayed = 0usize;
        let mut torn_tail = false;
        let mut newest_valid_bytes = None;
        for &g in &wal_gens {
            let replay = wal::read_wal(&wal_path(dir, g), g).map_err(Error::from)?;
            if replay.torn && g < commit_gen {
                return Err(Error::Corrupt(format!(
                    "wal generation {g} is torn but sealed by snapshot generation \
                     {commit_gen}: acknowledged operations are missing"
                )));
            }
            torn_tail |= replay.torn;
            for rec in &replay.records {
                match rec {
                    WalRecord::Insert { handle, row } => inner.replay_insert(*handle, row)?,
                    WalRecord::Delete { handle } => {
                        inner.delete(*handle);
                    }
                }
                replayed += 1;
            }
            if g == newest_wal {
                newest_valid_bytes = Some(replay.valid_bytes);
            }
        }

        // Continue appending to the newest WAL, truncating any torn tail.
        // If the newest WAL file is missing entirely (crash between prune
        // and nothing, or manual deletion), recreate it empty.
        let newest_path = wal_path(dir, newest_wal);
        let wal = match newest_valid_bytes {
            Some(valid) => {
                WalWriter::open_append(&newest_path, newest_wal, valid).map_err(Error::from)?
            }
            None => WalWriter::create(&newest_path, newest_wal).map_err(Error::from)?,
        };

        let mut store = DurableDynamicIndex {
            dir: dir.to_path_buf(),
            inner,
            wal,
            generation: newest_wal,
            appends_since_checkpoint: replayed as u64,
            poisoned: None,
            options,
        };
        let report = RecoveryReport {
            generation: base_gen,
            replayed,
            torn_tail,
            snapshots_skipped,
        };
        // A skipped snapshot means the newest generation's state file is
        // bad on disk; re-establish a clean generation now rather than
        // leaving the corrupt file as the apparent newest.
        if snapshots_skipped > 0 {
            store.checkpoint()?;
        }
        Ok((store, report))
    }

    /// Read access to the wrapped index (queries, stats, lookups).
    pub fn index(&self) -> &DynamicIndex {
        &self.inner
    }

    /// Attaches a weight-space result cache to the query path (invalidated
    /// on attachment and by every mutation — see
    /// [`DynamicIndex::attach_cache`]). In a sharded deployment each shard
    /// owns its own cache, so one shard's churn or recovery invalidates
    /// only that shard's entries.
    pub fn attach_cache(&mut self, cache: Arc<ResultCache>) {
        self.inner.attach_cache(cache);
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no live tuples remain.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The current WAL generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Why mutations are refused, if a WAL failure poisoned the store.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Appends since the last checkpoint (replayed records count after a
    /// recovery).
    pub fn wal_backlog(&self) -> u64 {
        self.appends_since_checkpoint
    }

    fn check_usable(&self) -> Result<(), Error> {
        match &self.poisoned {
            Some(msg) => Err(Error::Io(format!(
                "store is poisoned by an earlier write failure ({msg}); reopen to recover"
            ))),
            None => Ok(()),
        }
    }

    /// Appends to the WAL, poisoning the store on failure: after an error
    /// it is unknowable how much of the record reached the disk, so the
    /// only safe continuation is recovery from the log itself.
    fn log(&mut self, rec: &WalRecord) -> Result<(), Error> {
        let result = self.wal.append(rec).and_then(|()| {
            if self.options.sync_every_append {
                self.wal.sync()
            } else {
                Ok(())
            }
        });
        if let Err(e) = result {
            let msg = e.to_string();
            self.poisoned = Some(msg.clone());
            return Err(Error::Io(format!("wal append failed: {msg}")));
        }
        self.appends_since_checkpoint += 1;
        Ok(())
    }

    /// Inserts a tuple under a caller-assigned handle (shard discipline:
    /// a shard only assigns handles congruent to its id). Same WAL-first
    /// contract as [`DurableDynamicIndex::insert`]; `h` must be at or
    /// above the next unassigned handle.
    pub fn insert_with_handle(&mut self, h: Handle, row: &[f64]) -> Result<(), Error> {
        self.check_usable()?;
        self.inner.check_row(row)?;
        if h < self.inner.next_handle() {
            return Err(Error::Invalid(format!(
                "handle {h} below next handle {}",
                self.inner.next_handle()
            )));
        }
        self.log(&WalRecord::Insert {
            handle: h,
            row: row.to_vec(),
        })?;
        self.inner
            .replay_insert(h, row)
            .expect("handle and row validated above");
        self.maybe_checkpoint();
        Ok(())
    }

    /// Inserts a tuple: WAL append first, then the in-memory apply.
    pub fn insert(&mut self, row: &[f64]) -> Result<Handle, Error> {
        self.check_usable()?;
        // Validate before logging so a rejected row never reaches the WAL.
        self.inner.check_row(row)?;
        let handle = self.inner.next_handle();
        self.log(&WalRecord::Insert {
            handle,
            row: row.to_vec(),
        })?;
        let got = self.inner.insert(row).expect("row validated above");
        debug_assert_eq!(got, handle);
        self.maybe_checkpoint();
        Ok(handle)
    }

    /// Deletes a handle; returns whether it was live. Dead handles are not
    /// logged.
    pub fn delete(&mut self, h: Handle) -> Result<bool, Error> {
        self.check_usable()?;
        if self.inner.get(h).is_none() {
            return Ok(false);
        }
        self.log(&WalRecord::Delete { handle: h })?;
        let was_live = self.inner.delete(h);
        debug_assert!(was_live);
        self.maybe_checkpoint();
        Ok(true)
    }

    /// Answers a top-k query over the live tuples (always allowed, even
    /// when poisoned — reads never touch the log).
    pub fn topk(&self, w: &Weights, k: usize) -> (Vec<Handle>, Cost) {
        self.inner.topk(w, k)
    }

    /// Budget-guarded top-k (the serving path's shard probe; see
    /// [`DynamicIndex::topk_guarded`]).
    pub fn topk_guarded(&self, w: &Weights, k: usize, budget: &QueryBudget) -> DynamicGuardedTopk {
        self.inner.topk_guarded(w, k, budget)
    }

    /// Forces buffered WAL appends to stable storage (no-op after
    /// fsync-per-append operation).
    pub fn sync(&mut self) -> Result<(), Error> {
        self.check_usable()?;
        if let Err(e) = self.wal.sync() {
            let msg = e.to_string();
            self.poisoned = Some(msg.clone());
            return Err(Error::Io(format!("wal sync failed: {msg}")));
        }
        Ok(())
    }

    fn maybe_checkpoint(&mut self) {
        if self.options.checkpoint_every > 0
            && self.appends_since_checkpoint >= self.options.checkpoint_every
        {
            // Best-effort: a failed background checkpoint leaves the
            // current generation fully functional.
            let _ = self.checkpoint();
        }
    }

    /// Rotates to a new generation: new WAL, then snapshot (the commit
    /// point), then pruning — keeping the previous generation as a
    /// fallback against at-rest corruption of the new snapshot.
    ///
    /// Checkpoint failure does *not* poison the store: the current
    /// generation's WAL is untouched, so acknowledged state is still
    /// consistent; the caller may retry.
    pub fn checkpoint(&mut self) -> Result<u64, Error> {
        self.check_usable()?;
        let next = self.generation + 1;
        // 1. The next WAL must exist before the snapshot that refers to
        //    it commits, otherwise a crash in between would leave a
        //    snapshot whose operations have nowhere durable to go.
        let new_wal = WalWriter::create(&wal_path(&self.dir, next), next).map_err(Error::from)?;
        // 2. Snapshot write; the rename inside is the commit point. If it
        //    fails, drop the pre-created WAL again — recovery tolerates
        //    the stray, but leaving it around is pointless disk noise.
        if let Err(e) = format::save_dynamic_state(
            &self.inner.to_state(),
            next,
            &snapshot_path(&self.dir, next),
        ) {
            drop(new_wal);
            let _ = fs::remove_file(wal_path(&self.dir, next));
            return Err(e.into());
        }
        // 3. Switch appends to the new generation.
        let old = self.generation;
        self.wal = new_wal;
        self.generation = next;
        self.appends_since_checkpoint = 0;
        // 4. Prune generations below the previous one (best-effort; stray
        //    files only cost disk and are handled by recovery).
        for (gens, to_path) in [
            (
                list_generations(&self.dir, "snapshot.", ".drt"),
                snapshot_path as fn(&Path, u64) -> PathBuf,
            ),
            (list_generations(&self.dir, "wal.", ".log"), wal_path),
        ] {
            if let Ok(gens) = gens {
                for g in gens.into_iter().filter(|&g| g < old) {
                    let _ = fs::remove_file(to_path(&self.dir, g));
                }
            }
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drtopk_durable_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> DurableOptions {
        DurableOptions {
            rebuild_fraction: 0.5,
            ..DurableOptions::default()
        }
    }

    #[test]
    fn create_mutate_reopen_matches_live_state() {
        let dir = tmpdir("reopen");
        let d = 3;
        let rel = WorkloadSpec::new(Distribution::Independent, d, 120, 21).generate();
        let mut store = DurableDynamicIndex::create(&dir, &rel, opts()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.001..0.999)).collect();
            store.insert(&row).unwrap();
        }
        for h in [0u64, 5, 121, 140] {
            assert!(store.delete(h).unwrap());
        }
        assert!(!store.delete(121).unwrap(), "double delete");
        let live_answers: Vec<_> = (0..10)
            .map(|_| store.topk(&Weights::random(d, &mut rng), 12).0)
            .collect();

        let (reopened, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
        assert_eq!(report.generation, 0);
        assert_eq!(report.replayed, 54, "50 inserts + 4 live deletes");
        assert!(!report.torn_tail);
        assert_eq!(report.snapshots_skipped, 0);
        assert_eq!(reopened.len(), store.len());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let _: Vec<f64> = (0..d).map(|_| rng.gen_range(0.001..0.999)).collect();
        }
        for (i, expect) in live_answers.iter().enumerate() {
            let got = reopened.topk(&Weights::random(d, &mut rng), 12).0;
            assert_eq!(&got, expect, "query {i} after recovery");
        }
    }

    #[test]
    fn checkpoint_rotates_and_prunes() {
        let dir = tmpdir("checkpoint");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 40, 2).generate();
        let mut store = DurableDynamicIndex::create(&dir, &rel, opts()).unwrap();
        store.insert(&[0.3, 0.3]).unwrap();
        assert_eq!(store.checkpoint().unwrap(), 1);
        store.insert(&[0.6, 0.6]).unwrap();
        assert_eq!(store.checkpoint().unwrap(), 2);
        // Generation 0 pruned, 1 kept as fallback, 2 current.
        assert!(!snapshot_path(&dir, 0).exists());
        assert!(snapshot_path(&dir, 1).exists());
        assert!(snapshot_path(&dir, 2).exists());
        assert!(!wal_path(&dir, 0).exists());
        assert!(wal_path(&dir, 1).exists());
        assert!(wal_path(&dir, 2).exists());

        store.insert(&[0.9, 0.1]).unwrap();
        let expect = store.topk(&Weights::uniform(2), 43).0;
        let (reopened, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.replayed, 1, "only the post-checkpoint insert");
        assert_eq!(reopened.topk(&Weights::uniform(2), 43).0, expect);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_a_generation() {
        let dir = tmpdir("fallback");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 30, 8).generate();
        let mut store = DurableDynamicIndex::create(&dir, &rel, opts()).unwrap();
        store.insert(&[0.2, 0.8]).unwrap();
        store.checkpoint().unwrap();
        store.insert(&[0.7, 0.7]).unwrap();
        let expect = store.topk(&Weights::uniform(2), 32).0;
        drop(store);
        // Flip a payload byte in the newest snapshot.
        let path = snapshot_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();

        let (reopened, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
        assert_eq!(report.generation, 0, "fell back to the previous snapshot");
        assert_eq!(report.snapshots_skipped, 1);
        assert_eq!(
            report.replayed, 2,
            "replays wal.0 (1 insert) then wal.1 (1 insert)"
        );
        assert_eq!(reopened.topk(&Weights::uniform(2), 32).0, expect);
        // Recovery re-checkpointed: the bad snapshot is no longer newest.
        assert!(reopened.generation() > 1);
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_interior_tears_are_fatal() {
        let dir = tmpdir("torn");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 20, 3).generate();
        let mut store = DurableDynamicIndex::create(&dir, &rel, opts()).unwrap();
        store.insert(&[0.4, 0.4]).unwrap();
        store.insert(&[0.5, 0.5]).unwrap();
        let before_third = store.topk(&Weights::uniform(2), 25).0;
        store.insert(&[0.6, 0.6]).unwrap();
        drop(store);
        // Tear the last record: chop 3 bytes off the WAL tail.
        let path = wal_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (reopened, report) = DurableDynamicIndex::open(&dir, opts()).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.replayed, 2, "third insert was torn away");
        assert_eq!(reopened.topk(&Weights::uniform(2), 25).0, before_third);
        drop(reopened);

        // An interior torn WAL (not the newest) must refuse to open.
        let dir2 = tmpdir("torn_interior");
        let mut store = DurableDynamicIndex::create(&dir2, &rel, opts()).unwrap();
        store.insert(&[0.1, 0.9]).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        // Corrupt snapshot.1 so recovery must fall back to generation 0 and
        // replay wal.0 — which we tear.
        let snap1 = snapshot_path(&dir2, 1);
        let mut bytes = fs::read(&snap1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&snap1, &bytes).unwrap();
        let wal0 = wal_path(&dir2, 0);
        let full = fs::read(&wal0).unwrap();
        fs::write(&wal0, &full[..full.len() - 2]).unwrap();
        assert!(matches!(
            DurableDynamicIndex::open(&dir2, opts()),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn create_refuses_existing_store_and_open_refuses_empty_dir() {
        let dir = tmpdir("refuse");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 10, 1).generate();
        DurableDynamicIndex::create(&dir, &rel, opts()).unwrap();
        assert!(matches!(
            DurableDynamicIndex::create(&dir, &rel, opts()),
            Err(Error::Invalid(_))
        ));
        let empty = tmpdir("refuse_empty");
        fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            DurableDynamicIndex::open(&empty, opts()),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn open_rejects_incompatible_options() {
        let dir = tmpdir("incompatible");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 25, 6).generate();
        DurableDynamicIndex::create(&dir, &rel, opts()).unwrap();
        let other = DurableOptions {
            opts: DlOptions::dg(),
            ..opts()
        };
        assert!(matches!(
            DurableDynamicIndex::open(&dir, other),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn automatic_checkpointing_bounds_the_backlog() {
        let dir = tmpdir("auto");
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 15, 4).generate();
        let auto = DurableOptions {
            checkpoint_every: 8,
            ..opts()
        };
        let mut store = DurableDynamicIndex::create(&dir, &rel, auto).unwrap();
        for i in 0..30 {
            store.insert(&[0.2 + 0.01 * (i % 10) as f64, 0.5]).unwrap();
            assert!(store.wal_backlog() < 8, "backlog bounded by checkpoints");
        }
        assert!(store.generation() >= 3);
    }
}
