//! Skyline computation substrate.
//!
//! The dual-resolution index's *coarse* layers are iterated skylines
//! (Definition 3, skyline peeling). The paper computes skylines with
//! BSkyTree [Lee & Hwang, EDBT 2010]; we implement that family from
//! scratch along with the classic baselines used to cross-validate it:
//!
//! * [`algorithms::naive`] — O(n²) pairwise filtering (test oracle);
//! * [`algorithms::bnl`] — block-nested-loops with a self-cleaning window;
//! * [`algorithms::sfs`] — sort-filter-skyline (presort by attribute sum);
//! * [`algorithms::bskytree`] — recursive balanced-pivot lattice
//!   partitioning in the style of BSkyTree.
//!
//! All algorithms return the identical, unique skyline set (sorted by
//! tuple id); [`layers::skyline_layers`] peels any of them into layers.

pub mod algorithms;
pub mod layers;

pub use algorithms::{bnl, bskytree, naive, sfs, SkylineAlgo};
pub use layers::{skyline_layers, skyline_layers_incremental};
