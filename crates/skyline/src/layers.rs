//! Skyline-layer peeling (the coarse level of the dual-resolution index).

use crate::algorithms::SkylineAlgo;
use drtopk_common::{Relation, TupleId};

/// Peels `ids` into consecutive skyline layers: layer 1 is the skyline of
/// the subset, layer i the skyline of the remainder (Section II).
/// Together the layers partition the input.
pub fn skyline_layers(rel: &Relation, ids: &[TupleId], algo: SkylineAlgo) -> Vec<Vec<TupleId>> {
    let mut remaining: Vec<TupleId> = ids.to_vec();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let layer = algo.run(rel, &remaining);
        debug_assert!(!layer.is_empty());
        // `layer` and `remaining` are both sorted after the first pass; use
        // a merge-style subtraction to keep peeling near-linear per layer.
        let mut next = Vec::with_capacity(remaining.len() - layer.len());
        let mut sorted_remaining = remaining;
        sorted_remaining.sort_unstable();
        let mut li = 0;
        for &id in &sorted_remaining {
            if li < layer.len() && layer[li] == id {
                li += 1;
            } else {
                next.push(id);
            }
        }
        debug_assert_eq!(li, layer.len());
        remaining = next;
        layers.push(layer);
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::dominance::dominates;
    use drtopk_common::relation::{toy_dataset, toy_id};
    use drtopk_common::{Distribution, WorkloadSpec};

    fn sorted_ids(labels: &[char]) -> Vec<TupleId> {
        let mut v: Vec<TupleId> = labels.iter().map(|&c| toy_id(c)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn toy_layers_match_fig_2a() {
        let r = toy_dataset();
        let all: Vec<TupleId> = (0..r.len() as TupleId).collect();
        let layers = skyline_layers(&r, &all, SkylineAlgo::BSkyTree);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], sorted_ids(&['a', 'b', 'c', 'f', 'g']));
        assert_eq!(layers[1], sorted_ids(&['d', 'e', 'i', 'j']));
        assert_eq!(layers[2], sorted_ids(&['h', 'k']));
    }

    #[test]
    fn layers_partition_and_respect_dominance() {
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            let rel = WorkloadSpec::new(dist, 3, 500, 23).generate();
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let layers = skyline_layers(&rel, &all, SkylineAlgo::BSkyTree);
            let mut flat: Vec<TupleId> = layers.iter().flatten().copied().collect();
            flat.sort_unstable();
            assert_eq!(flat, all, "partition property");
            // No dominance within a layer.
            for layer in &layers {
                for &a in layer {
                    for &b in layer {
                        assert!(!dominates(rel.tuple(a), rel.tuple(b)));
                    }
                }
            }
            // Every tuple in layer i+1 is dominated by >= 1 tuple of layer i.
            for pair in layers.windows(2) {
                for &t in &pair[1] {
                    assert!(
                        pair[0]
                            .iter()
                            .any(|&s| dominates(rel.tuple(s), rel.tuple(t))),
                        "layer-(i+1) member lacks a layer-i dominator"
                    );
                }
            }
        }
    }

    #[test]
    fn all_algorithms_produce_identical_layers() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 300, 3).generate();
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let reference = skyline_layers(&rel, &all, SkylineAlgo::Naive);
        for algo in [SkylineAlgo::Bnl, SkylineAlgo::Sfs, SkylineAlgo::BSkyTree] {
            assert_eq!(skyline_layers(&rel, &all, algo), reference, "{algo:?}");
        }
    }
}
