//! Skyline-layer peeling (the coarse level of the dual-resolution index).
//!
//! Two implementations produce identical layers:
//!
//! * [`skyline_layers`] — the literal definition: re-run a skyline
//!   algorithm on the remainder once per layer. O(L) full skyline passes.
//! * [`skyline_layers_incremental`] — sort once by attribute sum and
//!   assign every tuple its layer in one pass. Dominance implies a
//!   strictly smaller sum, so by the time a tuple is processed all of its
//!   dominators already sit in the structure; its layer is
//!   `1 + max{layer(s) : s dominates t}` (the longest-dominance-chain
//!   characterization of skyline peeling), and because that dominator
//!   predicate is downward-closed across layers — layer j's members are
//!   dominated from layer j−1, so dominance chains extend all the way
//!   down — the maximum is found by *binary search* over layers instead
//!   of a scan. Each layer answers "do you contain a dominator of t?" in
//!   O(log |layer|) for d = 2 (a staircase probe) and with a
//!   sum-cutoff + min-corner-pruned scan for d ≥ 3.

use crate::algorithms::SkylineAlgo;
use drtopk_common::par::{parallel_map, resolve_workers};
use drtopk_common::{Relation, TupleId};

/// Peels `ids` into consecutive skyline layers: layer 1 is the skyline of
/// the subset, layer i the skyline of the remainder (Section II).
/// Together the layers partition the input.
pub fn skyline_layers(rel: &Relation, ids: &[TupleId], algo: SkylineAlgo) -> Vec<Vec<TupleId>> {
    let mut remaining: Vec<TupleId> = ids.to_vec();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let layer = algo.run(rel, &remaining);
        debug_assert!(!layer.is_empty());
        // `layer` and `remaining` are both sorted after the first pass; use
        // a merge-style subtraction to keep peeling near-linear per layer.
        let mut next = Vec::with_capacity(remaining.len() - layer.len());
        let mut sorted_remaining = remaining;
        sorted_remaining.sort_unstable();
        let mut li = 0;
        for &id in &sorted_remaining {
            if li < layer.len() && layer[li] == id {
                li += 1;
            } else {
                next.push(id);
            }
        }
        debug_assert_eq!(li, layer.len());
        remaining = next;
        layers.push(layer);
    }
    layers
}

/// Tuples per parallel lower-bound block in
/// [`skyline_layers_incremental`]. Large enough that freezing the layer
/// state once per block is amortized, small enough that the sequential
/// fix-up pass rarely has to move a tuple past its frozen bound.
const PEEL_BLOCK: usize = 2048;

/// A 2-d skyline layer as a staircase: sorted by x ascending, y strictly
/// decreasing except for exact duplicates (an antichain admits nothing
/// else). One binary search answers the dominator probe.
#[derive(Debug, Default)]
struct Staircase {
    steps: Vec<(f64, f64)>,
}

impl Staircase {
    /// Does any step dominate `(x, y)`? The best candidate is the
    /// rightmost step with x' ≤ x (its y is minimal among those); it
    /// dominates iff y' < y, or y' == y with x' strictly left.
    fn has_dominator(&self, x: f64, y: f64) -> bool {
        let k = self.steps.partition_point(|p| p.0 <= x);
        if k == 0 {
            return false;
        }
        let (px, py) = self.steps[k - 1];
        py < y || (py == y && px < x)
    }

    fn insert(&mut self, x: f64, y: f64) {
        let k = self.steps.partition_point(|p| p.0 <= x);
        self.steps.insert(k, (x, y));
    }
}

/// Members per pruning block in an [`NdLayer`]: each block of the
/// sum-ordered member list carries its componentwise min-corner, so a
/// dominator probe skips whole blocks that cannot contain one.
const ND_BLOCK: usize = 64;

/// A d ≥ 3 layer: members in insertion (= attribute-sum) order with their
/// sums and a cache-friendly copy of their coordinates, plus min-corners
/// (whole-layer and per [`ND_BLOCK`]-member block) for pruning.
#[derive(Debug)]
struct NdLayer {
    d: usize,
    sums: Vec<f64>,
    members: Vec<TupleId>,
    /// Member coordinates, flat, insertion order (`members.len() * d`).
    coords: Vec<f64>,
    corner: Vec<f64>,
    /// Componentwise min per block of `ND_BLOCK` members.
    block_corners: Vec<f64>,
}

/// Per-layer dominator-probe state for the incremental peel.
enum PeelState {
    Two(Vec<Staircase>),
    General(Vec<NdLayer>),
}

impl PeelState {
    fn new(d: usize) -> PeelState {
        if d == 2 {
            PeelState::Two(Vec::new())
        } else {
            PeelState::General(Vec::new())
        }
    }

    fn len(&self) -> usize {
        match self {
            PeelState::Two(s) => s.len(),
            PeelState::General(l) => l.len(),
        }
    }

    /// Does layer `j` contain a dominator of the tuple? Counts dominance
    /// tests into `tests` (one per staircase probe / `dominates` call).
    fn has_dominator(&self, j: usize, tv: &[f64], t_sum: f64, tests: &mut u64) -> bool {
        match self {
            PeelState::Two(stairs) => {
                *tests += 1;
                stairs[j].has_dominator(tv[0], tv[1])
            }
            PeelState::General(layers) => {
                let layer = &layers[j];
                let d = layer.d;
                // A member can only dominate if the layer's min-corner
                // weakly dominates (0 tests spent otherwise).
                if layer.corner.iter().zip(tv).any(|(c, x)| c > x) {
                    return false;
                }
                // Dominators have strictly smaller sums; the sums are in
                // insertion order (non-decreasing), so the scan stops at
                // the binary-searched cutoff — walked block-wise, skipping
                // blocks whose min-corner fails weak dominance.
                let cut = layer.sums.partition_point(|&s| s < t_sum);
                let mut i = 0;
                while i < cut {
                    let b = i / ND_BLOCK;
                    let end = ((b + 1) * ND_BLOCK).min(cut);
                    let bc = &layer.block_corners[b * d..(b + 1) * d];
                    if bc.iter().zip(tv).any(|(c, x)| c > x) {
                        i = end;
                        continue;
                    }
                    for m in i..end {
                        *tests += 1;
                        let mv = &layer.coords[m * d..(m + 1) * d];
                        // Weak dominance suffices: these members have a
                        // strictly smaller sum, which rules out equality.
                        if mv.iter().zip(tv).all(|(a, b)| a <= b) {
                            return true;
                        }
                    }
                    i = end;
                }
                false
            }
        }
    }

    /// Adds the tuple to layer `j`, creating the layer when `j == len()`.
    fn insert(&mut self, j: usize, t: TupleId, tv: &[f64], t_sum: f64) {
        match self {
            PeelState::Two(stairs) => {
                if j == stairs.len() {
                    stairs.push(Staircase::default());
                }
                stairs[j].insert(tv[0], tv[1]);
            }
            PeelState::General(layers) => {
                if j == layers.len() {
                    layers.push(NdLayer {
                        d: tv.len(),
                        sums: Vec::new(),
                        members: Vec::new(),
                        coords: Vec::new(),
                        corner: tv.to_vec(),
                        block_corners: Vec::new(),
                    });
                }
                let layer = &mut layers[j];
                if layer.members.len() % ND_BLOCK == 0 {
                    layer.block_corners.extend_from_slice(tv);
                } else {
                    let b = layer.members.len() / ND_BLOCK;
                    let d = layer.d;
                    for (c, &x) in layer.block_corners[b * d..(b + 1) * d].iter_mut().zip(tv) {
                        if x < *c {
                            *c = x;
                        }
                    }
                }
                layer.sums.push(t_sum);
                layer.members.push(t);
                layer.coords.extend_from_slice(tv);
                for (c, &x) in layer.corner.iter_mut().zip(tv) {
                    if x < *c {
                        *c = x;
                    }
                }
            }
        }
    }
}

/// Finds the layer for a tuple: the first `j ∈ [lb, len]` whose layer does
/// *not* contain a dominator (the dominator predicate is true exactly on a
/// prefix of layers).
fn assign_layer(state: &PeelState, tv: &[f64], t_sum: f64, lb: usize, tests: &mut u64) -> usize {
    let mut lo = lb;
    let mut hi = state.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if state.has_dominator(mid, tv, t_sum, tests) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Incremental peel: identical layers to [`skyline_layers`], one sorted
/// pass instead of one skyline computation per layer. Returns the layers
/// plus the number of dominance tests spent.
///
/// `threads` follows the workspace convention (`0` = all cores, `1` =
/// strictly sequential). When more than one worker can actually run, the
/// pass works in blocks: a parallel map computes, against the layer state
/// *frozen* at block start, a lower bound on each tuple's layer (layers
/// only grow, so a frozen-state answer can only underestimate), then a
/// sequential fix-up finishes the binary search from that bound against
/// the live state. Block boundaries are fixed, so the *layers* never
/// depend on the worker count — only the dominance-test count differs
/// between the sequential and blocked passes (the blocked pass pays for
/// its frozen bounds).
pub fn skyline_layers_incremental(
    rel: &Relation,
    ids: &[TupleId],
    threads: usize,
) -> (Vec<Vec<TupleId>>, u64) {
    // The frozen-bound block pass only pays off when workers actually run
    // concurrently; on an effectively single-threaded host it recomputes
    // every search twice, so fall through to the plain sequential pass.
    let blocked = resolve_workers(threads, ids.len()) > 1;
    skyline_layers_incremental_impl(rel, ids, threads, blocked)
}

fn skyline_layers_incremental_impl(
    rel: &Relation,
    ids: &[TupleId],
    threads: usize,
    blocked: bool,
) -> (Vec<Vec<TupleId>>, u64) {
    if ids.is_empty() {
        return (Vec::new(), 0);
    }
    let mut order: Vec<(f64, TupleId)> = ids
        .iter()
        .map(|&t| (rel.tuple(t).iter().sum::<f64>(), t))
        .collect();
    // Dominance implies a strictly smaller attribute sum, so this order
    // processes every dominator before the tuples it dominates (equal-sum
    // tuples are mutually non-dominating; the id tie-break is cosmetic).
    order.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));

    let mut state = PeelState::new(rel.dims());
    let mut out: Vec<Vec<TupleId>> = Vec::new();
    let mut tests: u64 = 0;

    let place = |state: &mut PeelState,
                 out: &mut Vec<Vec<TupleId>>,
                 tests: &mut u64,
                 t: TupleId,
                 t_sum: f64,
                 lb: usize| {
        let tv = rel.tuple(t);
        let j = assign_layer(state, tv, t_sum, lb, tests);
        state.insert(j, t, tv, t_sum);
        if j == out.len() {
            out.push(Vec::new());
        }
        out[j].push(t);
    };

    if !blocked {
        for &(t_sum, t) in &order {
            place(&mut state, &mut out, &mut tests, t, t_sum, 0);
        }
    } else {
        for block in order.chunks(PEEL_BLOCK) {
            let frozen = &state;
            let bounds: Vec<(usize, u64)> = parallel_map(block, threads, &|&(t_sum, t)| {
                let mut block_tests = 0u64;
                let lb = assign_layer(frozen, rel.tuple(t), t_sum, 0, &mut block_tests);
                (lb, block_tests)
            });
            for (&(t_sum, t), &(lb, block_tests)) in block.iter().zip(&bounds) {
                tests += block_tests;
                place(&mut state, &mut out, &mut tests, t, t_sum, lb);
            }
        }
    }

    // Match the reference output convention: each layer sorted by id.
    for layer in &mut out {
        layer.sort_unstable();
    }
    (out, tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::dominance::dominates;
    use drtopk_common::relation::{toy_dataset, toy_id};
    use drtopk_common::{Distribution, WorkloadSpec};

    fn sorted_ids(labels: &[char]) -> Vec<TupleId> {
        let mut v: Vec<TupleId> = labels.iter().map(|&c| toy_id(c)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn toy_layers_match_fig_2a() {
        let r = toy_dataset();
        let all: Vec<TupleId> = (0..r.len() as TupleId).collect();
        let layers = skyline_layers(&r, &all, SkylineAlgo::BSkyTree);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], sorted_ids(&['a', 'b', 'c', 'f', 'g']));
        assert_eq!(layers[1], sorted_ids(&['d', 'e', 'i', 'j']));
        assert_eq!(layers[2], sorted_ids(&['h', 'k']));
    }

    #[test]
    fn layers_partition_and_respect_dominance() {
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            let rel = WorkloadSpec::new(dist, 3, 500, 23).generate();
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let layers = skyline_layers(&rel, &all, SkylineAlgo::BSkyTree);
            let mut flat: Vec<TupleId> = layers.iter().flatten().copied().collect();
            flat.sort_unstable();
            assert_eq!(flat, all, "partition property");
            // No dominance within a layer.
            for layer in &layers {
                for &a in layer {
                    for &b in layer {
                        assert!(!dominates(rel.tuple(a), rel.tuple(b)));
                    }
                }
            }
            // Every tuple in layer i+1 is dominated by >= 1 tuple of layer i.
            for pair in layers.windows(2) {
                for &t in &pair[1] {
                    assert!(
                        pair[0]
                            .iter()
                            .any(|&s| dominates(rel.tuple(s), rel.tuple(t))),
                        "layer-(i+1) member lacks a layer-i dominator"
                    );
                }
            }
        }
    }

    #[test]
    fn all_algorithms_produce_identical_layers() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 300, 3).generate();
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let reference = skyline_layers(&rel, &all, SkylineAlgo::Naive);
        for algo in [SkylineAlgo::Bnl, SkylineAlgo::Sfs, SkylineAlgo::BSkyTree] {
            assert_eq!(skyline_layers(&rel, &all, algo), reference, "{algo:?}");
        }
    }

    #[test]
    fn incremental_matches_peeling_reference() {
        for dist in [
            Distribution::Correlated,
            Distribution::Independent,
            Distribution::AntiCorrelated,
        ] {
            for d in [2, 3, 4] {
                for (n, seed) in [(60, 7u64), (400, 41)] {
                    let rel = WorkloadSpec::new(dist, d, n, seed).generate();
                    let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
                    let reference = skyline_layers(&rel, &all, SkylineAlgo::BSkyTree);
                    for threads in [1, 2, 4] {
                        let (layers, tests) = skyline_layers_incremental(&rel, &all, threads);
                        assert_eq!(layers, reference, "{dist:?} d={d} n={n} threads={threads}");
                        assert!(tests > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_on_subsets_duplicates_and_empty() {
        // Build behavior exercises peeling over arbitrary id subsets.
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 11).generate();
        let subset: Vec<TupleId> = (0..200).filter(|i| i % 3 != 0).collect();
        let reference = skyline_layers(&rel, &subset, SkylineAlgo::BSkyTree);
        assert_eq!(skyline_layers_incremental(&rel, &subset, 1).0, reference);

        // Exact duplicates never dominate each other: they share a layer.
        let rows: Vec<Vec<f64>> = vec![vec![0.5, 0.5]; 7]
            .into_iter()
            .chain(std::iter::once(vec![0.6, 0.6]))
            .collect();
        let dup = Relation::from_rows(2, &rows).unwrap();
        let ids: Vec<TupleId> = (0..8).collect();
        let (layers, _) = skyline_layers_incremental(&dup, &ids, 1);
        assert_eq!(layers, skyline_layers(&dup, &ids, SkylineAlgo::Naive));
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 7);

        assert!(skyline_layers_incremental(&rel, &[], 1).0.is_empty());
    }

    #[test]
    fn incremental_block_path_crosses_block_boundaries() {
        // More tuples than one PEEL_BLOCK so the frozen-bound + fix-up path
        // runs over several blocks and still matches the reference. The
        // block path is forced so coverage does not depend on the host's
        // core count.
        for d in [2, 3] {
            let rel =
                WorkloadSpec::new(Distribution::AntiCorrelated, d, 3 * PEEL_BLOCK, 5).generate();
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let reference = skyline_layers(&rel, &all, SkylineAlgo::BSkyTree);
            let (seq, _) = skyline_layers_incremental(&rel, &all, 1);
            let (blk, _) = skyline_layers_incremental_impl(&rel, &all, 0, true);
            assert_eq!(seq, reference, "d={d}");
            assert_eq!(blk, reference, "d={d}");
        }
    }
}
