//! Skyline algorithms over id-subsets of a relation.
//!
//! Every function takes `(rel, ids)` and returns the ids of skyline tuples
//! *within that subset*, sorted ascending. Exact duplicates are all kept:
//! under Definition 2 equal tuples do not dominate each other.

use drtopk_common::{dominates, Relation, TupleId};

/// Selector for the skyline algorithm used by index builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkylineAlgo {
    Naive,
    Bnl,
    Sfs,
    /// Balanced-pivot lattice partitioning (the paper's choice \[28\]).
    #[default]
    BSkyTree,
    /// Divide-and-conquer (Börzsönyi et al.).
    DivideConquer,
}

impl SkylineAlgo {
    /// Runs the selected algorithm.
    pub fn run(&self, rel: &Relation, ids: &[TupleId]) -> Vec<TupleId> {
        match self {
            SkylineAlgo::Naive => naive(rel, ids),
            SkylineAlgo::Bnl => bnl(rel, ids),
            SkylineAlgo::Sfs => sfs(rel, ids),
            SkylineAlgo::BSkyTree => bskytree(rel, ids),
            SkylineAlgo::DivideConquer => dnc(rel, ids),
        }
    }
}

/// O(n²) reference implementation: a tuple survives iff no other tuple in
/// the subset dominates it.
pub fn naive(rel: &Relation, ids: &[TupleId]) -> Vec<TupleId> {
    let mut out = Vec::new();
    'outer: for &t in ids {
        let tv = rel.tuple(t);
        for &u in ids {
            if u != t && dominates(rel.tuple(u), tv) {
                continue 'outer;
            }
        }
        out.push(t);
    }
    out.sort_unstable();
    out
}

/// Block-nested-loops: stream tuples against a window of incomparable
/// candidates; dominated candidates are evicted, dominated inputs dropped.
pub fn bnl(rel: &Relation, ids: &[TupleId]) -> Vec<TupleId> {
    let mut window: Vec<TupleId> = Vec::new();
    'outer: for &t in ids {
        let tv = rel.tuple(t);
        let mut i = 0;
        while i < window.len() {
            let wv = rel.tuple(window[i]);
            if dominates(wv, tv) {
                continue 'outer;
            }
            if dominates(tv, wv) {
                window.swap_remove(i);
            } else {
                i += 1;
            }
        }
        window.push(t);
    }
    window.sort_unstable();
    window
}

/// Sort-filter-skyline: presort by attribute sum (a monotone preference
/// function), so a tuple can only be dominated by tuples earlier in the
/// order — the window never needs cleaning.
pub fn sfs(rel: &Relation, ids: &[TupleId]) -> Vec<TupleId> {
    let mut order: Vec<TupleId> = ids.to_vec();
    order.sort_unstable_by(|&a, &b| {
        let sa: f64 = rel.tuple(a).iter().sum();
        let sb: f64 = rel.tuple(b).iter().sum();
        sa.partial_cmp(&sb).unwrap().then(a.cmp(&b))
    });
    let mut skyline: Vec<TupleId> = Vec::new();
    'outer: for &t in &order {
        let tv = rel.tuple(t);
        for &s in &skyline {
            if dominates(rel.tuple(s), tv) {
                continue 'outer;
            }
        }
        skyline.push(t);
    }
    skyline.sort_unstable();
    skyline
}

/// BSkyTree-style skyline: pick a balanced pivot (the min-sum point under
/// per-dimension range normalization — always a skyline tuple), partition
/// the rest into the 2^d lattice regions induced by per-dimension
/// comparisons against the pivot, recurse per region, and cross-filter a
/// region only against regions whose mask is a strict subset.
pub fn bskytree(rel: &Relation, ids: &[TupleId]) -> Vec<TupleId> {
    let d = rel.dims();
    if d > 16 {
        // Lattice masks are u32; beyond ~16 dims the lattice degenerates
        // anyway. Fall back to SFS.
        return sfs(rel, ids);
    }
    let mut out = Vec::new();
    bskytree_rec(rel, ids, &mut out);
    out.sort_unstable();
    out
}

const BSKY_LEAF: usize = 24;

fn bskytree_rec(rel: &Relation, ids: &[TupleId], out: &mut Vec<TupleId>) {
    if ids.len() <= BSKY_LEAF {
        out.extend(sfs(rel, ids));
        return;
    }
    let d = rel.dims();

    // Balanced pivot: min-sum point after normalizing each dimension to the
    // subset's own range, so no single dimension skews the lattice.
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for &t in ids.iter() {
        for (i, &x) in rel.tuple(t).iter().enumerate() {
            lo[i] = lo[i].min(x);
            hi[i] = hi[i].max(x);
        }
    }
    let span: Vec<f64> = lo
        .iter()
        .zip(&hi)
        .map(|(l, h)| (h - l).max(1e-12))
        .collect();
    let norm_sum = |t: TupleId| -> f64 {
        rel.tuple(t)
            .iter()
            .zip(&lo)
            .zip(&span)
            .map(|((x, l), s)| (x - l) / s)
            .sum()
    };
    let pivot = *ids
        .iter()
        .min_by(|&&a, &&b| {
            norm_sum(a)
                .partial_cmp(&norm_sum(b))
                .unwrap()
                .then(a.cmp(&b))
        })
        .expect("nonempty");
    let pv: Vec<f64> = rel.tuple(pivot).to_vec();
    out.push(pivot);

    // Lattice partitioning: bit i set iff t_i >= pivot_i.
    let full: u32 = (1u32 << d) - 1;
    let mut parts: Vec<(u32, Vec<TupleId>)> = Vec::new();
    let mut index_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &t in ids.iter() {
        if t == pivot {
            continue;
        }
        let tv = rel.tuple(t);
        let mut mask = 0u32;
        let mut strict_worse = false;
        for i in 0..d {
            if tv[i] >= pv[i] {
                mask |= 1 << i;
                if tv[i] > pv[i] {
                    strict_worse = true;
                }
            }
        }
        if mask == full {
            if strict_worse {
                continue; // dominated by the pivot
            }
            out.push(t); // exact duplicate of the pivot: also a skyline tuple
            continue;
        }
        let slot = *index_of.entry(mask).or_insert_with(|| {
            parts.push((mask, Vec::new()));
            parts.len() - 1
        });
        parts[slot].1.push(t);
    }

    // Process regions in (popcount, mask) order so every potential
    // dominator region is finished first.
    parts.sort_unstable_by_key(|(m, _)| (m.count_ones(), *m));
    let mut region_skylines: Vec<(u32, Vec<TupleId>)> = Vec::with_capacity(parts.len());
    for (mask, members) in parts {
        let mut local = Vec::new();
        bskytree_rec(rel, &members, &mut local);
        // Cross-filter against subset-mask regions: only they can dominate.
        local.retain(|&t| {
            let tv = rel.tuple(t);
            for (m2, sky2) in &region_skylines {
                if m2 & mask == *m2 && sky2.iter().any(|&s| dominates(rel.tuple(s), tv)) {
                    return false;
                }
            }
            true
        });
        region_skylines.push((mask, local));
    }
    for (_, mut sky) in region_skylines {
        out.append(&mut sky);
    }
}

/// Divide-and-conquer skyline (Börzsönyi et al., ICDE 2001): split on a
/// dimension's median value, recurse, then filter the upper half's skyline
/// against the lower half's (the lower half is strictly better in the
/// split dimension, so dominance only flows one way).
pub fn dnc(rel: &Relation, ids: &[TupleId]) -> Vec<TupleId> {
    let mut out = dnc_rec(rel, ids.to_vec(), 0);
    out.sort_unstable();
    out
}

const DNC_LEAF: usize = 32;

fn dnc_rec(rel: &Relation, ids: Vec<TupleId>, depth: usize) -> Vec<TupleId> {
    if ids.len() <= DNC_LEAF {
        return sfs(rel, &ids);
    }
    let d = rel.dims();
    // Find a dimension (cycling from `depth`) whose median value splits the
    // set into two strictly non-empty halves.
    for probe in 0..d {
        let dim = (depth + probe) % d;
        let mut vals: Vec<f64> = ids.iter().map(|&t| rel.tuple(t)[dim]).collect();
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        let (low, high): (Vec<TupleId>, Vec<TupleId>) =
            ids.iter().partition(|&&t| rel.tuple(t)[dim] < median);
        if low.is_empty() || high.is_empty() {
            continue; // heavy ties on this dimension; try the next
        }
        let sky_low = dnc_rec(rel, low, depth + 1);
        let sky_high = dnc_rec(rel, high, depth + 1);
        // Low points have a strictly smaller value in `dim`, so no high
        // point can dominate a low one; only the reverse filter is needed.
        let mut merged = sky_low.clone();
        'outer: for &h in &sky_high {
            let hv = rel.tuple(h);
            for &l in &sky_low {
                if dominates(rel.tuple(l), hv) {
                    continue 'outer;
                }
            }
            merged.push(h);
        }
        return merged;
    }
    // Every dimension is constant across the set: all tuples are equal,
    // hence mutually non-dominating.
    sfs(rel, &ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::relation::{toy_dataset, toy_id};
    use drtopk_common::{Distribution, WorkloadSpec};

    #[test]
    fn toy_skyline_matches_fig_2a() {
        let r = toy_dataset();
        let all: Vec<TupleId> = (0..r.len() as TupleId).collect();
        let want: Vec<TupleId> = {
            let mut v: Vec<TupleId> = ['a', 'b', 'c', 'f', 'g']
                .iter()
                .map(|&c| toy_id(c))
                .collect();
            v.sort_unstable();
            v
        };
        for algo in [
            SkylineAlgo::Naive,
            SkylineAlgo::Bnl,
            SkylineAlgo::Sfs,
            SkylineAlgo::BSkyTree,
        ] {
            assert_eq!(algo.run(&r, &all), want, "{algo:?}");
        }
    }

    #[test]
    fn all_algorithms_agree() {
        for dist in [
            Distribution::Independent,
            Distribution::AntiCorrelated,
            Distribution::Correlated,
        ] {
            for d in 2..=5 {
                let rel = WorkloadSpec::new(dist, d, 400, 13).generate();
                let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
                let reference = naive(&rel, &all);
                assert!(!reference.is_empty());
                assert_eq!(bnl(&rel, &all), reference, "BNL {dist:?} d={d}");
                assert_eq!(sfs(&rel, &all), reference, "SFS {dist:?} d={d}");
                assert_eq!(bskytree(&rel, &all), reference, "BSkyTree {dist:?} d={d}");
                assert_eq!(dnc(&rel, &all), reference, "DnC {dist:?} d={d}");
            }
        }
    }

    #[test]
    fn skyline_of_subset() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 5).generate();
        let subset: Vec<TupleId> = (0..200).filter(|i| i % 3 == 0).collect();
        let got = bskytree(&rel, &subset);
        assert_eq!(got, naive(&rel, &subset));
        assert!(got.iter().all(|id| subset.contains(id)));
    }

    #[test]
    fn duplicates_all_survive() {
        let rel = drtopk_common::Relation::from_rows(
            2,
            &[
                vec![0.5, 0.5],
                vec![0.5, 0.5],
                vec![0.9, 0.9],
                vec![0.2, 0.7],
            ],
        )
        .unwrap();
        let all: Vec<TupleId> = (0..4).collect();
        for algo in [
            SkylineAlgo::Naive,
            SkylineAlgo::Bnl,
            SkylineAlgo::Sfs,
            SkylineAlgo::BSkyTree,
        ] {
            assert_eq!(algo.run(&rel, &all), vec![0, 1, 3], "{algo:?}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 5, 1).generate();
        for algo in [
            SkylineAlgo::Naive,
            SkylineAlgo::Bnl,
            SkylineAlgo::Sfs,
            SkylineAlgo::BSkyTree,
        ] {
            assert!(algo.run(&rel, &[]).is_empty());
            assert_eq!(algo.run(&rel, &[3]), vec![3]);
        }
    }

    #[test]
    fn skyline_members_are_not_dominated() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 600, 77).generate();
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let sky = bskytree(&rel, &all);
        for &s in &sky {
            for &t in &all {
                assert!(!dominates(rel.tuple(t), rel.tuple(s)));
            }
        }
        // Completeness: every non-member is dominated by some member.
        for &t in &all {
            if !sky.contains(&t) {
                assert!(sky.iter().any(|&s| dominates(rel.tuple(s), rel.tuple(t))));
            }
        }
    }
}
