//! Sorted-list substrate and the Threshold Algorithm (TA).
//!
//! The hybrid-layer index (HL/HL+) stores each convex layer as `d`
//! attribute-sorted lists and answers queries with TA-style sorted access
//! (Fagin, Lotem & Naor). This crate provides the sorted-list structure,
//! a resumable TA cursor, and a whole-relation TA top-k baseline.

pub mod nra;
pub mod sorted;
pub mod ta;

pub use nra::nra_topk;
pub use sorted::SortedLists;
pub use ta::{ta_topk, TaCursor};
