//! The Threshold Algorithm (TA) over sorted lists.
//!
//! TA performs round-robin *sorted access* over the `d` attribute lists;
//! each newly seen tuple is fully scored (a *random access*, which is what
//! the paper's cost metric counts), and the running threshold
//! `τ = Σ w_i · v_i` over the last-read list values lower-bounds every
//! unseen tuple's score. Once the k-th best seen score is ≤ τ, the answer
//! is final.

use crate::sorted::SortedLists;
use drtopk_common::weights::ScoredTuple;
use drtopk_common::{Cost, Relation, TupleId, Weights};

/// A resumable TA cursor over one [`SortedLists`] instance.
///
/// The hybrid-layer index drives one cursor per layer, interleaving rounds
/// across layers (HL+); the whole-relation baseline drives a single cursor.
#[derive(Debug, Clone)]
pub struct TaCursor {
    depth: usize,
    last_vals: Vec<f64>,
}

impl TaCursor {
    /// A cursor positioned before the first entry.
    pub fn new(dims: usize) -> Self {
        TaCursor {
            depth: 0,
            last_vals: vec![0.0; dims],
        }
    }

    /// Whether every list has been fully read.
    pub fn exhausted(&self, lists: &SortedLists) -> bool {
        self.depth >= lists.len()
    }

    /// TA's lower bound on the score of any tuple not yet seen via this
    /// cursor. Before the first step this is the best possible score (0);
    /// after exhaustion it is `+∞` (nothing unseen remains).
    pub fn threshold(&self, lists: &SortedLists, w: &Weights) -> f64 {
        if self.exhausted(lists) {
            f64::INFINITY
        } else {
            w.score(&self.last_vals)
        }
    }

    /// Performs one sorted-access round: reads the next entry of each list,
    /// scoring tuples not yet marked in `seen` (marking them) and pushing
    /// their scores to `out`. Each scoring increments `cost`.
    pub fn step(
        &mut self,
        lists: &SortedLists,
        rel: &Relation,
        w: &Weights,
        seen: &mut [bool],
        out: &mut Vec<ScoredTuple>,
        cost: &mut Cost,
    ) {
        if self.exhausted(lists) {
            return;
        }
        for attr in 0..lists.dims() {
            if let Some((v, id)) = lists.entry(attr, self.depth) {
                self.last_vals[attr] = v;
                if !seen[id as usize] {
                    seen[id as usize] = true;
                    cost.tick();
                    out.push(ScoredTuple {
                        score: w.score(rel.tuple(id)),
                        id,
                    });
                }
            }
        }
        self.depth += 1;
    }
}

/// Whole-relation TA top-k: the classic list-based baseline.
///
/// Returns the exact top-k (ties by id) and the number of tuples scored.
pub fn ta_topk(rel: &Relation, w: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
    let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
    let lists = SortedLists::build(rel, &ids);
    let mut cursor = TaCursor::new(rel.dims());
    let mut seen = vec![false; rel.len()];
    let mut cost = Cost::new();
    let mut candidates: Vec<ScoredTuple> = Vec::new();
    let mut buf: Vec<ScoredTuple> = Vec::new();
    let k_eff = k.min(rel.len());
    if k_eff == 0 {
        return (Vec::new(), cost);
    }
    loop {
        buf.clear();
        cursor.step(&lists, rel, w, &mut seen, &mut buf, &mut cost);
        candidates.append(&mut buf);
        // Prune to the best k: anything worse than the current k-th best
        // can never re-enter the answer.
        candidates.sort_unstable();
        candidates.truncate(k_eff);
        let tau = cursor.threshold(&lists, w);
        let done = (candidates.len() >= k_eff && candidates[k_eff - 1].score <= tau)
            || cursor.exhausted(&lists);
        if done {
            return (candidates.iter().map(|s| s.id).collect(), cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(31);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 400, 17).generate();
                for k in [1, 5, 25] {
                    let w = Weights::random(d, &mut rng);
                    let (got, cost) = ta_topk(&rel, &w, k);
                    assert_eq!(got, topk_bruteforce(&rel, &w, k), "{dist:?} d={d} k={k}");
                    assert!(cost.evaluated >= k as u64);
                    assert!(cost.evaluated <= rel.len() as u64);
                }
            }
        }
    }

    #[test]
    fn ta_accesses_fewer_than_n_on_easy_inputs() {
        // On correlated data the best tuples sit at every list's head, so
        // TA should stop long before scanning everything.
        let rel = WorkloadSpec::new(Distribution::Correlated, 3, 2000, 5).generate();
        let w = Weights::uniform(3);
        let (_, cost) = ta_topk(&rel, &w, 10);
        assert!(
            cost.evaluated < 1000,
            "TA scored {} of 2000",
            cost.evaluated
        );
    }

    #[test]
    fn k_edge_cases() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 30, 2).generate();
        let w = Weights::uniform(2);
        assert!(ta_topk(&rel, &w, 0).0.is_empty());
        assert_eq!(ta_topk(&rel, &w, 100).0.len(), 30);
    }

    #[test]
    fn threshold_monotone_nondecreasing() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 9).generate();
        let ids: Vec<TupleId> = (0..200).collect();
        let lists = SortedLists::build(&rel, &ids);
        let w = Weights::uniform(3);
        let mut cursor = TaCursor::new(3);
        let mut seen = vec![false; 200];
        let mut out = Vec::new();
        let mut cost = Cost::new();
        let mut prev = 0.0;
        for _ in 0..200 {
            cursor.step(&lists, &rel, &w, &mut seen, &mut out, &mut cost);
            let tau = cursor.threshold(&lists, &w);
            assert!(tau >= prev - 1e-12);
            prev = tau;
        }
        assert!(cursor.exhausted(&lists));
        assert_eq!(cost.evaluated, 200);
    }
}
