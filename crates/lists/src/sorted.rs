//! Per-attribute sorted lists over a set of tuples.

use drtopk_common::{Relation, TupleId};

/// `d` sorted lists over a tuple subset: list `i` holds `(value, id)` pairs
/// ascending by attribute `i` (ties by id). This is the storage layout of
/// one hybrid-layer index layer.
#[derive(Debug, Clone)]
pub struct SortedLists {
    dims: usize,
    lists: Vec<Vec<(f64, TupleId)>>,
}

impl SortedLists {
    /// Builds the lists for the tuples `ids` of `rel`.
    pub fn build(rel: &Relation, ids: &[TupleId]) -> Self {
        let dims = rel.dims();
        let mut lists = Vec::with_capacity(dims);
        for i in 0..dims {
            let mut l: Vec<(f64, TupleId)> = ids.iter().map(|&id| (rel.tuple(id)[i], id)).collect();
            l.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            lists.push(l);
        }
        SortedLists { dims, lists }
    }

    /// Number of attributes.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of tuples per list.
    #[inline]
    pub fn len(&self) -> usize {
        self.lists.first().map_or(0, |l| l.len())
    }

    /// Whether the lists are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(value, id)` at `depth` in list `attr`, if in range.
    #[inline]
    pub fn entry(&self, attr: usize, depth: usize) -> Option<(f64, TupleId)> {
        self.lists[attr].get(depth).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, WorkloadSpec};

    #[test]
    fn lists_are_sorted_and_complete() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 100, 4).generate();
        let ids: Vec<TupleId> = (0..100).collect();
        let s = SortedLists::build(&rel, &ids);
        assert_eq!(s.dims(), 3);
        assert_eq!(s.len(), 100);
        for a in 0..3 {
            let mut prev = f64::NEG_INFINITY;
            let mut seen = Vec::new();
            for depth in 0..100 {
                let (v, id) = s.entry(a, depth).unwrap();
                assert!(v >= prev);
                assert_eq!(v, rel.tuple(id)[a]);
                prev = v;
                seen.push(id);
            }
            seen.sort_unstable();
            assert_eq!(seen, ids);
            assert!(s.entry(a, 100).is_none());
        }
    }

    #[test]
    fn subset_lists() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 50, 8).generate();
        let ids: Vec<TupleId> = vec![3, 9, 41];
        let s = SortedLists::build(&rel, &ids);
        assert_eq!(s.len(), 3);
    }
}
