//! NRA — No-Random-Access top-k (Fagin, Lotem & Naor).
//!
//! Where TA follows every sorted access with a random access to complete
//! the tuple's score, NRA uses *only* sorted accesses and maintains score
//! intervals per seen tuple. For our minimization convention:
//!
//! * optimistic bound (smallest possible score): the partial sum plus each
//!   missing attribute valued at its list frontier (unseen values can only
//!   be larger);
//! * pessimistic bound: missing attributes valued at the domain maximum 1.
//!
//! The scan stops once k tuples' pessimistic bounds are no larger than
//! every other tuple's optimistic bound (unseen tuples included); those k
//! are exactly the top-k set. Their exact order needs one final scoring
//! pass over the k answers.

use crate::sorted::SortedLists;
use drtopk_common::{Cost, Relation, TupleId, Weights};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Partial {
    /// Weighted sum of the attributes seen so far.
    sum: f64,
    /// Bitmask of lists this tuple has been seen in.
    seen_mask: u32,
}

/// Answers a top-k query via NRA over per-attribute sorted lists.
///
/// Returns `(ids ordered by (score, id), cost)` where cost counts distinct
/// tuples touched by sorted access — NRA's access-cost measure under the
/// paper's Definition 9 reading.
pub fn nra_topk(rel: &Relation, w: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
    assert_eq!(rel.dims(), w.dims());
    let d = rel.dims();
    let n = rel.len();
    let k_eff = k.min(n);
    let mut cost = Cost::new();
    if k_eff == 0 {
        return (Vec::new(), cost);
    }
    let ids: Vec<TupleId> = (0..n as TupleId).collect();
    let lists = SortedLists::build(rel, &ids);
    let ws = w.as_slice();
    let mut partial: HashMap<TupleId, Partial> = HashMap::new();
    let mut frontier = vec![0.0f64; d];
    let mut depth = 0usize;

    loop {
        // One round of sorted access.
        let mut advanced = false;
        for attr in 0..d {
            if let Some((v, id)) = lists.entry(attr, depth) {
                frontier[attr] = v;
                let e = partial.entry(id).or_insert_with(|| {
                    cost.tick();
                    Partial {
                        sum: 0.0,
                        seen_mask: 0,
                    }
                });
                if e.seen_mask & (1 << attr) == 0 {
                    e.seen_mask |= 1 << attr;
                    e.sum += ws[attr] * v;
                }
                advanced = true;
            }
        }
        depth += 1;
        let exhausted = !advanced;

        // Bounds.
        let unseen_lb: f64 = ws.iter().zip(&frontier).map(|(w, f)| w * f).sum();
        let bound_of = |p: &Partial| -> (f64, f64) {
            let mut lb = p.sum;
            let mut ub = p.sum;
            for attr in 0..d {
                if p.seen_mask & (1 << attr) == 0 {
                    lb += ws[attr] * frontier[attr];
                    ub += ws[attr]; // value at most 1
                }
            }
            (lb, ub)
        };
        // Check the stopping rule only when enough tuples were seen.
        if partial.len() >= k_eff {
            let mut entries: Vec<(f64, f64, TupleId)> = partial
                .iter()
                .map(|(&id, p)| {
                    let (lb, ub) = bound_of(p);
                    (ub, lb, id)
                })
                .collect();
            // k smallest pessimistic bounds are the candidate answer set.
            entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.2.cmp(&b.2)));
            let (top, rest) = entries.split_at(k_eff);
            let worst_top_ub = top.last().map(|e| e.0).unwrap();
            let rest_min_lb = rest
                .iter()
                .map(|e| e.1)
                .fold(f64::INFINITY, f64::min)
                .min(if exhausted { f64::INFINITY } else { unseen_lb });
            if worst_top_ub <= rest_min_lb || exhausted {
                // Final exact ordering of the answer set. When the lists
                // are exhausted every tuple is fully seen, so the interval
                // test is exact in that case too.
                let mut answers: Vec<(f64, TupleId)> = top
                    .iter()
                    .map(|&(_, _, id)| (w.score(rel.tuple(id)), id))
                    .collect();
                answers.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                return (answers.into_iter().map(|(_, id)| id).collect(), cost);
            }
        }
        if exhausted {
            // Fewer than k distinct tuples exist (k_eff > seen can only
            // happen on duplicates — impossible since every tuple appears
            // in every list; defensive break).
            let mut answers: Vec<(f64, TupleId)> = partial
                .keys()
                .map(|&id| (w.score(rel.tuple(id)), id))
                .collect();
            answers.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            answers.truncate(k_eff);
            return (answers.into_iter().map(|(_, id)| id).collect(), cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(77);
        for dist in [
            Distribution::Independent,
            Distribution::AntiCorrelated,
            Distribution::Correlated,
        ] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 300, 15).generate();
                for k in [1, 5, 20] {
                    let w = Weights::random(d, &mut rng);
                    let (got, cost) = nra_topk(&rel, &w, k);
                    assert_eq!(got, topk_bruteforce(&rel, &w, k), "{dist:?} d={d} k={k}");
                    assert!(cost.evaluated <= rel.len() as u64);
                }
            }
        }
    }

    #[test]
    fn stops_early_on_correlated_data() {
        let rel = WorkloadSpec::new(Distribution::Correlated, 3, 3000, 2).generate();
        let w = Weights::uniform(3);
        let (_, cost) = nra_topk(&rel, &w, 5);
        assert!(
            cost.evaluated < 1500,
            "NRA touched {} of 3000",
            cost.evaluated
        );
    }

    #[test]
    fn k_edge_cases() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 25, 4).generate();
        let w = Weights::uniform(2);
        assert!(nra_topk(&rel, &w, 0).0.is_empty());
        assert_eq!(nra_topk(&rel, &w, 100).0, topk_bruteforce(&rel, &w, 25));
    }
}
