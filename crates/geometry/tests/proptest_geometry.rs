//! Randomized property tests for the geometry substrate: QuickHull
//! containment and facet sanity, LP optimality/feasibility, convex-skyline
//! membership against the definitional LP oracle, and the 2-d chain
//! against it too. Seeded loops stand in for a property-testing framework
//! (the build is offline); every case is deterministic per seed.

use drtopk_common::{Relation, TupleId};
use drtopk_geometry::csky::{convex_skyline, hull_vertices};
use drtopk_geometry::hull2d::lower_left_chain;
use drtopk_geometry::hulldd::quickhull;
use drtopk_geometry::lp::{Cmp, LpOutcome, Simplex};
use drtopk_geometry::GEOM_EPS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Arbitrary point cloud: d in dmin..=dmax, n in 10..=120, coords in [0,1).
fn arb_points(rng: &mut StdRng, dmin: usize, dmax: usize) -> (usize, Vec<f64>) {
    let d = rng.gen_range(dmin..=dmax);
    let n = rng.gen_range(10usize..=120);
    let pts: Vec<f64> = (0..d * n).map(|_| rng.gen_range(0.0..1.0f64)).collect();
    (d, pts)
}

#[test]
fn quickhull_contains_all_points() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x6E0_0000 + case);
        let (d, pts) = arb_points(&mut rng, 2, 5);
        match quickhull(&pts, d, GEOM_EPS) {
            Ok(hull) => {
                let n = pts.len() / d;
                assert!(!hull.facets.is_empty(), "case {case}");
                for f in &hull.facets {
                    assert_eq!(f.vertices.len(), d, "case {case}");
                    let norm = dot(&f.normal, &f.normal).sqrt();
                    assert!((norm - 1.0).abs() < 1e-9, "case {case}: unit normal");
                    for i in 0..n {
                        let p = &pts[i * d..(i + 1) * d];
                        assert!(
                            dot(&f.normal, p) <= f.offset + 1e-6,
                            "case {case}: point {i} above a facet"
                        );
                    }
                    // Facet vertices lie on the plane.
                    for &v in &f.vertices {
                        let p = &pts[v as usize * d..(v as usize + 1) * d];
                        assert!((dot(&f.normal, p) - f.offset).abs() < 1e-6, "case {case}");
                    }
                }
                // Vertices are a subset of the input ids.
                for &v in &hull.vertices {
                    assert!((v as usize) < n, "case {case}");
                }
            }
            Err(_) => {
                // Degenerate input (possible for tiny n); nothing to check.
            }
        }
    }
}

#[test]
fn lp_reports_feasible_optimum() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x6E1_0000 + case);
        let n_vars = rng.gen_range(1usize..=4);
        let n_rows = rng.gen_range(1usize..=5);
        let rows: Vec<(Vec<f64>, f64)> = (0..n_rows)
            .map(|_| {
                let a: Vec<f64> = (0..n_vars).map(|_| rng.gen_range(-3.0..3.0f64)).collect();
                (a, rng.gen_range(0.5..5.0f64))
            })
            .collect();
        let obj: Vec<f64> = (0..n_vars).map(|_| rng.gen_range(-2.0..2.0f64)).collect();
        // Constraints of the form a·x <= b with b > 0: x = 0 is feasible,
        // so the LP is never infeasible; it may be unbounded.
        let mut s = Simplex::maximize(obj.clone());
        for (a, b) in &rows {
            s.constraint(a, Cmp::Le, *b);
        }
        match s.solve() {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x.len(), n_vars, "case {case}");
                for xi in &x {
                    assert!(*xi >= -1e-9, "case {case}: x must be nonnegative");
                }
                for (a, b) in &rows {
                    assert!(dot(a, &x) <= b + 1e-7, "case {case}: constraint violated");
                }
                // Optimum at least as good as the origin (objective 0).
                assert!(value >= -1e-9, "case {case}");
            }
            LpOutcome::Unbounded => {
                // Fine: some direction improves forever. Sanity: at least
                // one objective coefficient is positive.
                assert!(obj.iter().any(|&c| c > 0.0), "case {case}");
            }
            LpOutcome::Infeasible => panic!("case {case}: x=0 is feasible"),
        }
    }
}

#[test]
fn chain_is_exactly_the_lower_left_hull() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x6E2_0000 + case);
        let (_, pts) = arb_points(&mut rng, 2, 2);
        let n = pts.len() / 2;
        let points: Vec<(f64, f64)> = (0..n).map(|i| (pts[i * 2], pts[i * 2 + 1])).collect();
        let chain = lower_left_chain(&points);
        assert!(!chain.is_empty(), "case {case}");
        // (1) Strictly monotone: x increasing, y decreasing along the chain.
        for w in chain.windows(2) {
            assert!(points[w[0]].0 < points[w[1]].0, "case {case}");
            assert!(points[w[0]].1 > points[w[1]].1, "case {case}");
        }
        // (2) Strictly convex turns.
        for w in chain.windows(3) {
            let (a, b, c) = (points[w[0]], points[w[1]], points[w[2]]);
            let cross = (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0);
            assert!(
                cross > 0.0,
                "case {case}: chain must make strict left turns"
            );
        }
        // (3) Endpoints: the chain starts at the min-x frontier and ends at
        // the min-y frontier.
        let min_x = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let min_y = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        assert!((points[chain[0]].0 - min_x).abs() < 1e-12, "case {case}");
        assert!(
            (points[*chain.last().unwrap()].1 - min_y).abs() < 1e-12,
            "case {case}"
        );
        // (4) Completeness: no point lies strictly below the chain.
        for (qi, &q) in points.iter().enumerate() {
            if chain.contains(&qi) {
                continue;
            }
            for w in chain.windows(2) {
                let (a, b) = (points[w[0]], points[w[1]]);
                if q.0 >= a.0 && q.0 <= b.0 {
                    // Signed area: q strictly right of a→b means below the
                    // lower hull — impossible (tolerate the eps the chain
                    // builder itself uses for collinearity).
                    let cross = (b.0 - a.0) * (q.1 - a.1) - (b.1 - a.1) * (q.0 - a.0);
                    assert!(
                        cross >= -1e-9,
                        "case {case}: point {qi} lies strictly below chain segment"
                    );
                }
            }
        }
    }
}

#[test]
fn convex_skyline_always_contains_a_minimizer() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x6E3_0000 + case);
        let (d, pts) = arb_points(&mut rng, 3, 4);
        // The extraction may be a strict subset of the exact convex
        // skyline, but it must always contain a minimizer of the uniform
        // weight (the progress guarantee DL's peeling relies on).
        let rel = Relation::from_flat_unchecked(d, pts.clone());
        let n = rel.len();
        let all: Vec<TupleId> = (0..n as TupleId).collect();
        let cs = convex_skyline(&rel, &all);
        assert!(!cs.members.is_empty(), "case {case}");
        let sum = |t: TupleId| -> f64 { rel.tuple(t).iter().sum() };
        let best = (0..n as TupleId).map(sum).fold(f64::INFINITY, f64::min);
        assert!(
            cs.members
                .iter()
                .any(|&p| (sum(all[p as usize]) - best).abs() < 1e-12),
            "case {case}: uniform-weight minimizer missing from the convex skyline"
        );
    }
}

#[test]
fn hull_vertex_layer_is_superset_of_convex_skyline() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x6E4_0000 + case);
        let (d, pts) = arb_points(&mut rng, 3, 4);
        let rel = Relation::from_flat_unchecked(d, pts.clone());
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        if let Some(fat) = hull_vertices(&rel, &all) {
            let cs = convex_skyline(&rel, &all);
            for m in &cs.members {
                // Fast extraction adds the uniform minimizer explicitly,
                // which is also always a hull vertex.
                assert!(
                    fat.contains(m),
                    "case {case}: convex-skyline member {m} missing from the fat hull layer"
                );
            }
        }
    }
}
