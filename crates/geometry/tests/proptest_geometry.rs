//! Property-based tests for the geometry substrate: QuickHull containment
//! and facet sanity, LP optimality/feasibility, convex-skyline membership
//! against the definitional LP oracle, and the 2-d chain against it too.

use drtopk_common::{Relation, TupleId};
use drtopk_geometry::csky::{convex_skyline, hull_vertices};
use drtopk_geometry::hull2d::lower_left_chain;
use drtopk_geometry::hulldd::quickhull;
use drtopk_geometry::lp::{Cmp, LpOutcome, Simplex};
use drtopk_geometry::GEOM_EPS;
use proptest::prelude::*;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn arb_points(dmin: usize, dmax: usize) -> impl Strategy<Value = (usize, Vec<f64>)> {
    (dmin..=dmax, 10usize..=120).prop_flat_map(|(d, n)| {
        proptest::collection::vec(0.0f64..1.0, d * n).prop_map(move |pts| (d, pts))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quickhull_contains_all_points((d, pts) in arb_points(2, 5)) {
        match quickhull(&pts, d, GEOM_EPS) {
            Ok(hull) => {
                let n = pts.len() / d;
                prop_assert!(!hull.facets.is_empty());
                for f in &hull.facets {
                    prop_assert_eq!(f.vertices.len(), d);
                    let norm = dot(&f.normal, &f.normal).sqrt();
                    prop_assert!((norm - 1.0).abs() < 1e-9, "unit normal");
                    for i in 0..n {
                        let p = &pts[i * d..(i + 1) * d];
                        prop_assert!(
                            dot(&f.normal, p) <= f.offset + 1e-6,
                            "point {} above a facet", i
                        );
                    }
                    // Facet vertices lie on the plane.
                    for &v in &f.vertices {
                        let p = &pts[v as usize * d..(v as usize + 1) * d];
                        prop_assert!((dot(&f.normal, p) - f.offset).abs() < 1e-6);
                    }
                }
                // Vertices are a subset of the input ids.
                for &v in &hull.vertices {
                    prop_assert!((v as usize) < n);
                }
            }
            Err(_) => {
                // Degenerate input (possible for tiny n); nothing to check.
            }
        }
    }

    #[test]
    fn lp_reports_feasible_optimum(
        n_vars in 1usize..=4,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-3.0f64..3.0, 4), 0.5f64..5.0),
            1..=5
        ),
        obj in proptest::collection::vec(-2.0f64..2.0, 4),
    ) {
        // Constraints of the form a·x <= b with b > 0: x = 0 is feasible,
        // so the LP is never infeasible; it may be unbounded.
        let mut s = Simplex::maximize(obj[..n_vars].to_vec());
        for (a, b) in &rows {
            s.constraint(&a[..n_vars], Cmp::Le, *b);
        }
        match s.solve() {
            LpOutcome::Optimal { x, value } => {
                prop_assert_eq!(x.len(), n_vars);
                for xi in &x {
                    prop_assert!(*xi >= -1e-9, "x must be nonnegative");
                }
                for (a, b) in &rows {
                    prop_assert!(dot(&a[..n_vars], &x) <= b + 1e-7, "constraint violated");
                }
                // Optimum at least as good as the origin (objective 0).
                prop_assert!(value >= -1e-9);
            }
            LpOutcome::Unbounded => {
                // Fine: some direction improves forever. Sanity: at least
                // one objective coefficient is positive.
                prop_assert!(obj[..n_vars].iter().any(|&c| c > 0.0));
            }
            LpOutcome::Infeasible => prop_assert!(false, "x=0 is feasible"),
        }
    }

    #[test]
    fn chain_is_exactly_the_lower_left_hull((_, pts) in arb_points(2, 2)) {
        let n = pts.len() / 2;
        let points: Vec<(f64, f64)> = (0..n).map(|i| (pts[i * 2], pts[i * 2 + 1])).collect();
        let chain = lower_left_chain(&points);
        prop_assert!(!chain.is_empty());
        // (1) Strictly monotone: x increasing, y decreasing along the chain.
        for w in chain.windows(2) {
            prop_assert!(points[w[0]].0 < points[w[1]].0);
            prop_assert!(points[w[0]].1 > points[w[1]].1);
        }
        // (2) Strictly convex turns.
        for w in chain.windows(3) {
            let (a, b, c) = (points[w[0]], points[w[1]], points[w[2]]);
            let cross = (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0);
            prop_assert!(cross > 0.0, "chain must make strict left turns");
        }
        // (3) Endpoints: the chain starts at the min-x frontier and ends at
        // the min-y frontier.
        let min_x = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let min_y = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        prop_assert!((points[chain[0]].0 - min_x).abs() < 1e-12);
        prop_assert!((points[*chain.last().unwrap()].1 - min_y).abs() < 1e-12);
        // (4) Completeness: no point lies strictly below the chain.
        for (qi, &q) in points.iter().enumerate() {
            if chain.contains(&qi) {
                continue;
            }
            for w in chain.windows(2) {
                let (a, b) = (points[w[0]], points[w[1]]);
                if q.0 >= a.0 && q.0 <= b.0 {
                    // Signed area: q strictly right of a→b means below the
                    // lower hull — impossible (tolerate the eps the chain
                    // builder itself uses for collinearity).
                    let cross = (b.0 - a.0) * (q.1 - a.1) - (b.1 - a.1) * (q.0 - a.0);
                    prop_assert!(
                        cross >= -1e-9,
                        "point {} lies strictly below chain segment", qi
                    );
                }
            }
        }
    }

    #[test]
    fn convex_skyline_always_contains_a_minimizer((d, pts) in arb_points(3, 4)) {
        // The extraction may be a strict subset of the exact convex
        // skyline, but it must always contain a minimizer of the uniform
        // weight (the progress guarantee DL's peeling relies on).
        let rel = Relation::from_flat_unchecked(d, pts.clone());
        let n = rel.len();
        let all: Vec<TupleId> = (0..n as TupleId).collect();
        let cs = convex_skyline(&rel, &all);
        prop_assert!(!cs.members.is_empty());
        let sum = |t: TupleId| -> f64 { rel.tuple(t).iter().sum() };
        let best = (0..n as TupleId).map(sum).fold(f64::INFINITY, f64::min);
        prop_assert!(
            cs.members.iter().any(|&p| (sum(all[p as usize]) - best).abs() < 1e-12),
            "uniform-weight minimizer missing from the convex skyline"
        );
    }

    #[test]
    fn hull_vertex_layer_is_superset_of_convex_skyline((d, pts) in arb_points(3, 4)) {
        let rel = Relation::from_flat_unchecked(d, pts.clone());
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        if let Some(fat) = hull_vertices(&rel, &all) {
            let cs = convex_skyline(&rel, &all);
            for m in &cs.members {
                // Fast extraction adds the uniform minimizer explicitly,
                // which is also always a hull vertex.
                prop_assert!(
                    fat.contains(m),
                    "convex-skyline member {} missing from the fat hull layer", m
                );
            }
        }
    }
}
