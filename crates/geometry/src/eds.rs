//! The ∃-dominance-set test (Definitions 5–6 of the paper).
//!
//! A facet — a set of up to `d` tuples spanning a hyperplane segment — is
//! an ∃-dominance set of a tuple `t'` iff some *virtual tuple* on the
//! segment (a convex combination of the facet's tuples) dominates `t'`.
//! Soundness of the resulting edges: if `v = Σ λ_j t^j` dominates `t'`,
//! then for every strictly positive weight vector `w`,
//! `min_j F(t^j) ≤ F(v) < F(t')` — so at least one facet member always
//! precedes `t'` in score order, which is exactly what Lemma 2 needs.

use crate::lp::{Cmp, LpOutcome, Simplex};
use drtopk_common::{dominates, dominates_eq, Relation, TupleId};

/// Decides whether the facet `facet` (tuple ids) is an ∃-dominance set of
/// tuple `target`: does `conv(facet)` contain a point dominating `target`?
#[allow(clippy::needless_range_loop)] // per-dimension mins are indexed against two arrays
pub fn facet_is_eds(rel: &Relation, facet: &[TupleId], target: TupleId) -> bool {
    let d = rel.dims();
    let t = rel.tuple(target);

    // Fast necessary condition: the facet's min-corner must weakly dominate
    // the target (every convex combination is >= the min-corner).
    for i in 0..d {
        let min_i = facet
            .iter()
            .map(|&f| rel.tuple(f)[i])
            .fold(f64::INFINITY, f64::min);
        if min_i > t[i] {
            return false;
        }
    }
    // Fast sufficient condition: a facet member itself dominates the target
    // (λ = a unit vector).
    for &f in facet {
        if dominates(rel.tuple(f), t) {
            return true;
        }
    }
    if facet.len() == 1 {
        // Single-member "facet": only the member itself is on the segment.
        return false;
    }
    if d == 2 {
        return segment_eds_2d(rel, facet, t);
    }

    // General case: maximize total slack Σ s_i subject to
    //   Σ_j λ_j t^j_i + s_i = t'_i   (i = 1..d)
    //   Σ_j λ_j = 1, λ ≥ 0, s ≥ 0.
    // Feasible with positive optimum ⇔ a strictly dominating virtual tuple
    // exists (zero optimum means the only candidate equals t').
    let m = facet.len();
    let mut obj = vec![0.0; m + d];
    for o in obj[m..].iter_mut() {
        *o = 1.0;
    }
    let mut s = Simplex::maximize(obj);
    for i in 0..d {
        let mut row = vec![0.0; m + d];
        for (j, &f) in facet.iter().enumerate() {
            row[j] = rel.tuple(f)[i];
        }
        row[m + i] = 1.0;
        s.constraint(&row, Cmp::Eq, t[i]);
    }
    let mut conv = vec![0.0; m + d];
    for c in conv[..m].iter_mut() {
        *c = 1.0;
    }
    s.constraint(&conv, Cmp::Eq, 1.0);
    match s.solve() {
        LpOutcome::Optimal { value, .. } => value > 1e-9,
        _ => false,
    }
}

/// Exact 2-d special case: does the segment between the facet's extreme
/// points intersect the open dominance region `{x ≤ t', x ≠ t'}`?
#[allow(clippy::needless_range_loop)] // the k loop zips three parallel pairs
fn segment_eds_2d(rel: &Relation, facet: &[TupleId], t: &[f64]) -> bool {
    // With more than two members (possible via degenerate fallbacks), the
    // convex hull of collinear points is the segment between the two
    // lexicographic extremes; for the exact chain facets it is just a pair.
    let (mut a, mut b) = {
        let p = rel.tuple(facet[0]);
        ((p[0], p[1]), (p[0], p[1]))
    };
    for &f in facet {
        let p = rel.tuple(f);
        if (p[0], p[1]) < (a.0, a.1) {
            a = (p[0], p[1]);
        }
        if (p[0], p[1]) > (b.0, b.1) {
            b = (p[0], p[1]);
        }
    }
    // Clamp the segment parameter to the sub-range where x ≤ t'_x and
    // y ≤ t'_y; nonempty range with a strictly-dominating point => EDS.
    // Parameterize p(λ) = a + λ(b-a), λ ∈ [0,1].
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for k in 0..2 {
        let (s, e, bound) = (
            if k == 0 { a.0 } else { a.1 },
            if k == 0 { b.0 } else { b.1 },
            t[k],
        );
        let delta = e - s;
        if delta.abs() < 1e-15 {
            if s > bound {
                return false;
            }
        } else {
            let lim = (bound - s) / delta;
            if delta > 0.0 {
                hi = hi.min(lim);
            } else {
                lo = lo.max(lim);
            }
        }
    }
    lo = lo.max(0.0);
    hi = hi.min(1.0);
    if lo > hi + 1e-12 {
        return false;
    }
    // A feasible λ exists; ensure the point is not exactly t' (strictness).
    let lam = 0.5 * (lo + hi);
    let px = a.0 + lam * (b.0 - a.0);
    let py = a.1 + lam * (b.1 - a.1);
    dominates_eq(&[px, py], t) && (px < t[0] || py < t[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::relation::{toy_dataset, toy_id};

    #[test]
    fn toy_example_2_facet_ab_is_eds_of_f() {
        let r = toy_dataset();
        assert!(facet_is_eds(&r, &[toy_id('a'), toy_id('b')], toy_id('f')));
    }

    #[test]
    fn toy_facet_bc_is_eds_of_g_but_not_of_f() {
        let r = toy_dataset();
        assert!(facet_is_eds(&r, &[toy_id('b'), toy_id('c')], toy_id('g')));
        assert!(!facet_is_eds(&r, &[toy_id('b'), toy_id('c')], toy_id('f')));
    }

    #[test]
    fn toy_facet_ab_is_not_eds_of_g() {
        // The segment a-b never drops below g's y coordinate.
        let r = toy_dataset();
        assert!(!facet_is_eds(&r, &[toy_id('a'), toy_id('b')], toy_id('g')));
    }

    #[test]
    fn member_dominating_target_is_eds() {
        let r = toy_dataset();
        // a dominates d, so any facet containing a is an EDS of d.
        assert!(facet_is_eds(&r, &[toy_id('a'), toy_id('b')], toy_id('d')));
    }

    #[test]
    fn lp_path_3d() {
        use drtopk_common::Relation;
        // Facet {(0.1,0.5,0.5), (0.5,0.1,0.5), (0.5,0.5,0.1)}: its centroid
        // (0.367, 0.367, 0.367) dominates (0.4, 0.4, 0.4) but nothing on the
        // triangle dominates (0.2, 0.2, 0.2).
        let rel = Relation::from_rows(
            3,
            &[
                vec![0.1, 0.5, 0.5],
                vec![0.5, 0.1, 0.5],
                vec![0.5, 0.5, 0.1],
                vec![0.4, 0.4, 0.4],
                vec![0.2, 0.2, 0.2],
            ],
        )
        .unwrap();
        assert!(facet_is_eds(&rel, &[0, 1, 2], 3));
        assert!(!facet_is_eds(&rel, &[0, 1, 2], 4));
    }

    #[test]
    fn strictness_boundary() {
        use drtopk_common::Relation;
        // The target lies exactly on the segment: the only weakly-dominating
        // virtual point equals the target, so this is NOT an EDS.
        let rel =
            Relation::from_rows(2, &[vec![0.2, 0.6], vec![0.6, 0.2], vec![0.4, 0.4]]).unwrap();
        assert!(!facet_is_eds(&rel, &[0, 1], 2));
        // Nudging the target up makes it an EDS.
        let rel2 =
            Relation::from_rows(2, &[vec![0.2, 0.6], vec![0.6, 0.2], vec![0.41, 0.41]]).unwrap();
        assert!(facet_is_eds(&rel2, &[0, 1], 2));
    }

    #[test]
    fn single_member_facet() {
        use drtopk_common::Relation;
        let rel =
            Relation::from_rows(2, &[vec![0.3, 0.3], vec![0.5, 0.5], vec![0.3, 0.3]]).unwrap();
        assert!(facet_is_eds(&rel, &[0], 1), "member dominates target");
        assert!(
            !facet_is_eds(&rel, &[0], 2),
            "identical point does not dominate"
        );
    }

    #[test]
    fn lp_agrees_with_grid_search_2d() {
        use drtopk_common::Relation;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let rows: Vec<Vec<f64>> = (0..3)
                .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
                .collect();
            let rel = Relation::from_rows(2, &rows).unwrap();
            let got = facet_is_eds(&rel, &[0, 1], 2);
            // Dense grid search over λ as an oracle.
            let a = rel.tuple(0);
            let b = rel.tuple(1);
            let t = rel.tuple(2);
            let mut want = false;
            for step in 0..=1000 {
                let lam = step as f64 / 1000.0;
                let p = [a[0] + lam * (b[0] - a[0]), a[1] + lam * (b[1] - a[1])];
                if dominates(&p, t) {
                    want = true;
                    break;
                }
            }
            if got != want {
                // The grid can miss razor-thin feasible windows; re-check
                // with the exact predicate before failing.
                assert!(
                    got,
                    "test oracle found a dominating point the code missed: {rows:?}"
                );
            }
        }
    }
}
