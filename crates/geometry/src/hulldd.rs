//! General d-dimensional convex hull (QuickHull with conflict lists).
//!
//! Produces the hull's vertex set and facets (d vertices, outward unit
//! normal, offset) with facet adjacency maintained during construction —
//! the beneath–beyond structure QuickHull needs to walk horizons.
//!
//! The convex-skyline extraction in [`crate::csky`] consumes only the
//! *origin-facing* facets (outward normal strictly negative in every
//! component); per the soundness argument in DESIGN.md, downstream index
//! correctness never depends on this hull being exact, so near-coplanar
//! points may be conservatively classified as non-vertices.

/// One hull facet: `d` vertex indices into the input point array, plus the
/// supporting hyperplane `normal · x = offset` with `normal` the outward
/// unit vector (`normal · interior < offset`).
#[derive(Debug, Clone)]
pub struct Facet {
    pub vertices: Vec<u32>,
    pub normal: Vec<f64>,
    pub offset: f64,
}

/// Convex hull output: vertex indices (sorted, deduplicated) and facets.
#[derive(Debug, Clone)]
pub struct Hull {
    pub vertices: Vec<u32>,
    pub facets: Vec<Facet>,
}

/// Why a hull could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HullError {
    /// Fewer than d+1 points, or all points within `eps` of a common
    /// affine subspace of dimension < d.
    Degenerate,
    /// Dimensionality below 2 (1-d "hulls" are just min/max).
    BadDimension,
}

struct FacetData {
    verts: Vec<u32>,
    normal: Vec<f64>,
    offset: f64,
    neighbors: Vec<u32>,
    conflicts: Vec<u32>,
    alive: bool,
}

/// Computes the convex hull of `points` (flat row-major, `dims` columns).
///
/// `eps` is the visibility tolerance: a point within `eps` of a facet's
/// plane is treated as on/below it. [`crate::GEOM_EPS`] is a good default for
/// unit-scale data.
pub fn quickhull(points: &[f64], dims: usize, eps: f64) -> Result<Hull, HullError> {
    if dims < 2 {
        return Err(HullError::BadDimension);
    }
    let n = points.len() / dims;
    debug_assert_eq!(points.len(), n * dims);
    if n < dims + 1 {
        return Err(HullError::Degenerate);
    }
    let pt = |i: u32| -> &[f64] { &points[i as usize * dims..(i as usize + 1) * dims] };

    let simplex = initial_simplex(points, dims, eps).ok_or(HullError::Degenerate)?;

    // Interior reference point: simplex centroid.
    let mut interior = vec![0.0; dims];
    for &v in &simplex {
        for (acc, &x) in interior.iter_mut().zip(pt(v)) {
            *acc += x;
        }
    }
    for x in &mut interior {
        *x /= (dims + 1) as f64;
    }

    let mut facets: Vec<FacetData> = Vec::new();
    // The d+1 simplex facets: leave one vertex out each.
    for leave in 0..=dims {
        let verts: Vec<u32> = simplex
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != leave)
            .map(|(_, &v)| v)
            .collect();
        let (normal, offset) =
            plane_through(points, dims, &verts, &interior).ok_or(HullError::Degenerate)?;
        facets.push(FacetData {
            verts,
            normal,
            offset,
            neighbors: Vec::new(),
            conflicts: Vec::new(),
            alive: true,
        });
    }
    // Simplex facets are mutually adjacent.
    for i in 0..facets.len() {
        facets[i].neighbors = (0..facets.len() as u32)
            .filter(|&j| j as usize != i)
            .collect();
    }

    // Initial conflict assignment.
    let in_simplex = |i: u32| simplex.contains(&i);
    let mut pending: Vec<u32> = Vec::new();
    for i in 0..n as u32 {
        if in_simplex(i) {
            continue;
        }
        let p = pt(i);
        let mut assigned = false;
        for (fi, f) in facets.iter_mut().enumerate() {
            if dist(f, p) > eps {
                f.conflicts.push(i);
                if f.conflicts.len() == 1 {
                    pending.push(fi as u32);
                }
                assigned = true;
                break;
            }
        }
        let _ = assigned; // unassigned => interior point, dropped
    }

    // Main loop: expand the hull by the furthest conflict point of some
    // facet, replacing the visible region with a cone of new facets.
    //
    // Near-duplicate point clusters can drive eps-inconsistent horizon
    // walks into combinatorial facet blow-up (or non-termination). A hull
    // of n points in general position has far fewer than `n^(d/2) + 16n·d`
    // facets; crossing that budget means the geometry is degenerate
    // beyond what this tolerance-based algorithm can handle, so we bail
    // to the callers' sound fallbacks instead of hanging.
    let facet_budget = ((n as f64).powf(dims as f64 / 2.0) as usize)
        .saturating_add(16 * n * dims)
        .saturating_add(1024);
    let mut visible: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut seen: Vec<bool> = Vec::new();
    while let Some(fi) = pending.pop() {
        if facets.len() > facet_budget {
            return Err(HullError::Degenerate);
        }
        let f = &facets[fi as usize];
        if !f.alive || f.conflicts.is_empty() {
            continue;
        }
        // Furthest conflict point (QuickHull's choice aids robustness).
        let mut p_idx = f.conflicts[0];
        let mut p_dist = dist(f, pt(p_idx));
        for &c in &f.conflicts[1..] {
            let d = dist(f, pt(c));
            if d > p_dist {
                p_idx = c;
                p_dist = d;
            }
        }
        let p = pt(p_idx);

        // BFS over facets visible from p.
        visible.clear();
        stack.clear();
        seen.clear();
        seen.resize(facets.len(), false);
        stack.push(fi);
        seen[fi as usize] = true;
        while let Some(g) = stack.pop() {
            let gf = &facets[g as usize];
            if !gf.alive || dist(gf, p) <= eps {
                continue;
            }
            visible.push(g);
            for &nb in &facets[g as usize].neighbors {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    stack.push(nb);
                }
            }
        }
        if visible.is_empty() {
            continue;
        }

        // Horizon ridges: (visible facet, non-visible neighbor, shared verts).
        let mut horizon: Vec<(u32, Vec<u32>)> = Vec::new(); // (outside facet, ridge)
        for &g in &visible {
            let g_verts = facets[g as usize].verts.clone();
            for nb in facets[g as usize].neighbors.clone() {
                let nbf = &facets[nb as usize];
                if !nbf.alive {
                    continue;
                }
                let nb_visible = dist(nbf, p) > eps;
                if !nb_visible {
                    let ridge: Vec<u32> = g_verts
                        .iter()
                        .copied()
                        .filter(|v| nbf.verts.contains(v))
                        .collect();
                    if ridge.len() == dims - 1 {
                        horizon.push((nb, ridge));
                    }
                }
            }
        }

        // Collect orphaned conflict points, retire visible facets.
        let mut orphans: Vec<u32> = Vec::new();
        for &g in &visible {
            let gf = &mut facets[g as usize];
            gf.alive = false;
            orphans.append(&mut gf.conflicts);
        }
        orphans.retain(|&c| c != p_idx);

        // Build the cone: one new facet per horizon ridge.
        let first_new = facets.len() as u32;
        let mut ok = true;
        for (outside, ridge) in &horizon {
            let mut verts = ridge.clone();
            verts.push(p_idx);
            match plane_through(points, dims, &verts, &interior) {
                Some((normal, offset)) => {
                    let id = facets.len() as u32;
                    facets.push(FacetData {
                        verts,
                        normal,
                        offset,
                        neighbors: vec![*outside],
                        conflicts: Vec::new(),
                        alive: true,
                    });
                    // Patch the outside facet: replace its dead neighbor with us.
                    let of = &mut facets[*outside as usize];
                    let mut patched = false;
                    for slot in &mut of.neighbors {
                        if visible.contains(slot) {
                            *slot = id;
                            patched = true;
                            break;
                        }
                    }
                    if !patched {
                        of.neighbors.push(id);
                    }
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            return Err(HullError::Degenerate);
        }
        let new_ids: Vec<u32> = (first_new..facets.len() as u32).collect();

        // Adjacency among new facets: two cone facets are neighbors iff they
        // share d-1 vertices (their ridges both contain p).
        for a in 0..new_ids.len() {
            for b in (a + 1)..new_ids.len() {
                let (fa, fb) = (new_ids[a], new_ids[b]);
                let shared = facets[fa as usize]
                    .verts
                    .iter()
                    .filter(|v| facets[fb as usize].verts.contains(v))
                    .count();
                if shared == dims - 1 {
                    facets[fa as usize].neighbors.push(fb);
                    facets[fb as usize].neighbors.push(fa);
                }
            }
        }

        // Reassign orphans to the new facets.
        for c in orphans {
            let q = pt(c);
            for &nf in &new_ids {
                if dist(&facets[nf as usize], q) > eps {
                    facets[nf as usize].conflicts.push(c);
                    break;
                }
            }
        }
        for &nf in &new_ids {
            if !facets[nf as usize].conflicts.is_empty() {
                pending.push(nf);
            }
        }
    }

    // Harvest live facets.
    let mut out_facets = Vec::new();
    let mut verts: Vec<u32> = Vec::new();
    for f in facets.into_iter().filter(|f| f.alive) {
        verts.extend_from_slice(&f.verts);
        out_facets.push(Facet {
            vertices: f.verts,
            normal: f.normal,
            offset: f.offset,
        });
    }
    verts.sort_unstable();
    verts.dedup();
    Ok(Hull {
        vertices: verts,
        facets: out_facets,
    })
}

#[inline]
fn dist(f: &FacetData, p: &[f64]) -> f64 {
    dot(&f.normal, p) - f.offset
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Finds d+1 affinely independent points, greedily maximizing spread.
fn initial_simplex(points: &[f64], dims: usize, eps: f64) -> Option<Vec<u32>> {
    let n = points.len() / dims;
    let pt = |i: usize| -> &[f64] { &points[i * dims..(i + 1) * dims] };

    // Seed pair: extremes along the coordinate with the largest spread.
    let mut best: Option<(usize, usize, f64)> = None;
    for d in 0..dims {
        let (mut lo, mut hi) = (0usize, 0usize);
        for i in 1..n {
            if pt(i)[d] < pt(lo)[d] {
                lo = i;
            }
            if pt(i)[d] > pt(hi)[d] {
                hi = i;
            }
        }
        let spread = pt(hi)[d] - pt(lo)[d];
        if best.is_none_or(|(_, _, s)| spread > s) {
            best = Some((lo, hi, spread));
        }
    }
    let (lo, hi, spread) = best?;
    if spread <= eps {
        return None;
    }
    let mut simplex = vec![lo as u32, hi as u32];

    // Orthonormal basis of the current affine span (Gram–Schmidt).
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(dims);
    let origin: Vec<f64> = pt(lo).to_vec();
    let add_basis = |basis: &mut Vec<Vec<f64>>, q: &[f64]| -> bool {
        let mut v: Vec<f64> = q.iter().zip(&origin).map(|(a, b)| a - b).collect();
        for b in basis.iter() {
            let proj = dot(&v, b);
            for (x, y) in v.iter_mut().zip(b) {
                *x -= proj * y;
            }
        }
        let norm = dot(&v, &v).sqrt();
        if norm <= eps {
            return false;
        }
        for x in &mut v {
            *x /= norm;
        }
        basis.push(v);
        true
    };
    assert!(add_basis(&mut basis, pt(hi)));

    while simplex.len() < dims + 1 {
        // Farthest point from the current affine span.
        let mut far: Option<(usize, f64)> = None;
        for i in 0..n {
            if simplex.contains(&(i as u32)) {
                continue;
            }
            let mut v: Vec<f64> = pt(i).iter().zip(&origin).map(|(a, b)| a - b).collect();
            for b in &basis {
                let proj = dot(&v, b);
                for (x, y) in v.iter_mut().zip(b) {
                    *x -= proj * y;
                }
            }
            let d2 = dot(&v, &v);
            if far.is_none_or(|(_, bd)| d2 > bd) {
                far = Some((i, d2));
            }
        }
        let (i, d2) = far?;
        if d2.sqrt() <= eps {
            return None;
        }
        if !add_basis(&mut basis, pt(i)) {
            return None;
        }
        simplex.push(i as u32);
    }
    Some(simplex)
}

/// Computes the hyperplane through `verts` (d points), oriented so that
/// `interior` lies strictly below it. Returns `None` when the points are
/// affinely dependent (normal collapses).
#[allow(clippy::needless_range_loop)] // Gaussian elimination reads clearest with indices
fn plane_through(
    points: &[f64],
    dims: usize,
    verts: &[u32],
    interior: &[f64],
) -> Option<(Vec<f64>, f64)> {
    debug_assert_eq!(verts.len(), dims);
    let pt = |i: u32| -> &[f64] { &points[i as usize * dims..(i as usize + 1) * dims] };
    let p0 = pt(verts[0]);
    // Rows: p_i - p_0, i = 1..d-1. The normal spans their null space.
    let mut m: Vec<Vec<f64>> = verts[1..]
        .iter()
        .map(|&v| pt(v).iter().zip(p0).map(|(a, b)| a - b).collect())
        .collect();
    // Gaussian elimination with partial pivoting to row-echelon form.
    let rows = m.len();
    let mut pivot_cols = Vec::with_capacity(rows);
    let mut r = 0;
    for c in 0..dims {
        if r == rows {
            break;
        }
        // Find pivot.
        let mut best = r;
        for i in (r + 1)..rows {
            if m[i][c].abs() > m[best][c].abs() {
                best = i;
            }
        }
        if m[best][c].abs() < 1e-13 {
            continue;
        }
        m.swap(r, best);
        let piv = m[r][c];
        for x in &mut m[r] {
            *x /= piv;
        }
        for i in 0..rows {
            if i != r {
                let f = m[i][c];
                if f != 0.0 {
                    for j in 0..dims {
                        m[i][j] -= f * m[r][j];
                    }
                }
            }
        }
        pivot_cols.push(c);
        r += 1;
        if r == rows {
            break;
        }
    }
    if r < rows {
        return None; // affinely dependent: no unique normal
    }
    // Free column -> null vector.
    let free = (0..dims).find(|c| !pivot_cols.contains(c))?;
    let mut normal = vec![0.0; dims];
    normal[free] = 1.0;
    for (row, &pc) in pivot_cols.iter().enumerate() {
        normal[pc] = -m[row][free];
    }
    let len = dot(&normal, &normal).sqrt();
    if len < 1e-13 {
        return None;
    }
    for x in &mut normal {
        *x /= len;
    }
    let mut offset = dot(&normal, p0);
    if dot(&normal, interior) > offset {
        for x in &mut normal {
            *x = -*x;
        }
        offset = -offset;
    }
    Some((normal, offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GEOM_EPS;

    fn flat(pts: &[Vec<f64>]) -> Vec<f64> {
        pts.iter().flatten().copied().collect()
    }

    #[test]
    fn cube_3d() {
        // Unit cube corners plus an interior point.
        let mut pts = Vec::new();
        for x in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for z in [0.0, 1.0] {
                    pts.push(vec![x, y, z]);
                }
            }
        }
        pts.push(vec![0.5, 0.5, 0.5]);
        let h = quickhull(&flat(&pts), 3, GEOM_EPS).unwrap();
        assert_eq!(h.vertices, (0..8).collect::<Vec<u32>>());
        // A triangulated cube has 12 facets.
        assert_eq!(h.facets.len(), 12);
        for f in &h.facets {
            // All points on or below each facet plane.
            for p in &pts {
                assert!(dot(&f.normal, p) <= f.offset + 1e-7);
            }
        }
    }

    #[test]
    fn square_2d() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5],
        ];
        let h = quickhull(&flat(&pts), 2, GEOM_EPS).unwrap();
        assert_eq!(h.vertices, vec![0, 1, 2, 3]);
        assert_eq!(h.facets.len(), 4);
    }

    #[test]
    fn degenerate_flat_points() {
        // Collinear points in 2-d.
        let pts = vec![vec![0.0, 0.0], vec![0.5, 0.5], vec![1.0, 1.0]];
        assert!(matches!(
            quickhull(&flat(&pts), 2, GEOM_EPS),
            Err(HullError::Degenerate)
        ));
        // Coplanar points in 3-d.
        let pts3 = vec![
            vec![0.0, 0.0, 0.5],
            vec![1.0, 0.0, 0.5],
            vec![0.0, 1.0, 0.5],
            vec![1.0, 1.0, 0.5],
        ];
        assert!(matches!(
            quickhull(&flat(&pts3), 3, GEOM_EPS),
            Err(HullError::Degenerate)
        ));
    }

    #[test]
    fn too_few_points() {
        let pts = vec![vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]];
        assert!(matches!(
            quickhull(&flat(&pts), 3, GEOM_EPS),
            Err(HullError::Degenerate)
        ));
    }

    #[test]
    fn random_points_all_inside_hull() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for dims in 2..=5 {
            let n = 120;
            let pts: Vec<f64> = (0..n * dims).map(|_| rng.gen::<f64>()).collect();
            let h = quickhull(&pts, dims, GEOM_EPS).unwrap();
            assert!(!h.facets.is_empty());
            for i in 0..n {
                let p = &pts[i * dims..(i + 1) * dims];
                for f in &h.facets {
                    assert!(
                        dot(&f.normal, p) <= f.offset + 1e-6,
                        "point {i} above a facet in dims {dims}"
                    );
                }
            }
            // Every facet has exactly d vertices and all are hull vertices.
            for f in &h.facets {
                assert_eq!(f.vertices.len(), dims);
                for v in &f.vertices {
                    assert!(h.vertices.contains(v));
                }
            }
        }
    }

    #[test]
    fn hull_vertices_are_extreme() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let dims = 3;
        let n = 60;
        let pts: Vec<f64> = (0..n * dims).map(|_| rng.gen::<f64>()).collect();
        let h = quickhull(&pts, dims, GEOM_EPS).unwrap();
        // A vertex must be strictly outside the hull of the others: verify
        // via the facet planes it lies on (it is the unique max in the
        // outward normal direction among... cheaper check: for each vertex,
        // some facet contains it, and no other point is above that plane).
        for &v in &h.vertices {
            assert!(h.facets.iter().any(|f| f.vertices.contains(&v)));
        }
    }
}
