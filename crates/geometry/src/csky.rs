//! Convex skylines (Definition 4) and convex-layer peeling.
//!
//! A tuple is a *convex skyline* tuple iff it minimizes some strictly
//! positive linear scoring function over the set. Geometrically these are
//! the vertices of the hull's *origin-facing* boundary: facets whose
//! outward normal is strictly negative in every component.
//!
//! Extraction strategy, by case:
//!
//! * `d == 2` — the exact lower-left monotone chain ([`crate::hull2d`]);
//! * general position, `|S| > d+1` — QuickHull over the points plus one
//!   *apex* sentinel at `(3,…,3)`. The apex collapses the upper hull to a
//!   small cone (big savings on anti-correlated workloads) while leaving
//!   every origin-facing facet untouched; facets containing the apex can
//!   never be all-negative, so it is filtered out for free;
//! * small or affinely degenerate sets — definitional LP membership tests
//!   (is there a strictly positive `w` making `t` the unique minimizer?).
//!
//! Vertices of strictly-negative facets are *exactly* convex-skyline
//! members; members exposed only by weights at the orthant boundary may be
//! missed, which shifts them one sublayer later — harmless for index
//! correctness (see DESIGN.md). To guarantee peeling progress, the
//! uniform-weight minimizer is always included.

use crate::hull2d::{cross, lower_left_chain};
use crate::hulldd::{quickhull, HullError};
use crate::lp::{Cmp, LpOutcome, Simplex};
use crate::GEOM_EPS;
use drtopk_common::{dominates, Relation, TupleId};

/// Coordinate of the apex sentinel used to discard the upper hull. Any
/// value strictly greater than the data maximum (1.0) works; 3.0 keeps the
/// sentinel well clear of visibility tolerances.
const APEX: f64 = 3.0;

/// How many points the LP fallback will process before degrading to the
/// probe-minima extraction (degenerate inputs only; see module docs).
const LP_FALLBACK_CAP: usize = 512;

/// A convex skyline: member positions plus the facets of its origin-facing
/// boundary. Positions index into the `ids` slice passed to
/// [`convex_skyline`]; facet entries are positions of members.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexSkyline {
    pub members: Vec<u32>,
    pub facets: Vec<Vec<u32>>,
}

/// Computes the convex skyline of the tuples `ids` within `rel`.
///
/// Returns positions into `ids` (sorted ascending) and facets usable as
/// ∃-dominance-set candidates.
pub fn convex_skyline(rel: &Relation, ids: &[TupleId]) -> ConvexSkyline {
    let d = rel.dims();
    let m = ids.len();
    if m == 0 {
        return ConvexSkyline {
            members: Vec::new(),
            facets: Vec::new(),
        };
    }
    if m == 1 {
        return ConvexSkyline {
            members: vec![0],
            facets: vec![vec![0]],
        };
    }
    if d == 2 {
        return csky_2d(rel, ids);
    }
    if m <= d + 1 {
        return csky_lp(rel, ids);
    }
    match csky_hull(rel, ids) {
        Some(cs) => cs,
        None => {
            if m <= LP_FALLBACK_CAP {
                csky_lp(rel, ids)
            } else {
                csky_probe_minima(rel, ids)
            }
        }
    }
}

fn csky_2d(rel: &Relation, ids: &[TupleId]) -> ConvexSkyline {
    let pts: Vec<(f64, f64)> = ids
        .iter()
        .map(|&id| {
            let t = rel.tuple(id);
            (t[0], t[1])
        })
        .collect();
    let chain = lower_left_chain(&pts);
    let members: Vec<u32> = {
        let mut v: Vec<u32> = chain.iter().map(|&i| i as u32).collect();
        v.sort_unstable();
        v
    };
    // Facets are consecutive chain pairs, in chain order.
    let facets: Vec<Vec<u32>> = if chain.len() == 1 {
        vec![vec![chain[0] as u32]]
    } else {
        chain
            .windows(2)
            .map(|w| vec![w[0] as u32, w[1] as u32])
            .collect()
    };
    ConvexSkyline { members, facets }
}

fn csky_hull(rel: &Relation, ids: &[TupleId]) -> Option<ConvexSkyline> {
    let d = rel.dims();
    let m = ids.len();
    let mut pts = Vec::with_capacity((m + 1) * d);
    for &id in ids {
        pts.extend_from_slice(rel.tuple(id));
    }
    pts.extend(std::iter::repeat_n(APEX, d)); // apex sentinel at index m
    let hull = match quickhull(&pts, d, GEOM_EPS) {
        Ok(h) => h,
        Err(HullError::Degenerate) | Err(HullError::BadDimension) => return None,
    };
    let mut members: Vec<u32> = Vec::new();
    let mut facets: Vec<Vec<u32>> = Vec::new();
    for f in &hull.facets {
        if f.normal.iter().all(|&c| c < -GEOM_EPS) {
            debug_assert!(
                f.vertices.iter().all(|&v| (v as usize) < m),
                "apex can never lie on an all-negative facet"
            );
            members.extend_from_slice(&f.vertices);
            facets.push(f.vertices.clone());
        }
    }
    // Guarantee progress: the uniform-weight minimizer is always a convex
    // skyline member (ties broken by position).
    let uni_min = (0..m as u32)
        .min_by(|&a, &b| {
            let sa: f64 = rel.tuple(ids[a as usize]).iter().sum();
            let sb: f64 = rel.tuple(ids[b as usize]).iter().sum();
            sa.partial_cmp(&sb).unwrap().then(a.cmp(&b))
        })
        .expect("nonempty");
    members.push(uni_min);
    members.sort_unstable();
    members.dedup();
    Some(ConvexSkyline { members, facets })
}

/// Definitional extraction: `t` is a convex-skyline member iff the LP
/// `max δ s.t. Σw = 1, w·(t' − t) ≥ δ ∀t', w_i ≥ δ/(4d)` has optimum > 0.
#[allow(clippy::needless_range_loop)] // pairwise i/j comparisons read clearer indexed
fn csky_lp(rel: &Relation, ids: &[TupleId]) -> ConvexSkyline {
    let d = rel.dims();
    let m = ids.len();
    // CSKY ⊆ SKY: filter dominated tuples first (also guards the LP against
    // duplicate coordinates).
    let mut candidates: Vec<u32> = Vec::new();
    'outer: for i in 0..m {
        let t = rel.tuple(ids[i]);
        for j in 0..m {
            if i != j {
                let u = rel.tuple(ids[j]);
                if dominates(u, t) || (u == t && j < i) {
                    continue 'outer;
                }
            }
        }
        candidates.push(i as u32);
    }
    let mut members = Vec::new();
    for &ci in &candidates {
        if lp_is_convex_member(rel, ids, ci as usize, &candidates) {
            members.push(ci);
        }
    }
    if members.is_empty() {
        // Degenerate tie structure: fall back to the uniform minimizer.
        return csky_probe_minima(rel, ids);
    }
    // Facets: for tiny vertex sets, every ≤d-subset is a sound EDS
    // candidate (soundness never depends on true facet-ness).
    let facets = small_facets(&members, d);
    ConvexSkyline { members, facets }
}

fn lp_is_convex_member(rel: &Relation, ids: &[TupleId], i: usize, candidates: &[u32]) -> bool {
    let d = rel.dims();
    let t = rel.tuple(ids[i]);
    // Variables: w_1..w_d, δ. Maximize δ.
    let mut obj = vec![0.0; d + 1];
    obj[d] = 1.0;
    let mut s = Simplex::maximize(obj);
    let mut row = vec![1.0; d + 1];
    row[d] = 0.0;
    s.constraint(&row, Cmp::Eq, 1.0); // Σw = 1
    for &cj in candidates {
        if cj as usize == i {
            continue;
        }
        let u = rel.tuple(ids[cj as usize]);
        let mut r: Vec<f64> = u.iter().zip(t).map(|(a, b)| a - b).collect();
        r.push(-1.0); // w·(u - t) - δ ≥ 0
        s.constraint(&r, Cmp::Ge, 0.0);
    }
    for k in 0..d {
        let mut r = vec![0.0; d + 1];
        r[k] = 1.0;
        r[d] = -1.0 / (4.0 * d as f64); // w_k ≥ δ/(4d): strict positivity
        s.constraint(&r, Cmp::Ge, 0.0);
    }
    // δ ≤ 1 keeps the LP bounded.
    let mut cap = vec![0.0; d + 1];
    cap[d] = 1.0;
    s.constraint(&cap, Cmp::Le, 1.0);
    match s.solve() {
        LpOutcome::Optimal { value, .. } => value > 1e-9,
        _ => false,
    }
}

/// Last-resort extraction for large degenerate sets: the minimizers of a
/// handful of probe weights (uniform plus near-axis probes). Sound —
/// each probe minimizer is a convex-skyline member — and guarantees
/// peeling progress; selectivity just degrades.
fn csky_probe_minima(rel: &Relation, ids: &[TupleId]) -> ConvexSkyline {
    let d = rel.dims();
    let m = ids.len();
    let mut probes: Vec<Vec<f64>> = vec![vec![1.0 / d as f64; d]];
    for axis in 0..d {
        let mut w = vec![0.1 / (d as f64 - 1.0).max(1.0); d];
        w[axis] = 0.9;
        probes.push(w);
    }
    let mut members: Vec<u32> = Vec::new();
    for w in &probes {
        let best = (0..m as u32)
            .min_by(|&a, &b| {
                let sa: f64 = rel
                    .tuple(ids[a as usize])
                    .iter()
                    .zip(w)
                    .map(|(x, c)| x * c)
                    .sum();
                let sb: f64 = rel
                    .tuple(ids[b as usize])
                    .iter()
                    .zip(w)
                    .map(|(x, c)| x * c)
                    .sum();
                sa.partial_cmp(&sb).unwrap().then(a.cmp(&b))
            })
            .expect("nonempty");
        members.push(best);
    }
    members.sort_unstable();
    members.dedup();
    let facets = small_facets(&members, d);
    ConvexSkyline { members, facets }
}

/// Enumerates facet candidates for a tiny vertex set: the set itself if it
/// has ≤ d members, otherwise all d-subsets (at most C(d+1, d) = d+1 for
/// the sizes this is called with; capped defensively).
fn small_facets(members: &[u32], d: usize) -> Vec<Vec<u32>> {
    if members.len() <= d {
        return vec![members.to_vec()];
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..d).collect();
    loop {
        out.push(idx.iter().map(|&i| members[i]).collect());
        if out.len() >= 64 {
            break; // defensive cap; callers only hit this path on tiny sets
        }
        // Next d-combination of members.len() items.
        let mut i = d;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + members.len() - d {
                break;
            }
        }
        if idx[i] == i + members.len() - d {
            return out;
        }
        idx[i] += 1;
        for j in (i + 1)..d {
            idx[j] = idx[j - 1] + 1;
        }
    }
    out
}

/// Computes the positions of all hull vertices of the tuples `ids`
/// (apex sentinel excluded), or `None` when the set is affinely degenerate.
///
/// This is the "fat" convex layer used by the Onion and hybrid-layer
/// baselines: it is a superset of the convex skyline that provably contains
/// the minimizer of every strictly positive weight vector (any such
/// minimizer is a hull vertex), which is exactly what the top-j ⊆ first-j-
/// layers guarantee needs. Thanks to the apex sentinel, most upper-hull
/// vertices are absorbed and the superset stays close to the true convex
/// skyline.
///
/// In 2-d the exact chain is returned instead (it is already complete).
pub fn hull_vertices(rel: &Relation, ids: &[TupleId]) -> Option<Vec<u32>> {
    let d = rel.dims();
    let m = ids.len();
    if m == 0 {
        return Some(Vec::new());
    }
    if d == 2 {
        return Some(csky_2d(rel, ids).members);
    }
    if m <= d + 1 {
        return None; // too small for a full-dimensional hull; callers fall back
    }
    let mut pts = Vec::with_capacity((m + 1) * d);
    for &id in ids {
        pts.extend_from_slice(rel.tuple(id));
    }
    pts.extend(std::iter::repeat_n(APEX, d));
    match quickhull(&pts, d, GEOM_EPS) {
        Ok(h) => {
            // Containment audit: eps-inconsistent horizon walks on
            // near-duplicate inputs can drop true hull vertices, which
            // would silently void the minimizer-containment guarantee the
            // baselines build on. If any input point sits materially
            // outside the returned facets, declare the hull unusable so
            // callers take their sound skyline fallback. Bounded by a
            // work budget so huge well-behaved inputs don't pay O(n·f).
            const CONTAIN_TOL: f64 = 1e-6;
            const AUDIT_BUDGET: usize = 50_000_000;
            if (m + 1) * h.facets.len() <= AUDIT_BUDGET {
                for i in 0..m {
                    let p = &pts[i * d..(i + 1) * d];
                    for f in &h.facets {
                        let dist: f64 =
                            f.normal.iter().zip(p).map(|(a, b)| a * b).sum::<f64>() - f.offset;
                        if dist > CONTAIN_TOL {
                            return None;
                        }
                    }
                }
            }
            let mut v: Vec<u32> = h
                .vertices
                .into_iter()
                .filter(|&p| (p as usize) < m)
                .collect();
            v.sort_unstable();
            Some(v)
        }
        Err(_) => None,
    }
}

/// One peeled convex layer: tuple ids plus EDS-candidate facets (as tuple
/// ids).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexLayer {
    pub members: Vec<TupleId>,
    pub facets: Vec<Vec<TupleId>>,
}

/// Peels `ids` into consecutive convex layers (Onion-style): layer 1 is the
/// convex skyline of the set, layer j the convex skyline of the remainder.
///
/// In 2-d the whole peel shares one sorted order (`convex_layers_2d`);
/// for d ≥ 3 each layer recomputes its hull but the remainder subtraction
/// is a merge over the (sorted) member positions instead of a hash set.
pub fn convex_layers(rel: &Relation, ids: &[TupleId]) -> Vec<ConvexLayer> {
    if rel.dims() == 2 {
        return convex_layers_2d(rel, ids);
    }
    let mut remaining: Vec<TupleId> = ids.to_vec();
    let mut next: Vec<TupleId> = Vec::new();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let cs = convex_skyline(rel, &remaining);
        assert!(
            !cs.members.is_empty(),
            "convex skyline of a nonempty set is nonempty"
        );
        let members: Vec<TupleId> = cs.members.iter().map(|&p| remaining[p as usize]).collect();
        let facets: Vec<Vec<TupleId>> = cs
            .facets
            .iter()
            .map(|f| f.iter().map(|&p| remaining[p as usize]).collect())
            .collect();
        // Remove extracted members from the remainder. `cs.members` is
        // sorted ascending, so a single merge pass suffices.
        next.clear();
        next.reserve(remaining.len() - members.len());
        let mut mi = 0;
        for (pos, &id) in remaining.iter().enumerate() {
            if mi < cs.members.len() && cs.members[mi] as usize == pos {
                mi += 1;
            } else {
                next.push(id);
            }
        }
        debug_assert_eq!(mi, cs.members.len());
        std::mem::swap(&mut remaining, &mut next);
        layers.push(ConvexLayer { members, facets });
    }
    layers
}

/// 2-d peel with hull state reused across layers: the points are sorted by
/// `(x, y, position)` once, and every peel walks that order skipping
/// already-extracted points. Produces exactly the layers of repeated
/// [`convex_skyline`] calls: surviving points keep their relative order
/// between peels, so the shared sort sees them in the same sequence a
/// per-layer [`lower_left_chain`] sort would, and the chain walk below is
/// that function's, step for step (duplicate drop, collinearity pop
/// against the *remaining* spread, equal-x skip, decreasing-y prefix).
fn convex_layers_2d(rel: &Relation, ids: &[TupleId]) -> Vec<ConvexLayer> {
    let m = ids.len();
    if m == 0 {
        return Vec::new();
    }
    let pts: Vec<(f64, f64)> = ids
        .iter()
        .map(|&id| {
            let t = rel.tuple(id);
            (t[0], t[1])
        })
        .collect();
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_by(|&i, &j| {
        let (a, b) = (pts[i as usize], pts[j as usize]);
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.partial_cmp(&b.1).unwrap())
            .then(i.cmp(&j))
    });

    let mut alive = vec![true; m];
    let mut alive_count = m;
    let mut layers = Vec::new();
    let mut hull: Vec<u32> = Vec::new();
    while alive_count > 0 {
        // The collinearity tolerance scales with the spread of the points
        // still in play (matching `lower_left_chain` on the remainder).
        let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for (p, &a) in pts.iter().zip(&alive) {
            if a {
                lo_x = lo_x.min(p.0);
                hi_x = hi_x.max(p.0);
                lo_y = lo_y.min(p.1);
                hi_y = hi_y.max(p.1);
            }
        }
        let spread = (hi_x - lo_x).max(hi_y - lo_y).max(f64::MIN_POSITIVE);
        let tol = GEOM_EPS * spread * spread;

        hull.clear();
        let mut last_kept: Option<(f64, f64)> = None;
        for &i in &order {
            if !alive[i as usize] {
                continue;
            }
            let p = pts[i as usize];
            // Exact duplicates are consecutive in the sorted order: keep
            // only the first alive one per peel.
            if last_kept == Some(p) {
                continue;
            }
            last_kept = Some(p);
            while hull.len() >= 2 {
                let a = pts[hull[hull.len() - 2] as usize];
                let b = pts[hull[hull.len() - 1] as usize];
                if cross(a, b, p) <= tol {
                    hull.pop();
                } else {
                    break;
                }
            }
            if let Some(&last) = hull.last() {
                if pts[last as usize].0 == p.0 {
                    continue;
                }
            }
            hull.push(i);
        }
        // The convex skyline is the lower hull's strictly-decreasing-y
        // prefix.
        let mut chain_len = 1;
        while chain_len < hull.len()
            && pts[hull[chain_len] as usize].1 < pts[hull[chain_len - 1] as usize].1
        {
            chain_len += 1;
        }
        let chain = &hull[..chain_len];

        let facets: Vec<Vec<TupleId>> = if chain.len() == 1 {
            vec![vec![ids[chain[0] as usize]]]
        } else {
            chain
                .windows(2)
                .map(|w| vec![ids[w[0] as usize], ids[w[1] as usize]])
                .collect()
        };
        let mut positions: Vec<u32> = chain.to_vec();
        positions.sort_unstable();
        let members: Vec<TupleId> = positions.iter().map(|&p| ids[p as usize]).collect();
        for &p in &positions {
            alive[p as usize] = false;
        }
        alive_count -= positions.len();
        layers.push(ConvexLayer { members, facets });
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::relation::{toy_dataset, toy_id};
    use drtopk_common::{Distribution, Weights, WorkloadSpec};

    fn ids_of(cs: &ConvexSkyline, ids: &[TupleId]) -> Vec<TupleId> {
        cs.members.iter().map(|&p| ids[p as usize]).collect()
    }

    #[test]
    fn toy_first_convex_layer() {
        let r = toy_dataset();
        let all: Vec<TupleId> = (0..r.len() as TupleId).collect();
        let cs = convex_skyline(&r, &all);
        assert_eq!(
            ids_of(&cs, &all),
            vec![toy_id('a'), toy_id('b'), toy_id('c')]
        );
        // 2-d facets are the chain segments {a,b} and {b,c}.
        assert_eq!(cs.facets, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn toy_convex_layers_match_fig_2b() {
        let r = toy_dataset();
        let all: Vec<TupleId> = (0..r.len() as TupleId).collect();
        let layers = convex_layers(&r, &all);
        let want: Vec<Vec<char>> = vec![
            vec!['a', 'b', 'c'],
            vec!['d', 'f', 'g'],
            vec!['e', 'j'],
            vec!['h', 'i'],
            vec!['k'],
        ];
        let got: Vec<Vec<TupleId>> = layers.iter().map(|l| l.members.clone()).collect();
        let want_ids: Vec<Vec<TupleId>> = want
            .iter()
            .map(|l| l.iter().map(|&c| toy_id(c)).collect())
            .collect();
        assert_eq!(got, want_ids);
    }

    #[test]
    fn members_minimize_some_weight_3d() {
        // Every extracted member must be a true convex-skyline tuple:
        // verify against the definitional LP.
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 80, 21).generate();
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let cs = convex_skyline(&rel, &all);
        assert!(!cs.members.is_empty());
        let candidates: Vec<u32> = (0..rel.len() as u32).collect();
        for &p in &cs.members {
            assert!(
                lp_is_convex_member(&rel, &all, p as usize, &candidates),
                "member {p} fails definitional check"
            );
        }
    }

    #[test]
    fn hull_and_lp_agree_on_small_sets() {
        for seed in 0..5 {
            let rel = WorkloadSpec::new(Distribution::Independent, 3, 30, seed).generate();
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let hull_members = ids_of(&csky_hull(&rel, &all).unwrap(), &all);
            let lp_members = ids_of(&csky_lp(&rel, &all), &all);
            // The hull path may (rarely) miss boundary-exposed members but
            // must never invent one; usually the sets coincide.
            for m in &hull_members {
                assert!(
                    lp_members.contains(m),
                    "hull member {m} not confirmed by LP (seed {seed})"
                );
            }
            let missing = lp_members
                .iter()
                .filter(|m| !hull_members.contains(m))
                .count();
            assert!(
                missing <= lp_members.len() / 2,
                "hull missed too many members"
            );
        }
    }

    #[test]
    fn layers_partition_input() {
        for d in 2..=4 {
            let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 300, 7).generate();
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let layers = convex_layers(&rel, &all);
            let mut seen: Vec<TupleId> = layers.iter().flat_map(|l| l.members.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, all, "layers must partition the input (d={d})");
        }
    }

    #[test]
    fn layer_members_are_undominated_within_remainder() {
        // Fast-path convex layers do NOT promise monotone layer minima
        // (boundary-exposed vertices may land a sublayer late; the
        // hull_vertices fat layers carry that guarantee instead). What they
        // DO promise: every member is undominated within its remainder,
        // i.e. a genuine convex-skyline (hence skyline) tuple there.
        use drtopk_common::dominates;
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 3).generate();
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let layers = convex_layers(&rel, &all);
        let mut remainder: Vec<TupleId> = all.clone();
        for layer in &layers {
            for &m in &layer.members {
                for &o in &remainder {
                    assert!(
                        !dominates(rel.tuple(o), rel.tuple(m)),
                        "layer member {m} dominated inside its remainder"
                    );
                }
            }
            remainder.retain(|id| !layer.members.contains(id));
        }
    }

    #[test]
    fn fat_hull_layer_minima_are_nondecreasing() {
        use rand::{rngs::StdRng, SeedableRng};
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 3).generate();
        let mut remaining: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let mut layers: Vec<Vec<TupleId>> = Vec::new();
        while let Some(pos) = hull_vertices(&rel, &remaining) {
            if pos.is_empty() || pos.len() == remaining.len() {
                layers.push(std::mem::take(&mut remaining));
                break;
            }
            let layer: Vec<TupleId> = pos.iter().map(|&p| remaining[p as usize]).collect();
            remaining.retain(|id| !layer.contains(id));
            layers.push(layer);
        }
        if !remaining.is_empty() {
            layers.push(remaining);
        }
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let w = Weights::random(3, &mut rng);
            let minima: Vec<f64> = layers
                .iter()
                .map(|l| {
                    l.iter()
                        .map(|&id| w.score(rel.tuple(id)))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            for pair in minima.windows(2) {
                assert!(
                    pair[0] <= pair[1] + 1e-12,
                    "fat layer minima must be non-decreasing"
                );
            }
        }
    }

    /// The literal definition of convex-layer peeling: one
    /// [`convex_skyline`] call per layer over the shrinking remainder.
    fn convex_layers_by_repeated_csky(rel: &Relation, ids: &[TupleId]) -> Vec<ConvexLayer> {
        let mut remaining: Vec<TupleId> = ids.to_vec();
        let mut layers = Vec::new();
        while !remaining.is_empty() {
            let cs = convex_skyline(rel, &remaining);
            let members: Vec<TupleId> = cs.members.iter().map(|&p| remaining[p as usize]).collect();
            let facets: Vec<Vec<TupleId>> = cs
                .facets
                .iter()
                .map(|f| f.iter().map(|&p| remaining[p as usize]).collect())
                .collect();
            let in_layer: std::collections::HashSet<u32> = cs.members.iter().copied().collect();
            remaining = remaining
                .iter()
                .enumerate()
                .filter(|(pos, _)| !in_layer.contains(&(*pos as u32)))
                .map(|(_, &id)| id)
                .collect();
            layers.push(ConvexLayer { members, facets });
        }
        layers
    }

    #[test]
    fn incremental_2d_peel_matches_repeated_csky() {
        for dist in [
            Distribution::Correlated,
            Distribution::Independent,
            Distribution::AntiCorrelated,
        ] {
            for (n, seed) in [(50, 2u64), (300, 19)] {
                let rel = WorkloadSpec::new(dist, 2, n, seed).generate();
                let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
                assert_eq!(
                    convex_layers(&rel, &all),
                    convex_layers_by_repeated_csky(&rel, &all),
                    "{dist:?} n={n} seed={seed}: members AND facets must match"
                );
            }
        }
        // Degenerate shapes: duplicates, collinear runs, equal-x columns.
        let rows: Vec<Vec<f64>> = vec![
            vec![0.2, 0.8],
            vec![0.5, 0.5],
            vec![0.8, 0.2],
            vec![0.5, 0.5],
            vec![0.2, 0.8],
            vec![0.2, 0.3],
            vec![0.2, 0.6],
            vec![0.35, 0.65],
            vec![0.65, 0.35],
        ];
        let rel = Relation::from_rows(2, &rows).unwrap();
        let all: Vec<TupleId> = (0..rows.len() as TupleId).collect();
        assert_eq!(
            convex_layers(&rel, &all),
            convex_layers_by_repeated_csky(&rel, &all)
        );
        // Subset ids (the build peels coarse layers, not 0..n ranges).
        let subset: Vec<TupleId> = vec![8, 1, 5, 3, 0];
        assert_eq!(
            convex_layers(&rel, &subset),
            convex_layers_by_repeated_csky(&rel, &subset)
        );
    }

    #[test]
    fn duplicate_points_terminate() {
        let rows: Vec<Vec<f64>> = (0..20).map(|_| vec![0.5, 0.5, 0.5]).collect();
        let rel = Relation::from_rows(3, &rows).unwrap();
        let all: Vec<TupleId> = (0..20).collect();
        let layers = convex_layers(&rel, &all);
        let total: usize = layers.iter().map(|l| l.members.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn single_point_and_empty() {
        let rel = Relation::from_rows(3, &[vec![0.2, 0.3, 0.4]]).unwrap();
        let cs = convex_skyline(&rel, &[0]);
        assert_eq!(cs.members, vec![0]);
        let cs0 = convex_skyline(&rel, &[]);
        assert!(cs0.members.is_empty());
    }

    #[test]
    fn degenerate_coplanar_4d() {
        // All points on the hyperplane x0 + x1 + x2 + x3 = 2 exactly: the
        // hull path must fail over to LP and still extract a valid layer.
        let mut rows = Vec::new();
        let mut acc: u32 = 1;
        for _ in 0..30 {
            acc = acc.wrapping_mul(1664525).wrapping_add(1013904223);
            let a = 0.4 + 0.2 * ((acc >> 8) & 0xff) as f64 / 255.0;
            acc = acc.wrapping_mul(1664525).wrapping_add(1013904223);
            let b = 0.4 + 0.2 * ((acc >> 8) & 0xff) as f64 / 255.0;
            acc = acc.wrapping_mul(1664525).wrapping_add(1013904223);
            let c = 0.4 + 0.2 * ((acc >> 8) & 0xff) as f64 / 255.0;
            rows.push(vec![a, b, c, 2.0 - a - b - c]);
        }
        let rel = Relation::from_rows(4, &rows).unwrap();
        let all: Vec<TupleId> = (0..rows.len() as TupleId).collect();
        let layers = convex_layers(&rel, &all);
        let total: usize = layers.iter().map(|l| l.members.len()).sum();
        assert_eq!(total, rows.len());
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use drtopk_common::Relation;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Near-duplicate clusters: the review's reproduction of the quickhull
    /// hang / corrupt-hull class. Peeling must terminate and the fat-layer
    /// path must either produce a sound layer or fall back.
    fn clustered_relation(d: usize, n: usize, clusters: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..clusters)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let mut flat = Vec::with_capacity(n * d);
        for i in 0..n {
            let c = &centers[i % clusters];
            for &x in c {
                flat.push((x + 1e-7 * rng.gen::<f64>()).clamp(0.0, 1.0));
            }
        }
        Relation::from_flat_unchecked(d, flat)
    }

    #[test]
    fn near_duplicate_clusters_terminate_in_5d() {
        // Previously hung without the facet budget (review finding).
        for seed in [16u64, 43, 77] {
            let rel = clustered_relation(5, 60, 9, seed);
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let layers = convex_layers(&rel, &all);
            let total: usize = layers.iter().map(|l| l.members.len()).sum();
            assert_eq!(
                total, 60,
                "peeling must terminate and partition (seed {seed})"
            );
        }
    }

    #[test]
    fn fat_layer_guarantee_survives_near_duplicates() {
        // Previously returned corrupt hulls whose layers missed true
        // minimizers; the containment audit now rejects those hulls.
        use drtopk_common::Weights;
        for seed in [3u64, 5, 8] {
            let rel = clustered_relation(3, 40, 8, seed);
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            if let Some(pos) = hull_vertices(&rel, &all) {
                let members: Vec<TupleId> = pos.iter().map(|&p| all[p as usize]).collect();
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..20 {
                    let w = Weights::random(3, &mut rng);
                    let global = (0..rel.len() as TupleId)
                        .map(|t| w.score(rel.tuple(t)))
                        .fold(f64::INFINITY, f64::min);
                    let layer_min = members
                        .iter()
                        .map(|&t| w.score(rel.tuple(t)))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        layer_min <= global + 1e-9,
                        "fat layer missing the true minimizer (seed {seed})"
                    );
                }
            }
            // None is acceptable: callers fall back to the (sound) skyline.
        }
    }

    #[test]
    fn small_spread_chain_keeps_vertices() {
        // Review finding: absolute eps collapsed chains in 1e-4-wide boxes.
        use crate::hull2d::lower_left_chain;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let pts: Vec<(f64, f64)> = (0..40)
                .map(|_| (0.5 + 1e-4 * rng.gen::<f64>(), 0.5 + 1e-4 * rng.gen::<f64>()))
                .collect();
            let chain = lower_left_chain(&pts);
            // The chain must contain the minimizer of every positive weight.
            for step in 1..20 {
                let w1 = step as f64 / 20.0;
                let score = |p: (f64, f64)| w1 * p.0 + (1.0 - w1) * p.1;
                let best = pts.iter().map(|&p| score(p)).fold(f64::INFINITY, f64::min);
                let chain_best = chain
                    .iter()
                    .map(|&i| score(pts[i]))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    chain_best <= best + 1e-15,
                    "chain missing minimizer at w1={w1}"
                );
            }
        }
    }
}
