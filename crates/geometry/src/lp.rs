//! A small dense two-phase simplex solver.
//!
//! The workspace needs linear programming in two places, both tiny:
//!
//! * the ∃-dominance-set feasibility test (≤ d+1 constraints, ≤ d
//!   variables) run many times during index construction;
//! * definitional convex-skyline membership tests used as a fallback for
//!   degenerate point sets and as a test oracle.
//!
//! Problems are stated as `maximize c·x` subject to `A x (≤ | = | ≥) b`
//! with `x ≥ 0`. The solver uses the standard two-phase method with
//! Bland's anti-cycling rule; with at most a few dozen variables, the dense
//! tableau is the fastest and simplest representation.

/// Relation of one linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Eq,
    Ge,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal { x: Vec<f64>, value: f64 },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// The optimal objective value, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }
}

const EPS: f64 = 1e-9;

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct Simplex {
    n: usize,
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    cmps: Vec<Cmp>,
    rhs: Vec<f64>,
}

impl Simplex {
    /// Starts a problem with `n` non-negative variables maximizing
    /// `objective · x`.
    pub fn maximize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        Simplex {
            n,
            objective,
            rows: Vec::new(),
            cmps: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Adds the constraint `coeffs · x (cmp) rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len()` differs from the variable count.
    pub fn constraint(&mut self, coeffs: &[f64], cmp: Cmp, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.n, "constraint arity mismatch");
        self.rows.push(coeffs.to_vec());
        self.cmps.push(cmp);
        self.rhs.push(rhs);
        self
    }

    /// Solves the program.
    pub fn solve(&self) -> LpOutcome {
        Tableau::new(self).solve()
    }
}

/// Dense simplex tableau with explicit basis bookkeeping.
struct Tableau {
    /// `m x (width+1)` matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total structural + slack variables (artificials live past this).
    width: usize,
    /// Original variable count.
    n: usize,
    /// Artificial variable columns (phase 1 only).
    artificial: Vec<usize>,
    /// Original objective padded to `width`.
    obj: Vec<f64>,
}

impl Tableau {
    fn new(p: &Simplex) -> Self {
        let m = p.rows.len();
        // Normalize rows to b >= 0, count slack/artificial needs.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut cmps = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for i in 0..m {
            let (mut row, mut cmp, mut b) = (p.rows[i].clone(), p.cmps[i], p.rhs[i]);
            if b < 0.0 {
                for v in &mut row {
                    *v = -*v;
                }
                b = -b;
                cmp = match cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
            rows.push(row);
            cmps.push(cmp);
            rhs.push(b);
        }
        let n_slack = cmps.iter().filter(|c| !matches!(c, Cmp::Eq)).count();
        let width = p.n + n_slack;
        let n_art = cmps.iter().filter(|c| !matches!(c, Cmp::Le)).count();
        let total = width + n_art;

        let mut a = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut artificial = Vec::with_capacity(n_art);
        let mut slack_col = p.n;
        let mut art_col = width;
        for i in 0..m {
            a[i][..p.n].copy_from_slice(&rows[i]);
            a[i][total] = rhs[i];
            match cmps[i] {
                Cmp::Le => {
                    a[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Cmp::Ge => {
                    a[i][slack_col] = -1.0;
                    slack_col += 1;
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
                Cmp::Eq => {
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
            }
        }
        let mut obj = p.objective.clone();
        obj.resize(width, 0.0);
        Tableau {
            a,
            basis,
            width,
            n: p.n,
            artificial,
            obj,
        }
    }

    fn solve(mut self) -> LpOutcome {
        let total = self.width + self.artificial.len();
        if !self.artificial.is_empty() {
            // Phase 1: minimize the sum of artificials, i.e. maximize the
            // negated sum. Reduced costs are computed per pivot scan, so we
            // only need the objective vector.
            let mut phase1 = vec![0.0; total];
            for &c in &self.artificial {
                phase1[c] = -1.0;
            }
            match self.optimize(&phase1, total) {
                Some(()) => {}
                None => return LpOutcome::Unbounded, // cannot happen: bounded below by 0
            }
            let v = self.objective_value(&phase1);
            if v < -1e-7 {
                return LpOutcome::Infeasible;
            }
            // Pivot any artificial still in the basis out (degenerate rows),
            // or drop its row if it is all-zero over structural columns.
            for i in 0..self.a.len() {
                if self.basis[i] >= self.width {
                    let piv = (0..self.width).find(|&j| self.a[i][j].abs() > EPS);
                    if let Some(j) = piv {
                        self.pivot(i, j, total);
                    }
                    // If no structural pivot exists the row is redundant;
                    // its artificial stays basic at value 0, which is
                    // harmless for phase 2 because artificial columns are
                    // excluded from entering.
                }
            }
        }
        // Phase 2 over structural columns only.
        let mut obj = self.obj.clone();
        obj.resize(total, 0.0);
        match self.optimize(&obj, self.width) {
            Some(()) => {
                let mut x = vec![0.0; self.n];
                for (i, &b) in self.basis.iter().enumerate() {
                    if b < self.n {
                        x[b] = self.a[i][total];
                    }
                }
                let value = self.objective_value(&obj);
                LpOutcome::Optimal { x, value }
            }
            None => LpOutcome::Unbounded,
        }
    }

    fn objective_value(&self, obj: &[f64]) -> f64 {
        let total = self.a.first().map_or(0, |r| r.len() - 1);
        self.basis
            .iter()
            .enumerate()
            .map(|(i, &b)| obj.get(b).copied().unwrap_or(0.0) * self.a[i][total])
            .sum()
    }

    /// Runs primal simplex with Bland's rule; entering columns are limited
    /// to `[0, col_limit)`. Returns `None` on unboundedness.
    fn optimize(&mut self, obj: &[f64], col_limit: usize) -> Option<()> {
        let total = self.a.first().map_or(0, |r| r.len() - 1);
        loop {
            // Reduced costs: rc_j = obj_j - obj_B · B^{-1} A_j. The tableau
            // is kept in canonical form, so rc_j = obj_j - Σ_i obj[basis_i]·a[i][j].
            let mut entering = None;
            for j in 0..col_limit {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut rc = obj.get(j).copied().unwrap_or(0.0);
                for (i, &b) in self.basis.iter().enumerate() {
                    let cb = obj.get(b).copied().unwrap_or(0.0);
                    if cb != 0.0 {
                        rc -= cb * self.a[i][j];
                    }
                }
                if rc > EPS {
                    entering = Some(j); // Bland: first improving column
                    break;
                }
            }
            let Some(j) = entering else { return Some(()) };
            // Ratio test with Bland tie-break on the basic variable index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.a.len() {
                let aij = self.a[i][j];
                if aij > EPS {
                    let ratio = self.a[i][total] / aij;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - EPS
                                || (ratio < lr + EPS && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let (i, _) = leave?;
            self.pivot(i, j, total);
        }
    }

    fn pivot(&mut self, row: usize, col: usize, total: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS, "pivot on near-zero element");
        for v in &mut self.a[row] {
            *v /= p;
        }
        for i in 0..self.a.len() {
            if i != row {
                let f = self.a[i][col];
                if f != 0.0 {
                    for j in 0..=total {
                        self.a[i][j] -= f * self.a[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_opt(s: &Simplex) -> (Vec<f64>, f64) {
        match s.solve() {
            LpOutcome::Optimal { x, value } => (x, value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn basic_le() {
        // max x + y st x <= 2, y <= 3, x + y <= 4 -> (1,3) or (2,2), value 4.
        let mut s = Simplex::maximize(vec![1.0, 1.0]);
        s.constraint(&[1.0, 0.0], Cmp::Le, 2.0)
            .constraint(&[0.0, 1.0], Cmp::Le, 3.0)
            .constraint(&[1.0, 1.0], Cmp::Le, 4.0);
        let (_, v) = solve_opt(&s);
        assert!((v - 4.0).abs() < 1e-8);
    }

    #[test]
    fn with_equality() {
        // max 2x + 3y st x + y = 1 -> (0,1), value 3.
        let mut s = Simplex::maximize(vec![2.0, 3.0]);
        s.constraint(&[1.0, 1.0], Cmp::Eq, 1.0);
        let (x, v) = solve_opt(&s);
        assert!((v - 3.0).abs() < 1e-8);
        assert!((x[0]).abs() < 1e-8 && (x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn with_ge() {
        // max -x st x >= 2 -> value -2.
        let mut s = Simplex::maximize(vec![-1.0]);
        s.constraint(&[1.0], Cmp::Ge, 2.0);
        let (x, v) = solve_opt(&s);
        assert!((v + 2.0).abs() < 1e-8);
        assert!((x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible() {
        let mut s = Simplex::maximize(vec![1.0]);
        s.constraint(&[1.0], Cmp::Le, 1.0)
            .constraint(&[1.0], Cmp::Ge, 2.0);
        assert_eq!(s.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut s = Simplex::maximize(vec![1.0, 0.0]);
        s.constraint(&[0.0, 1.0], Cmp::Le, 1.0);
        assert!(matches!(s.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalization() {
        // max x st -x <= -2, x <= 5 -> x in [2,5], value 5.
        let mut s = Simplex::maximize(vec![1.0]);
        s.constraint(&[-1.0], Cmp::Le, -2.0)
            .constraint(&[1.0], Cmp::Le, 5.0);
        let (x, v) = solve_opt(&s);
        assert!((v - 5.0).abs() < 1e-8);
        assert!((x[0] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_equalities() {
        // Redundant constraints must not break phase 1.
        let mut s = Simplex::maximize(vec![1.0, 1.0]);
        s.constraint(&[1.0, 1.0], Cmp::Eq, 1.0)
            .constraint(&[2.0, 2.0], Cmp::Eq, 2.0)
            .constraint(&[1.0, 0.0], Cmp::Le, 0.7);
        let (_, v) = solve_opt(&s);
        assert!((v - 1.0).abs() < 1e-8);
    }

    #[test]
    fn convex_combination_feasibility() {
        // Is there a convex combination of (0.2, 0.8) and (0.8, 0.2)
        // dominating (0.6, 0.6)? lambda=(0.5,0.5) gives (0.5,0.5) <= (0.6,0.6).
        let mut s = Simplex::maximize(vec![0.0, 0.0]);
        s.constraint(&[1.0, 1.0], Cmp::Eq, 1.0)
            .constraint(&[0.2, 0.8], Cmp::Le, 0.6)
            .constraint(&[0.8, 0.2], Cmp::Le, 0.6);
        assert!(matches!(s.solve(), LpOutcome::Optimal { .. }));
        // ...but nothing on that segment dominates (0.3, 0.3).
        let mut s2 = Simplex::maximize(vec![0.0, 0.0]);
        s2.constraint(&[1.0, 1.0], Cmp::Eq, 1.0)
            .constraint(&[0.2, 0.8], Cmp::Le, 0.3)
            .constraint(&[0.8, 0.2], Cmp::Le, 0.3);
        assert_eq!(s2.solve(), LpOutcome::Infeasible);
    }
}
