//! Exact two-dimensional convex-skyline chain.
//!
//! In 2-d the convex skyline of a point set is the portion of the lower
//! convex hull running from the minimum-x vertex to the minimum-y vertex
//! (the part whose supporting lines have strictly positive weight normals).
//! The paper's Section V-A weight-range construction builds directly on
//! this chain, so we keep a dedicated exact implementation instead of going
//! through the general d-dimensional hull.

use crate::GEOM_EPS;

/// Cross product of (b - a) × (c - a); positive when `c` is left of `a→b`.
#[inline]
pub fn cross(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

/// Computes the 2-d convex skyline (lower-left convex chain) of `points`.
///
/// Returns indices into `points`, ordered by increasing x (decreasing y):
/// exactly the vertices minimizing `w₁x + w₂y` for some strictly positive
/// weights. Collinear points inside a chain segment are *not* vertices and
/// are excluded; among duplicate coordinates the smallest index wins.
pub fn lower_left_chain(points: &[(f64, f64)]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by (x, y, idx): the chain walks left-to-right; the y tie-break
    // keeps the lowest point first at equal x; the idx tie-break makes
    // duplicate handling deterministic.
    order.sort_by(|&i, &j| {
        let (a, b) = (points[i], points[j]);
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.partial_cmp(&b.1).unwrap())
            .then(i.cmp(&j))
    });
    // Drop exact duplicates (keep first in sorted order = smallest index).
    order.dedup_by(|&mut i, &mut j| points[i] == points[j]);

    // Collinearity tolerance must scale with the data spread: the cross
    // product is an area (quadratic in coordinate spread), so an absolute
    // epsilon silently collapses chains of small-spread point sets (e.g.
    // deep layers of min-max-normalized data squeezed by outliers).
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for p in points {
        lo_x = lo_x.min(p.0);
        hi_x = hi_x.max(p.0);
        lo_y = lo_y.min(p.1);
        hi_y = hi_y.max(p.1);
    }
    let spread = (hi_x - lo_x).max(hi_y - lo_y).max(f64::MIN_POSITIVE);
    let tol = GEOM_EPS * spread * spread;

    // Monotone-chain lower hull.
    let mut hull: Vec<usize> = Vec::with_capacity(order.len());
    for &i in &order {
        while hull.len() >= 2 {
            let a = points[hull[hull.len() - 2]];
            let b = points[hull[hull.len() - 1]];
            // Pop b when it is not strictly right of a→points[i]
            // (collinear points are not vertices).
            if cross(a, b, points[i]) <= tol {
                hull.pop();
            } else {
                break;
            }
        }
        // Points sharing x with the current hull tail can never extend the
        // lower hull (the sort put the lowest-y one first).
        if let Some(&last) = hull.last() {
            if points[last].0 == points[i].0 {
                continue;
            }
        }
        hull.push(i);
    }
    // The lower hull runs from min-x to max-x; the convex skyline is its
    // strictly-decreasing-y prefix, ending at the global min-y vertex.
    let mut chain = Vec::with_capacity(hull.len());
    for (pos, &i) in hull.iter().enumerate() {
        if pos == 0 {
            chain.push(i);
        } else {
            let prev = points[*chain.last().unwrap()];
            if points[i].1 < prev.1 {
                chain.push(i);
            } else {
                break;
            }
        }
    }
    // The first vertex is a convex-skyline member only if no later chain
    // vertex weakly dominates it; with the (x, y) sort, the min-x vertex is
    // always a witness for weights near (1, 0) unless another point has the
    // same x and lower y — already excluded by the dedup/tie-break.
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain() {
        let pts = vec![(0.1, 0.6), (0.3, 0.45), (0.8, 0.1), (0.5, 0.5), (0.9, 0.9)];
        assert_eq!(lower_left_chain(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn single_and_empty() {
        assert!(lower_left_chain(&[]).is_empty());
        assert_eq!(lower_left_chain(&[(0.5, 0.5)]), vec![0]);
    }

    #[test]
    fn dominated_point_excluded() {
        let pts = vec![(0.2, 0.2), (0.3, 0.3)];
        assert_eq!(lower_left_chain(&pts), vec![0]);
    }

    #[test]
    fn two_incomparable_points() {
        let pts = vec![(0.2, 0.8), (0.8, 0.2)];
        assert_eq!(lower_left_chain(&pts), vec![0, 1]);
    }

    #[test]
    fn collinear_interior_point_excluded() {
        // (0.5, 0.5) lies on the segment between the other two: it is not a
        // vertex, hence minimizes no weight uniquely.
        let pts = vec![(0.2, 0.8), (0.8, 0.2), (0.5, 0.5)];
        assert_eq!(lower_left_chain(&pts), vec![0, 1]);
    }

    #[test]
    fn duplicates_keep_smallest_index() {
        let pts = vec![(0.3, 0.3), (0.3, 0.3), (0.1, 0.9)];
        assert_eq!(lower_left_chain(&pts), vec![2, 0]);
    }

    #[test]
    fn point_above_chain_excluded() {
        // (0.4, 0.7) is not dominated by any single point but lies above the
        // segment (0.1,0.9)-(0.9,0.1): on the skyline, not the convex skyline.
        let pts = vec![(0.1, 0.9), (0.9, 0.1), (0.4, 0.7)];
        assert_eq!(lower_left_chain(&pts), vec![0, 1]);
    }

    #[test]
    fn equal_x_keeps_lower_y() {
        let pts = vec![(0.2, 0.9), (0.2, 0.4), (0.7, 0.1)];
        assert_eq!(lower_left_chain(&pts), vec![1, 2]);
    }

    #[test]
    fn toy_dataset_first_convex_layer() {
        // Fig. 2(b): the first convex layer of the toy dataset is {a, b, c}.
        let r = drtopk_common::relation::toy_dataset();
        let pts: Vec<(f64, f64)> = r.iter().map(|(_, t)| (t[0], t[1])).collect();
        assert_eq!(lower_left_chain(&pts), vec![0, 1, 2]);
    }
}
