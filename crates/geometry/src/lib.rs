//! Computational geometry substrate for the dual-resolution layer index.
//!
//! The paper's fine-level layers are *convex skylines* (Definition 4) whose
//! *facets* serve as ∃-dominance sets (Definition 5). This crate provides
//! everything needed to build them, implemented from scratch:
//!
//! * [`lp`] — a small dense two-phase simplex solver used for ∃-dominance
//!   feasibility tests and for definitional convex-skyline membership on
//!   small or degenerate point sets;
//! * [`hull2d`] — the exact 2-d lower-left convex chain (monotone chain);
//! * [`hulldd`] — a general d-dimensional QuickHull with facet adjacency;
//! * [`csky`] — convex-skyline extraction (vertices + origin-facing facets)
//!   with robust fallbacks, and iterated convex-layer peeling;
//! * [`eds`] — the ∃-dominance-set test: does the convex hull of a facet's
//!   tuples contain a virtual point dominating a target tuple?

pub mod csky;
pub mod eds;
pub mod hull2d;
pub mod hulldd;
pub mod lp;

pub use csky::{convex_layers, convex_skyline, hull_vertices, ConvexSkyline};
pub use eds::facet_is_eds;
pub use hull2d::lower_left_chain;
pub use hulldd::{Facet, Hull, HullError};
pub use lp::{LpOutcome, Simplex};

/// Absolute tolerance for geometric predicates on normalized `[0,1]^d`
/// coordinates. Data points are at unit scale, so a fixed absolute epsilon
/// is appropriate.
pub const GEOM_EPS: f64 = 1e-9;
