//! Deterministic fault injection for the `drtopk` workspace.
//!
//! Crash safety claims are worthless untested, and the failures that
//! matter — a torn write-ahead-log tail, a bit flip in a snapshot, an I/O
//! error on the nth write, a worker thread panicking mid-batch — never
//! happen on a healthy CI box. This crate plants *failpoints* at the
//! workspace's storage and execution boundaries so a seeded chaos suite
//! can trigger exactly those failures, deterministically, and assert the
//! recovery invariants.
//!
//! Two call shapes cover every site:
//!
//! * [`hit`] — a pure control-flow site (file create, rename, fsync,
//!   worker dispatch). Returns `Err(Injected)` or panics when armed.
//! * [`mangle`] — a data site: the caller hands over the bytes it is about
//!   to write (or has just read) and an armed action may truncate them
//!   (torn write / short read) or flip a bit (silent corruption). A fired
//!   `mangle` also returns `Err(Injected)` so write paths can model the
//!   crash that tore the data: the bytes hit the disk mangled *and* the
//!   operation reports failure, exactly like a process death mid-write.
//!
//! Arming is explicit and counted: [`arm`] installs an action that fires
//! on the `nth` (0-based) subsequent visit to the site and then disarms
//! itself, so a test can corrupt "the 3rd WAL append" and nothing else.
//! All state is process-global; chaos tests serialize on a lock.
//!
//! # Feature gating
//!
//! Mirrors `drtopk-obs`: with the `enabled` feature off (the default),
//! [`hit`] and [`mangle`] are empty `#[inline]` bodies returning `Ok(())`
//! and the registry does not exist — the instrumented code compiles to
//! exactly the uninstrumented code. [`COMPILED`] reports which build this
//! is, and CI proves the feature-off path builds.
#![warn(missing_docs)]

use std::fmt;

/// The error returned by a fired failpoint. Callers convert it into their
/// own error type (storage maps it to an I/O-style format error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injected {
    /// The site that fired.
    pub site: &'static str,
}

impl fmt::Display for Injected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint {:?}", self.site)
    }
}

impl std::error::Error for Injected {}

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Return [`Injected`] from the site (an I/O error, a refused rename).
    Error,
    /// Panic with a recognizable message (a poisoned worker).
    Panic,
    /// Truncate the mangled buffer to this many bytes (torn write or
    /// short read), then return [`Injected`]. At a [`hit`] site this
    /// degrades to plain [`FailAction::Error`].
    Truncate(usize),
    /// XOR the byte at `offset % len` with `mask` (silent bit rot), then
    /// return [`Injected`]. At a [`hit`] site this degrades to
    /// [`FailAction::Error`].
    BitFlip {
        /// Byte position, taken modulo the buffer length.
        offset: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Stall for this many milliseconds, then *succeed* (return `Ok`,
    /// leave data untouched). Models a slow disk or a scheduling hiccup
    /// rather than a hard fault: the caller proceeds, late — which is how
    /// chaos tests drive a per-shard probe past its carved deadline.
    Sleep(u64),
}

/// Sites usable per shard of a sharded deployment: `shard_site(s)` names
/// the probe boundary of shard `s` (`"shard::probe::<s>"`), so a chaos
/// test can fail, panic, or stall exactly one shard while its peers stay
/// healthy. Names are interned (leaked once per distinct shard id) so
/// they satisfy the registry's `&'static str` contract.
pub fn shard_site(shard: usize) -> &'static str {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static SITES: OnceLock<Mutex<HashMap<usize, &'static str>>> = OnceLock::new();
    let sites = SITES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = sites.lock().unwrap_or_else(|e| e.into_inner());
    map.entry(shard)
        .or_insert_with(|| Box::leak(format!("shard::probe::{shard}").into_boxed_str()))
}

#[cfg(feature = "enabled")]
mod active {
    use super::{FailAction, Injected};
    use std::collections::HashMap;
    use std::sync::Mutex;

    struct Armed {
        action: FailAction,
        /// Fires when the site's visit counter reaches this value.
        nth: u64,
    }

    struct Registry {
        armed: HashMap<&'static str, Armed>,
        visits: HashMap<&'static str, u64>,
    }

    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

    fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        let reg = guard.get_or_insert_with(|| Registry {
            armed: HashMap::new(),
            visits: HashMap::new(),
        });
        f(reg)
    }

    /// Arms `site` to fire `action` on its `nth` (0-based) visit from now,
    /// then disarm. Re-arming a site replaces the previous action and
    /// resets its visit counter.
    pub fn arm(site: &'static str, nth: u64, action: FailAction) {
        with_registry(|reg| {
            reg.visits.insert(site, 0);
            reg.armed.insert(site, Armed { action, nth });
        });
    }

    /// Disarms every site and clears all visit counters.
    pub fn reset() {
        with_registry(|reg| {
            reg.armed.clear();
            reg.visits.clear();
        });
    }

    /// Visits counted at `site` since it was last armed (or since reset).
    pub fn visits(site: &'static str) -> u64 {
        with_registry(|reg| reg.visits.get(site).copied().unwrap_or(0))
    }

    fn fire(site: &'static str) -> Option<FailAction> {
        with_registry(|reg| {
            let count = reg.visits.entry(site).or_insert(0);
            let current = *count;
            *count += 1;
            match reg.armed.get(site) {
                Some(a) if a.nth == current => {
                    let action = a.action.clone();
                    reg.armed.remove(site);
                    Some(action)
                }
                _ => None,
            }
        })
    }

    /// Control-flow site: counts a visit; an armed action returns an error
    /// or panics. Data actions degrade to [`FailAction::Error`];
    /// [`FailAction::Sleep`] stalls and then succeeds.
    #[inline]
    pub fn hit(site: &'static str) -> Result<(), Injected> {
        match fire(site) {
            None => Ok(()),
            Some(FailAction::Panic) => panic!("failpoint panic at {site:?}"),
            Some(FailAction::Sleep(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Some(_) => Err(Injected { site }),
        }
    }

    /// Data site: counts a visit; an armed action may mutate `data`
    /// (truncate / bit flip) and always returns `Err` when fired, so the
    /// caller can model the crash that produced the mangled bytes.
    #[inline]
    pub fn mangle(site: &'static str, data: &mut Vec<u8>) -> Result<(), Injected> {
        match fire(site) {
            None => Ok(()),
            Some(FailAction::Panic) => panic!("failpoint panic at {site:?}"),
            Some(FailAction::Error) => Err(Injected { site }),
            Some(FailAction::Truncate(len)) => {
                data.truncate(len);
                Err(Injected { site })
            }
            Some(FailAction::BitFlip { offset, mask }) => {
                if !data.is_empty() {
                    let pos = offset % data.len();
                    data[pos] ^= mask;
                }
                Err(Injected { site })
            }
            Some(FailAction::Sleep(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
        }
    }
}

#[cfg(feature = "enabled")]
pub use active::{arm, hit, mangle, reset, visits};

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::{FailAction, Injected};

    /// No-op (failpoints compiled out): arming does nothing.
    #[inline]
    pub fn arm(_site: &'static str, _nth: u64, _action: FailAction) {}

    /// No-op (failpoints compiled out).
    #[inline]
    pub fn reset() {}

    /// Always 0 (failpoints compiled out).
    #[inline]
    pub fn visits(_site: &'static str) -> u64 {
        0
    }

    /// Always `Ok` (failpoints compiled out).
    #[inline]
    pub fn hit(_site: &'static str) -> Result<(), Injected> {
        Ok(())
    }

    /// Always `Ok`, never touches `data` (failpoints compiled out).
    #[inline]
    pub fn mangle(_site: &'static str, _data: &mut Vec<u8>) -> Result<(), Injected> {
        Ok(())
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{arm, hit, mangle, reset, visits};

/// Whether injection support was compiled in (the `enabled` feature).
pub const COMPILED: bool = cfg!(feature = "enabled");

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; these tests serialize on it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn fires_on_nth_visit_then_disarms() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("t::nth", 2, FailAction::Error);
        assert!(hit("t::nth").is_ok());
        assert!(hit("t::nth").is_ok());
        assert_eq!(hit("t::nth"), Err(Injected { site: "t::nth" }));
        assert!(hit("t::nth").is_ok(), "one-shot: disarmed after firing");
        assert_eq!(visits("t::nth"), 4);
        reset();
    }

    #[test]
    fn mangle_truncates_and_flips() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let mut data = vec![0u8; 8];
        arm("t::trunc", 0, FailAction::Truncate(3));
        assert!(mangle("t::trunc", &mut data).is_err());
        assert_eq!(data.len(), 3);

        let mut data = vec![0u8; 8];
        arm(
            "t::flip",
            0,
            FailAction::BitFlip {
                offset: 10,
                mask: 0x40,
            },
        );
        assert!(mangle("t::flip", &mut data).is_err());
        assert_eq!(data[10 % 8], 0x40, "offset wraps modulo len");

        let mut empty: Vec<u8> = Vec::new();
        arm("t::flip2", 0, FailAction::BitFlip { offset: 0, mask: 1 });
        assert!(
            mangle("t::flip2", &mut empty).is_err(),
            "empty buffer: no panic"
        );
        reset();
    }

    #[test]
    fn panic_action_panics() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("t::panic", 0, FailAction::Panic);
        let r = std::panic::catch_unwind(|| hit("t::panic"));
        assert!(r.is_err());
        reset();
    }

    #[test]
    fn sleep_action_stalls_then_succeeds() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("t::sleep", 0, FailAction::Sleep(30));
        let t0 = std::time::Instant::now();
        assert!(hit("t::sleep").is_ok(), "a stall is not a failure");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        assert!(hit("t::sleep").is_ok(), "one-shot: disarmed after firing");

        let mut data = vec![7u8; 4];
        arm("t::sleep2", 0, FailAction::Sleep(1));
        assert!(mangle("t::sleep2", &mut data).is_ok());
        assert_eq!(data, vec![7u8; 4], "sleep leaves data untouched");
        reset();
    }

    #[test]
    fn shard_sites_are_stable_and_distinct() {
        let a = shard_site(3);
        let b = shard_site(3);
        let c = shard_site(4);
        assert_eq!(a, "shard::probe::3");
        assert!(std::ptr::eq(a, b), "interned: same allocation");
        assert_eq!(c, "shard::probe::4");
        reset();
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let mut data = vec![1, 2, 3];
        assert!(hit("t::silent").is_ok());
        assert!(mangle("t::silent", &mut data).is_ok());
        assert_eq!(data, vec![1, 2, 3]);
        reset();
    }
}
