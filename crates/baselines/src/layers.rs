//! Shared "fat" convex-layer peeling for Onion and the hybrid-layer index.
//!
//! Layers are hull-vertex supersets of the convex skyline (see
//! [`drtopk_geometry::csky::hull_vertices`]): each layer provably contains
//! the minimizer of every strictly positive weight vector over the
//! remainder, which is what the top-j ⊆ first-j-layers guarantee of
//! convex-layer indexes needs. Degenerate remainders (affinely flat) fall
//! back to the skyline, which enjoys the same guarantee.

use drtopk_common::{Relation, TupleId};
use drtopk_geometry::hull_vertices;
use drtopk_skyline::{algorithms::sfs, skyline_layers, SkylineAlgo};

/// Peels `ids` into convex layers. At most `max_layers` are peeled
/// (0 = unlimited); any remainder becomes one final *overflow* layer that
/// carries no convexity guarantee and must be scanned completely if a
/// query ever reaches it.
pub fn fat_convex_layers(
    rel: &Relation,
    ids: &[TupleId],
    max_layers: usize,
) -> (Vec<Vec<TupleId>>, bool) {
    let mut remaining: Vec<TupleId> = ids.to_vec();
    let mut layers: Vec<Vec<TupleId>> = Vec::new();
    while !remaining.is_empty() {
        if max_layers > 0 && layers.len() == max_layers {
            layers.push(std::mem::take(&mut remaining));
            return (layers, true);
        }
        let layer: Vec<TupleId> = match hull_vertices(rel, &remaining) {
            Some(pos) if !pos.is_empty() => pos.iter().map(|&p| remaining[p as usize]).collect(),
            _ => {
                // Degenerate (flat or tiny) remainder: the skyline is also a
                // sound layer; if even that fails to shrink, finish by
                // peeling skyline layers outright.
                let sky = sfs(rel, &remaining);
                if sky.len() == remaining.len() {
                    for l in skyline_layers(rel, &remaining, SkylineAlgo::Sfs) {
                        layers.push(l);
                    }
                    return (layers, false);
                }
                sky
            }
        };
        let mut in_layer = vec![false; remaining.len()];
        {
            // Map back: layer entries are ids; mark their positions.
            let mut pos_of = std::collections::HashMap::with_capacity(remaining.len());
            for (pos, &id) in remaining.iter().enumerate() {
                pos_of.insert(id, pos);
            }
            for &id in &layer {
                in_layer[pos_of[&id]] = true;
            }
        }
        let mut next = Vec::with_capacity(remaining.len() - layer.len());
        for (pos, &id) in remaining.iter().enumerate() {
            if !in_layer[pos] {
                next.push(id);
            }
        }
        remaining = next;
        layers.push(layer);
    }
    (layers, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, Weights, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layers_partition() {
        for d in 2..=4 {
            let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 400, 5).generate();
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let (layers, overflow) = fat_convex_layers(&rel, &all, 0);
            assert!(!overflow);
            let mut flat: Vec<TupleId> = layers.iter().flatten().copied().collect();
            flat.sort_unstable();
            assert_eq!(flat, all);
        }
    }

    #[test]
    fn per_layer_minima_nondecreasing() {
        let mut rng = StdRng::seed_from_u64(4);
        for d in 2..=4 {
            let rel = WorkloadSpec::new(Distribution::Independent, d, 500, 6).generate();
            let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
            let (layers, _) = fat_convex_layers(&rel, &all, 0);
            for _ in 0..10 {
                let w = Weights::random(d, &mut rng);
                let minima: Vec<f64> = layers
                    .iter()
                    .map(|l| {
                        l.iter()
                            .map(|&t| w.score(rel.tuple(t)))
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
                for pair in minima.windows(2) {
                    assert!(
                        pair[0] <= pair[1] + 1e-12,
                        "minima must be non-decreasing (d={d})"
                    );
                }
            }
        }
    }

    #[test]
    fn overflow_cap() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 500, 2).generate();
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let (layers, overflow) = fat_convex_layers(&rel, &all, 3);
        assert!(overflow);
        assert_eq!(layers.len(), 4, "3 convex layers + 1 overflow");
        let mut flat: Vec<TupleId> = layers.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat, all);
    }
}
