//! The Onion index (Chang et al., SIGMOD 2000).
//!
//! Convex layers with *complete access*: a query evaluates whole layers in
//! order until the answer provably cannot improve. Layer minima are
//! non-decreasing in the layer number for every positive weight vector, so
//! processing stops once the current k-th best score is at most the minimum
//! score seen in the last evaluated layer.

use crate::layers::fat_convex_layers;
use drtopk_common::weights::ScoredTuple;
use drtopk_common::{Cost, Relation, TupleId, Weights};

/// A built Onion index.
#[derive(Debug, Clone)]
pub struct OnionIndex {
    rel: Relation,
    layers: Vec<Vec<TupleId>>,
    /// Whether the last layer is an uncapped overflow remainder (carries no
    /// convexity guarantee; scanned fully if reached).
    overflow: bool,
}

impl OnionIndex {
    /// Builds the index. `max_layers = 0` peels the whole relation; any
    /// positive cap leaves an overflow layer (sound, see [`fat_convex_layers`]).
    pub fn build(rel: &Relation, max_layers: usize) -> Self {
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let (layers, overflow) = fat_convex_layers(rel, &all, max_layers);
        OnionIndex {
            rel: rel.clone(),
            layers,
            overflow,
        }
    }

    /// The peeled layers.
    pub fn layers(&self) -> &[Vec<TupleId>] {
        &self.layers
    }

    /// Answers a top-k query, reporting the paper's cost metric.
    pub fn topk(&self, w: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
        assert_eq!(w.dims(), self.rel.dims());
        let mut cost = Cost::new();
        let k_eff = k.min(self.rel.len());
        if k_eff == 0 {
            return (Vec::new(), cost);
        }
        let mut candidates: Vec<ScoredTuple> = Vec::new();
        let convex_count = self.layers.len() - usize::from(self.overflow);
        for (li, layer) in self.layers.iter().enumerate() {
            let is_overflow = li >= convex_count;
            let mut layer_min = f64::INFINITY;
            for &t in layer {
                let score = w.score(self.rel.tuple(t));
                cost.tick();
                layer_min = layer_min.min(score);
                candidates.push(ScoredTuple { score, id: t });
            }
            candidates.sort_unstable();
            candidates.truncate(k_eff);
            // Stop once deeper layers cannot contribute: their minima are
            // >= this layer's minimum (convex layers only), and after k
            // layers the answer is complete anyway — unless the overflow
            // remainder is in range, which must be scanned.
            let enough = candidates.len() >= k_eff;
            // Strict: an equal-score tuple deeper down could still win the id tie-break.
            let by_bound = enough && !is_overflow && candidates[k_eff - 1].score < layer_min;
            let by_depth = enough && li + 1 >= k_eff.min(convex_count);
            let overflow_pending = self.overflow && li + 1 == convex_count && !by_bound;
            if by_bound || (by_depth && !overflow_pending) {
                break;
            }
        }
        (candidates.into_iter().map(|s| s.id).collect(), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(8);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 300, 19).generate();
                let idx = OnionIndex::build(&rel, 0);
                for k in [1, 10, 60] {
                    let w = Weights::random(d, &mut rng);
                    let (got, _) = idx.topk(&w, k);
                    assert_eq!(got, topk_bruteforce(&rel, &w, k), "{dist:?} d={d} k={k}");
                }
            }
        }
    }

    #[test]
    fn capped_build_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(9);
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 400, 7).generate();
        let idx = OnionIndex::build(&rel, 4);
        for k in [1, 5, 50, 200] {
            let w = Weights::random(3, &mut rng);
            let (got, _) = idx.topk(&w, k);
            assert_eq!(got, topk_bruteforce(&rel, &w, k), "k={k}");
        }
    }

    #[test]
    fn cost_is_complete_per_layer() {
        // Onion's cost must equal the total size of the layers it touched.
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 300, 3).generate();
        let idx = OnionIndex::build(&rel, 0);
        let w = Weights::uniform(3);
        let (_, cost) = idx.topk(&w, 5);
        let mut acc = 0usize;
        let mut valid = false;
        for layer in idx.layers() {
            acc += layer.len();
            if acc as u64 == cost.evaluated {
                valid = true;
                break;
            }
        }
        assert!(valid, "cost {} is not a layer-prefix sum", cost.evaluated);
    }

    #[test]
    fn k_edge_cases() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 40, 4).generate();
        let idx = OnionIndex::build(&rel, 0);
        let w = Weights::uniform(2);
        assert!(idx.topk(&w, 0).0.is_empty());
        assert_eq!(idx.topk(&w, 100).0, topk_bruteforce(&rel, &w, 40));
    }
}
