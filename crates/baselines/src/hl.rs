//! The hybrid-layer index HL / HL+ (Heo, Cho & Whang, ICDE 2010).
//!
//! Convex layers (as in Onion) where each layer is stored as `d`
//! attribute-sorted lists. Queries run the Threshold Algorithm inside
//! layers, so access within a layer is *selective*:
//!
//! * **HL** processes the first `k` layers independently: each layer runs
//!   TA until its local threshold proves its remaining tuples useless
//!   against the k best seen so far.
//! * **HL+** coordinates the layers: it repeatedly steps, round-robin, only
//!   those layers whose thresholds still fall below the current global
//!   k-th best — the "tight threshold" variant the paper evaluates.

use crate::layers::fat_convex_layers;
use drtopk_common::weights::ScoredTuple;
use drtopk_common::{Cost, Relation, TupleId, Weights};
use drtopk_lists::{SortedLists, TaCursor};

/// A built hybrid-layer index.
#[derive(Debug, Clone)]
pub struct HlIndex {
    rel: Relation,
    layers: Vec<Vec<TupleId>>,
    lists: Vec<SortedLists>,
    overflow: bool,
}

impl HlIndex {
    /// Builds the index; `max_layers` as in
    /// [`OnionIndex::build`](crate::onion::OnionIndex::build).
    pub fn build(rel: &Relation, max_layers: usize) -> Self {
        let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let (layers, overflow) = fat_convex_layers(rel, &all, max_layers);
        let lists = layers.iter().map(|l| SortedLists::build(rel, l)).collect();
        HlIndex {
            rel: rel.clone(),
            layers,
            lists,
            overflow,
        }
    }

    /// The peeled layers.
    pub fn layers(&self) -> &[Vec<TupleId>] {
        &self.layers
    }

    /// How many layers a top-k query may need to consult.
    fn layers_in_scope(&self, k: usize) -> usize {
        let convex = self.layers.len() - usize::from(self.overflow);
        if k <= convex {
            k
        } else {
            self.layers.len()
        }
    }

    /// HL: independent per-layer TA, as in the original hybrid-layer index
    /// — each consulted layer computes its *local* top-k with its own
    /// threshold, then the local answers are merged. No information flows
    /// between layers, which is exactly the limitation HL+ removes.
    pub fn topk_hl(&self, w: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
        assert_eq!(w.dims(), self.rel.dims());
        let mut cost = Cost::new();
        let k_eff = k.min(self.rel.len());
        if k_eff == 0 {
            return (Vec::new(), cost);
        }
        let mut seen = vec![false; self.rel.len()];
        let mut merged: Vec<ScoredTuple> = Vec::new();
        let mut local: Vec<ScoredTuple> = Vec::new();
        let mut buf = Vec::new();
        for li in 0..self.layers_in_scope(k_eff) {
            let lists = &self.lists[li];
            let mut cursor = TaCursor::new(self.rel.dims());
            local.clear();
            loop {
                if cursor.exhausted(lists) {
                    break;
                }
                // Local TA stop: this layer's own top-k is final.
                if local.len() >= k_eff && local[k_eff - 1].score <= cursor.threshold(lists, w) {
                    break;
                }
                buf.clear();
                cursor.step(lists, &self.rel, w, &mut seen, &mut buf, &mut cost);
                local.append(&mut buf);
                local.sort_unstable();
                local.truncate(k_eff);
            }
            merged.append(&mut local);
        }
        merged.sort_unstable();
        merged.truncate(k_eff);
        (merged.into_iter().map(|s| s.id).collect(), cost)
    }

    /// HL+: globally coordinated round-robin TA with tight thresholds.
    pub fn topk_hl_plus(&self, w: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
        assert_eq!(w.dims(), self.rel.dims());
        let mut cost = Cost::new();
        let k_eff = k.min(self.rel.len());
        if k_eff == 0 {
            return (Vec::new(), cost);
        }
        let scope = self.layers_in_scope(k_eff);
        let mut cursors: Vec<TaCursor> =
            (0..scope).map(|_| TaCursor::new(self.rel.dims())).collect();
        let mut seen = vec![false; self.rel.len()];
        let mut candidates: Vec<ScoredTuple> = Vec::new();
        let mut buf = Vec::new();
        // Seeding phase: fill the candidate set from the shallowest layers
        // only, so deeper layers are never touched while the k-th bound is
        // still infinite.
        'seed: for (li, cursor) in cursors.iter_mut().enumerate() {
            while !cursor.exhausted(&self.lists[li]) {
                if candidates.len() >= k_eff {
                    break 'seed;
                }
                buf.clear();
                cursor.step(
                    &self.lists[li],
                    &self.rel,
                    w,
                    &mut seen,
                    &mut buf,
                    &mut cost,
                );
                candidates.append(&mut buf);
            }
        }
        candidates.sort_unstable();
        candidates.truncate(k_eff);
        loop {
            let kth = if candidates.len() >= k_eff {
                candidates[k_eff - 1].score
            } else {
                f64::INFINITY
            };
            // Step every layer still able to contribute (round-robin pass).
            let mut stepped = false;
            for (li, cursor) in cursors.iter_mut().enumerate() {
                if cursor.exhausted(&self.lists[li]) {
                    continue;
                }
                if cursor.threshold(&self.lists[li], w) >= kth {
                    continue;
                }
                buf.clear();
                cursor.step(
                    &self.lists[li],
                    &self.rel,
                    w,
                    &mut seen,
                    &mut buf,
                    &mut cost,
                );
                candidates.append(&mut buf);
                candidates.sort_unstable();
                candidates.truncate(k_eff);
                stepped = true;
            }
            if !stepped {
                break;
            }
        }
        (candidates.into_iter().map(|s| s.id).collect(), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hl_and_hl_plus_match_bruteforce() {
        let mut rng = StdRng::seed_from_u64(12);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 300, 27).generate();
                let idx = HlIndex::build(&rel, 0);
                for k in [1, 8, 45] {
                    let w = Weights::random(d, &mut rng);
                    let want = topk_bruteforce(&rel, &w, k);
                    assert_eq!(idx.topk_hl(&w, k).0, want, "HL {dist:?} d={d} k={k}");
                    assert_eq!(idx.topk_hl_plus(&w, k).0, want, "HL+ {dist:?} d={d} k={k}");
                }
            }
        }
    }

    #[test]
    fn hl_plus_is_selective_within_layers() {
        // The hybrid-layer claim (Table II): unlike the pure convex-layer
        // approach, access *within* the consulted layers is selective. The
        // honest baseline is complete access to the first k layers — what
        // the paper's Onion pays.
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 600, 14).generate();
        let k = 10;
        let hl = HlIndex::build(&rel, 0);
        let complete_k: u64 = hl.layers().iter().take(k).map(|l| l.len() as u64).sum();
        let mut rng = StdRng::seed_from_u64(2);
        let mut hl_sum = 0u64;
        let queries = 10;
        for _ in 0..queries {
            let w = Weights::random(4, &mut rng);
            hl_sum += hl.topk_hl_plus(&w, k).1.total();
        }
        assert!(
            hl_sum < complete_k * queries,
            "HL+ mean {} must beat complete k-layer access {}",
            hl_sum / queries,
            complete_k
        );
    }

    #[test]
    fn capped_build_still_correct() {
        let mut rng = StdRng::seed_from_u64(21);
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 400, 8).generate();
        let idx = HlIndex::build(&rel, 5);
        for k in [3, 30, 120] {
            let w = Weights::random(3, &mut rng);
            let want = topk_bruteforce(&rel, &w, k);
            assert_eq!(idx.topk_hl(&w, k).0, want, "HL capped k={k}");
            assert_eq!(idx.topk_hl_plus(&w, k).0, want, "HL+ capped k={k}");
        }
    }

    #[test]
    fn k_edge_cases() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 25, 6).generate();
        let idx = HlIndex::build(&rel, 0);
        let w = Weights::uniform(2);
        assert!(idx.topk_hl_plus(&w, 0).0.is_empty());
        assert_eq!(idx.topk_hl_plus(&w, 99).0, topk_bruteforce(&rel, &w, 25));
    }
}
