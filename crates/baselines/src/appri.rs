//! AppRI-style robust index (Xin, Chen & Han, VLDB 2006) — the paper's
//! other convex-layer-family comparator (Section VII-A).
//!
//! AppRI's observation: a tuple `t` can appear in a top-k result only if
//! its best possible rank over all weight vectors is ≤ k. Every dominator
//! of `t` beats it under *every* positive linear function, so
//! `best_rank(t) ≥ 1 + |dominators(t)|` — and assigning `t` to layer
//! `1 + |dominators(t)|` is sound for the top-k ⊆ first-k-layers
//! guarantee while producing much thinner deep layers than Onion's convex
//! peeling. (Full AppRI tightens the bound further with per-tuple linear
//! programs; the dominance-count approximation is its first, sound
//! stage, and what we implement here.)
//!
//! Queries give complete access to the first k layers, as the paper
//! says of the convex-layer family.

use drtopk_common::weights::ScoredTuple;
use drtopk_common::{dominates, Cost, Relation, TupleId, Weights};

/// A built AppRI-style index: tuples bucketed by `1 + dominator count`.
#[derive(Debug, Clone)]
pub struct AppRiIndex {
    rel: Relation,
    /// `layers[j]` holds the tuples with exactly `j` dominators.
    layers: Vec<Vec<TupleId>>,
}

impl AppRiIndex {
    /// Builds the index by counting dominators per tuple (sum-sorted
    /// prefilter keeps the quadratic scan tight).
    pub fn build(rel: &Relation) -> Self {
        let n = rel.len();
        let mut by_sum: Vec<(f64, TupleId)> = (0..n as TupleId)
            .map(|t| (rel.tuple(t).iter().sum::<f64>(), t))
            .collect();
        by_sum.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut dom_count = vec![0u32; n];
        // Dominance implies a strictly smaller attribute sum, so only
        // earlier tuples in sum order can dominate later ones.
        for i in 0..by_sum.len() {
            let (_, t) = by_sum[i];
            let tv = rel.tuple(t);
            for &(_, s) in &by_sum[..i] {
                if dominates(rel.tuple(s), tv) {
                    dom_count[t as usize] += 1;
                }
            }
        }
        let max_layer = dom_count.iter().copied().max().unwrap_or(0) as usize;
        let mut layers = vec![Vec::new(); max_layer + 1];
        for (t, &c) in dom_count.iter().enumerate() {
            layers[c as usize].push(t as TupleId);
        }
        AppRiIndex {
            rel: rel.clone(),
            layers,
        }
    }

    /// The layer list (layer j = tuples with j dominators; may be empty).
    pub fn layers(&self) -> &[Vec<TupleId>] {
        &self.layers
    }

    /// Answers a top-k query by scanning the first k layers completely.
    pub fn topk(&self, w: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
        assert_eq!(w.dims(), self.rel.dims());
        let mut cost = Cost::new();
        let k_eff = k.min(self.rel.len());
        if k_eff == 0 {
            return (Vec::new(), cost);
        }
        let mut candidates: Vec<ScoredTuple> = Vec::new();
        for layer in self.layers.iter().take(k_eff) {
            for &t in layer {
                cost.tick();
                candidates.push(ScoredTuple {
                    score: w.score(self.rel.tuple(t)),
                    id: t,
                });
            }
        }
        candidates.sort_unstable();
        candidates.truncate(k_eff);
        (candidates.into_iter().map(|s| s.id).collect(), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onion::OnionIndex;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(3);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 400, 41).generate();
                let idx = AppRiIndex::build(&rel);
                for k in [1, 10, 60, 400] {
                    let w = Weights::random(d, &mut rng);
                    assert_eq!(
                        idx.topk(&w, k).0,
                        topk_bruteforce(&rel, &w, k),
                        "{dist:?} d={d} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn layer_1_is_the_skyline() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 300, 9).generate();
        let idx = AppRiIndex::build(&rel);
        let all: Vec<TupleId> = (0..300).collect();
        let mut sky = drtopk_skyline::algorithms::sfs(&rel, &all);
        sky.sort_unstable();
        let mut l1 = idx.layers()[0].clone();
        l1.sort_unstable();
        assert_eq!(l1, sky, "zero-dominator tuples are exactly the skyline");
    }

    #[test]
    fn appri_prefix_smaller_than_onion_prefix() {
        // The robustness claim: AppRI's first-k-layers hold fewer tuples
        // than Onion's (complete-access cost comparison at equal k).
        let rel = WorkloadSpec::new(Distribution::Independent, 4, 1500, 8).generate();
        let appri = AppRiIndex::build(&rel);
        let onion = OnionIndex::build(&rel, 0);
        for k in [5, 10, 20] {
            let a: usize = appri.layers().iter().take(k).map(|l| l.len()).sum();
            let o: usize = onion.layers().iter().take(k).map(|l| l.len()).sum();
            assert!(
                a <= o,
                "AppRI prefix {a} must not exceed Onion prefix {o} at k={k}"
            );
        }
    }

    #[test]
    fn layers_partition() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 250, 6).generate();
        let idx = AppRiIndex::build(&rel);
        let mut all: Vec<TupleId> = idx.layers().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..250).collect::<Vec<TupleId>>());
    }
}
