//! PLI — a partitioned-layer index in the style of Heo et al. (Inf. Sci.
//! 2009, the paper's reference \[29\] and the precursor of the hybrid-layer
//! index).
//!
//! The relation is split into `p` partitions; each partition is peeled
//! into its own convex layers. Because each partition's layer minima are
//! non-decreasing for every positive weight vector, a query can *merge*
//! the partitions best-first: repeatedly evaluate the next layer of the
//! partition with the lowest bound, and stop once the global k-th best
//! score is at most every partition's bound. Smaller per-partition layers
//! mean the merge reads far fewer tuples than one monolithic convex-layer
//! index would (the "partitioning-merging technique" of the title).
//!
//! Partitions are formed by k-means clustering so each one is spatially
//! coherent (the closer a partition's layers hug its local frontier, the
//! earlier its bound rises past the global k-th best).

use crate::layers::fat_convex_layers;
use drtopk_cluster::kmeans;
use drtopk_common::weights::ScoredTuple;
use drtopk_common::{Cost, Relation, TupleId, Weights};

/// One partition: its tuples peeled into convex layers.
#[derive(Debug, Clone)]
struct Partition {
    layers: Vec<Vec<TupleId>>,
}

/// A built partitioned-layer index.
#[derive(Debug, Clone)]
pub struct PliIndex {
    rel: Relation,
    partitions: Vec<Partition>,
}

impl PliIndex {
    /// Builds the index with `p` partitions (0 = automatic: ⌈√(n/64)⌉,
    /// clamped to at least 1).
    pub fn build(rel: &Relation, p: usize) -> Self {
        let n = rel.len();
        let ids: Vec<TupleId> = (0..n as TupleId).collect();
        if n == 0 {
            return PliIndex {
                rel: rel.clone(),
                partitions: Vec::new(),
            };
        }
        let p = if p == 0 {
            (((n as f64) / 64.0).sqrt().ceil() as usize).max(1)
        } else {
            p
        }
        .min(n);
        let clustering = kmeans(rel, &ids, p, 0xbeef, 30);
        let mut partitions = Vec::with_capacity(clustering.k);
        for group in clustering.groups() {
            let members: Vec<TupleId> = group.into_iter().map(|pos| ids[pos as usize]).collect();
            let (layers, _) = fat_convex_layers(rel, &members, 0);
            partitions.push(Partition { layers });
        }
        PliIndex {
            rel: rel.clone(),
            partitions,
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Answers a top-k query by best-first merging of partition layers.
    pub fn topk(&self, w: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
        assert_eq!(w.dims(), self.rel.dims());
        let mut cost = Cost::new();
        let k_eff = k.min(self.rel.len());
        if k_eff == 0 {
            return (Vec::new(), cost);
        }
        // Per-partition state: next layer index and the bound = minimum
        // score of the last *evaluated* layer (layer minima are monotone,
        // so every unevaluated tuple of the partition scores >= bound).
        let mut next_layer = vec![0usize; self.partitions.len()];
        let mut bound = vec![f64::NEG_INFINITY; self.partitions.len()];
        let mut candidates: Vec<ScoredTuple> = Vec::new();
        loop {
            // The partition with the lowest bound is the only place a
            // better tuple could hide.
            let active = (0..self.partitions.len())
                .filter(|&pi| next_layer[pi] < self.partitions[pi].layers.len())
                .min_by(|&a, &b| bound[a].partial_cmp(&bound[b]).unwrap());
            let kth = if candidates.len() >= k_eff {
                candidates[k_eff - 1].score
            } else {
                f64::INFINITY
            };
            let Some(pi) = active else { break };
            if kth <= bound[pi] {
                break; // every remaining tuple in every partition is worse
            }
            let layer = &self.partitions[pi].layers[next_layer[pi]];
            next_layer[pi] += 1;
            let mut layer_min = f64::INFINITY;
            for &t in layer {
                let score = w.score(self.rel.tuple(t));
                cost.tick();
                layer_min = layer_min.min(score);
                candidates.push(ScoredTuple { score, id: t });
            }
            bound[pi] = layer_min;
            candidates.sort_unstable();
            candidates.truncate(k_eff);
        }
        (candidates.into_iter().map(|s| s.id).collect(), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onion::OnionIndex;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(55);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 400, 23).generate();
                for p in [0, 1, 4, 16] {
                    let idx = PliIndex::build(&rel, p);
                    for k in [1, 10, 50] {
                        let w = Weights::random(d, &mut rng);
                        assert_eq!(
                            idx.topk(&w, k).0,
                            topk_bruteforce(&rel, &w, k),
                            "{dist:?} d={d} p={p} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partitions_cover_relation() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 300, 4).generate();
        let idx = PliIndex::build(&rel, 6);
        let mut all: Vec<TupleId> = idx
            .partitions
            .iter()
            .flat_map(|p| p.layers.iter().flatten().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<TupleId>>());
    }

    #[test]
    fn partition_merge_beats_complete_k_layer_access() {
        // The reference's claim: the partition-merge evaluates fewer
        // tuples than complete access to the first k monolithic convex
        // layers (the classical Onion guarantee). Our OnionIndex adds a
        // sound early-stop on top of that guarantee, so the honest
        // baseline here is the k-layer prefix size itself.
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 2000, 31).generate();
        let k = 10;
        let pli = PliIndex::build(&rel, 0);
        let onion = OnionIndex::build(&rel, 0);
        let complete_k: u64 = onion.layers().iter().take(k).map(|l| l.len() as u64).sum();
        let mut rng = StdRng::seed_from_u64(77);
        let queries = 15;
        let mut c_pli = 0u64;
        for _ in 0..queries {
            let w = Weights::random(4, &mut rng);
            let (a, ca) = pli.topk(&w, k);
            assert_eq!(a, topk_bruteforce(&rel, &w, k));
            c_pli += ca.total();
        }
        assert!(
            c_pli < complete_k * queries,
            "PLI mean {} must beat complete k-layer access {}",
            c_pli / queries,
            complete_k
        );
    }

    #[test]
    fn edge_cases() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 10, 2).generate();
        let idx = PliIndex::build(&rel, 3);
        let w = Weights::uniform(2);
        assert!(idx.topk(&w, 0).0.is_empty());
        assert_eq!(idx.topk(&w, 50).0, topk_bruteforce(&rel, &w, 10));
    }
}
