//! The Dominant Graph DG / DG+ (Zou & Chen, ICDE 2008).
//!
//! The paper observes that "DG … employs only coarse-level layers from
//! dual-resolution layer indexing, and cannot take advantage of
//! ∃-dominance relationships" (Section IV). We implement it exactly that
//! way: a [`DualLayerIndex`] with fine splitting disabled. DG+ adds the
//! flat clustered pseudo-tuple zero layer of [Zou & Chen].
//!
//! Expressing DG through the same engine makes Theorem 5 (cost(DL) ≤
//! cost(DG)) directly testable and keeps the experiment comparison free of
//! incidental implementation differences.

use drtopk_common::Relation;
use drtopk_core::{DlOptions, DualLayerIndex};

/// Builds the Dominant Graph: skyline layers + ∀-dominance edges only.
pub fn dg_index(rel: &Relation) -> DualLayerIndex {
    DualLayerIndex::build(rel, DlOptions::dg())
}

/// Builds DG+: the Dominant Graph with a flat pseudo-tuple zero layer.
pub fn dg_plus_index(rel: &Relation) -> DualLayerIndex {
    DualLayerIndex::build(rel, DlOptions::dg_plus())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{topk_bruteforce, Distribution, Weights, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dg_has_no_fine_structure() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 1).generate();
        let dg = dg_index(&rel);
        assert!(dg.coarse_layers().iter().all(|l| l.fine.len() == 1));
        assert_eq!(dg.stats().exists_edges, 0);
        assert_eq!(dg.stats().pseudo_tuples, 0);
        let dgp = dg_plus_index(&rel);
        assert!(dgp.stats().pseudo_tuples >= 1);
        assert_eq!(dgp.stats().exists_edges, 0, "DG+ has no ∃ edges either");
    }

    #[test]
    fn dg_seeds_whole_first_layer() {
        // DG gives complete access to L1 (the paper's motivating weakness).
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 300, 2).generate();
        let dg = dg_index(&rel);
        assert_eq!(dg.stats().seeds, dg.stats().first_layer_size);
    }

    #[test]
    fn correctness() {
        let mut rng = StdRng::seed_from_u64(33);
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 250, 5).generate();
        let dg = dg_index(&rel);
        let dgp = dg_plus_index(&rel);
        for k in [1, 10, 30] {
            let w = Weights::random(4, &mut rng);
            let want = topk_bruteforce(&rel, &w, k);
            assert_eq!(dg.topk(&w, k).ids, want);
            assert_eq!(dgp.topk(&w, k).ids, want);
        }
    }
}
