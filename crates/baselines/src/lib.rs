//! The paper's comparator indexes, implemented in full:
//!
//! * [`onion`] — Onion (Chang et al., SIGMOD 2000): convex layers with
//!   complete per-layer access;
//! * [`hl`] — the hybrid-layer index HL / HL+ (Heo, Cho & Whang, ICDE
//!   2010): convex layers stored as per-attribute sorted lists, queried
//!   with the Threshold Algorithm; HL+ tightens thresholds by accessing
//!   layers in a globally-coordinated round-robin;
//! * [`appri`] — an AppRI-style robust index (Xin, Chen & Han, VLDB
//!   2006): dominance-count layer assignment, thinner deep layers than
//!   Onion;
//! * [`dg`] — the Dominant Graph DG / DG+ (Zou & Chen, ICDE 2008),
//!   expressed as dual-resolution indexes without fine splitting (which is
//!   exactly the paper's framing: "DG … employs only coarse-level layers
//!   … and cannot take advantage of ∃-dominance relationships").

pub mod appri;
pub mod dg;
pub mod hl;
pub mod layers;
pub mod onion;
pub mod pli;
pub mod prefer;

pub use appri::AppRiIndex;
pub use dg::{dg_index, dg_plus_index};
pub use hl::HlIndex;
pub use onion::OnionIndex;
pub use pli::PliIndex;
pub use prefer::PreferIndex;
