//! PREFER-style view-based top-k (Hristidis, Koudas & Papakonstantinou,
//! SIGMOD 2001) — the third family in the paper's taxonomy (Section
//! VII-C), completing layer-, list-, and view-based coverage.
//!
//! The index materializes *views*: complete rankings of the relation
//! under a handful of representative weight vectors. A query with weights
//! `q` scans the most similar view in its order, scoring each tuple
//! exactly, and stops at the *watermark*: once the query's k-th best
//! score is at most `s · min_j(q_j / v_j)` — a sound lower bound on the
//! query score of any tuple whose view score is ≥ s (minimize `q·t`
//! subject to `v·t ≥ s`, relaxing the `[0,1]` box) — no deeper tuple can
//! improve the answer.
//!
//! The paper's Section VII-C drawback — "the overhead of storing and
//! managing multiple top-k views" — is visible directly: each view costs
//! O(n) storage and the answer quality depends on view/query similarity.

use drtopk_common::weights::ScoredTuple;
use drtopk_common::{Cost, Relation, TupleId, Weights};

/// One materialized view: a weight vector and the full ranking under it.
#[derive(Debug, Clone)]
struct View {
    weights: Weights,
    ranking: Vec<TupleId>,
}

/// A built PREFER-style view index.
#[derive(Debug, Clone)]
pub struct PreferIndex {
    rel: Relation,
    views: Vec<View>,
}

impl PreferIndex {
    /// Materializes one view per weight vector in `view_weights`.
    ///
    /// # Panics
    /// Panics if `view_weights` is empty or dimensionalities mismatch.
    pub fn build(rel: &Relation, view_weights: &[Weights]) -> Self {
        assert!(!view_weights.is_empty(), "at least one view is required");
        let views = view_weights
            .iter()
            .map(|w| {
                assert_eq!(w.dims(), rel.dims());
                View {
                    weights: w.clone(),
                    ranking: drtopk_common::topk_bruteforce(rel, w, rel.len()),
                }
            })
            .collect();
        PreferIndex {
            rel: rel.clone(),
            views,
        }
    }

    /// Materializes `count` views on a deterministic low-discrepancy set of
    /// weight vectors (uniform + rotations of a Kronecker sequence).
    pub fn build_with_default_views(rel: &Relation, count: usize) -> Self {
        let d = rel.dims();
        let mut weights = vec![Weights::uniform(d)];
        // Kronecker/Weyl sequence over the simplex: deterministic, spreads
        // views without an RNG.
        let mut x = 0.5f64;
        let alpha = 0.754_877_666; // plastic-number-based irrational step
        for _ in 1..count.max(1) {
            let mut raw = Vec::with_capacity(d);
            for j in 0..d {
                x = (x + alpha * (j + 1) as f64).fract();
                raw.push(0.05 + x);
            }
            weights.push(Weights::new(raw).expect("positive weights"));
        }
        Self::build(rel, &weights)
    }

    /// Number of materialized views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Total materialized entries (the storage overhead the paper notes).
    pub fn materialized_entries(&self) -> usize {
        self.views.len() * self.rel.len()
    }

    /// The watermark coefficient: `min_j q_j / v_j`.
    fn similarity(q: &Weights, v: &Weights) -> f64 {
        q.as_slice()
            .iter()
            .zip(v.as_slice())
            .map(|(q, v)| q / v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Answers a top-k query by scanning the best-matching view up to its
    /// watermark.
    pub fn topk(&self, q: &Weights, k: usize) -> (Vec<TupleId>, Cost) {
        assert_eq!(q.dims(), self.rel.dims());
        let mut cost = Cost::new();
        let k_eff = k.min(self.rel.len());
        if k_eff == 0 {
            return (Vec::new(), cost);
        }
        // Most similar view = largest watermark coefficient (tightest stop).
        let (view, coeff) = self
            .views
            .iter()
            .map(|v| (v, Self::similarity(q, &v.weights)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite coefficients"))
            .expect("at least one view");

        let mut candidates: Vec<ScoredTuple> = Vec::new();
        for &t in &view.ranking {
            let tv = self.rel.tuple(t);
            cost.tick();
            candidates.push(ScoredTuple {
                score: q.score(tv),
                id: t,
            });
            if candidates.len() >= k_eff {
                candidates.sort_unstable();
                candidates.truncate(k_eff);
                // Watermark: any unscanned tuple u has view score
                // >= the current tuple's view score s, hence query score
                // >= s * coeff.
                let s = view.weights.score(tv);
                if candidates[k_eff - 1].score <= s * coeff {
                    break;
                }
            }
        }
        candidates.sort_unstable();
        candidates.truncate(k_eff);
        (candidates.into_iter().map(|s| s.id).collect(), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(12);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 400, 77).generate();
                let idx = PreferIndex::build_with_default_views(&rel, 8);
                for k in [1, 10, 50] {
                    let w = Weights::random(d, &mut rng);
                    assert_eq!(
                        idx.topk(&w, k).0,
                        topk_bruteforce(&rel, &w, k),
                        "{dist:?} d={d} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_view_match_costs_k() {
        // Querying with a view's own weights stops at exactly k scans.
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 1000, 4).generate();
        let w = Weights::uniform(3);
        let idx = PreferIndex::build(&rel, std::slice::from_ref(&w));
        let (got, cost) = idx.topk(&w, 10);
        assert_eq!(got, topk_bruteforce(&rel, &w, 10));
        assert_eq!(cost.evaluated, 10, "identical weights need no over-scan");
    }

    #[test]
    fn more_views_reduce_cost() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 2000, 6).generate();
        let sparse = PreferIndex::build_with_default_views(&rel, 1);
        let dense = PreferIndex::build_with_default_views(&rel, 16);
        let mut rng = StdRng::seed_from_u64(5);
        let (mut c_sparse, mut c_dense) = (0u64, 0u64);
        for _ in 0..20 {
            let w = Weights::random(3, &mut rng);
            c_sparse += sparse.topk(&w, 10).1.total();
            c_dense += dense.topk(&w, 10).1.total();
        }
        assert!(
            c_dense < c_sparse,
            "denser view sets must tighten the watermark ({c_dense} vs {c_sparse})"
        );
        // ...and the paper's noted overhead is real:
        assert_eq!(dense.materialized_entries(), 16 * 2000);
    }

    #[test]
    fn k_edge_cases() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 25, 1).generate();
        let idx = PreferIndex::build_with_default_views(&rel, 3);
        let w = Weights::uniform(2);
        assert!(idx.topk(&w, 0).0.is_empty());
        assert_eq!(idx.topk(&w, 99).0, topk_bruteforce(&rel, &w, 25));
    }
}
