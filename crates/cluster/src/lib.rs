//! Lloyd's k-means with k-means++ seeding.
//!
//! Used by the zero-layer optimization (Section V-B): the first layer's
//! tuples are clustered and each cluster is summarized by a pseudo-tuple
//! at the cluster's coordinate-wise minimum, which dominates every member.

use drtopk_common::{Relation, TupleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of clustering a set of tuples.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index of each input tuple (parallel to the input slice).
    pub assignment: Vec<u32>,
    /// Cluster centroids (row-major, `dims` columns).
    pub centroids: Vec<f64>,
    /// Number of clusters actually produced (≤ requested; empty clusters
    /// are dropped and indices compacted).
    pub k: usize,
}

impl Clustering {
    /// Members of each cluster, as positions into the clustered slice.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut g = vec![Vec::new(); self.k];
        for (pos, &c) in self.assignment.iter().enumerate() {
            g[c as usize].push(pos as u32);
        }
        g
    }
}

/// Runs k-means over the tuples `ids` of `rel`.
///
/// `k` is clamped to the number of distinct input tuples. Seeding is
/// k-means++ (deterministic per `seed`); iteration stops on assignment
/// convergence or after `max_iters`.
pub fn kmeans(
    rel: &Relation,
    ids: &[TupleId],
    k: usize,
    seed: u64,
    max_iters: usize,
) -> Clustering {
    let d = rel.dims();
    let n = ids.len();
    assert!(n > 0, "cannot cluster an empty set");
    let k = k.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<f64> = Vec::with_capacity(k * d);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(rel.tuple(ids[first]));
    let mut dist2: Vec<f64> = (0..n)
        .map(|i| sq_dist(rel.tuple(ids[i]), &centroids[0..d]))
        .collect();
    while centroids.len() < k * d {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; any point works.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        let c0 = centroids.len();
        centroids.extend_from_slice(rel.tuple(ids[chosen]));
        let new_c = centroids[c0..c0 + d].to_vec();
        for (i, d2) in dist2.iter_mut().enumerate() {
            *d2 = d2.min(sq_dist(rel.tuple(ids[i]), &new_c));
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0u32; n];
    for _ in 0..max_iters {
        let mut changed = false;
        for i in 0..n {
            let t = rel.tuple(ids[i]);
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dd = sq_dist(t, &centroids[c * d..(c + 1) * d]);
                if dd < best_d {
                    best_d = dd;
                    best = c as u32;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c * d..(c + 1) * d].iter_mut().zip(rel.tuple(ids[i])) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    centroids[c * d + j] = sums[c * d + j] / counts[c] as f64;
                }
            }
        }
    }

    // Compact away empty clusters.
    let mut counts = vec![0usize; k];
    for &a in &assignment {
        counts[a as usize] += 1;
    }
    let mut remap = vec![u32::MAX; k];
    let mut new_centroids = Vec::new();
    let mut kk = 0;
    for c in 0..k {
        if counts[c] > 0 {
            remap[c] = kk as u32;
            new_centroids.extend_from_slice(&centroids[c * d..(c + 1) * d]);
            kk += 1;
        }
    }
    for a in &mut assignment {
        *a = remap[*a as usize];
    }
    Clustering {
        assignment,
        centroids: new_centroids,
        k: kk,
    }
}

/// The pseudo-tuple of a cluster: the coordinate-wise minimum of its
/// members, which (weakly) dominates every member (Section V-B).
pub fn cluster_min_corners(
    rel: &Relation,
    ids: &[TupleId],
    clustering: &Clustering,
) -> Vec<Vec<f64>> {
    let d = rel.dims();
    let mut corners = vec![vec![f64::INFINITY; d]; clustering.k];
    for (pos, &c) in clustering.assignment.iter().enumerate() {
        let t = rel.tuple(ids[pos]);
        for (m, &x) in corners[c as usize].iter_mut().zip(t) {
            *m = m.min(x);
        }
    }
    corners
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{dominates_eq, Distribution, WorkloadSpec};

    #[test]
    fn separates_obvious_clusters() {
        let mut rows = Vec::new();
        for i in 0..20 {
            let e = i as f64 * 0.001;
            rows.push(vec![0.1 + e, 0.1 + e]);
            rows.push(vec![0.9 - e, 0.9 - e]);
        }
        let rel = Relation::from_rows(2, &rows).unwrap();
        let ids: Vec<TupleId> = (0..rows.len() as TupleId).collect();
        let c = kmeans(&rel, &ids, 2, 7, 50);
        assert_eq!(c.k, 2);
        // All low points in one cluster, all high points in the other.
        let low_cluster = c.assignment[0];
        for (pos, &a) in c.assignment.iter().enumerate() {
            if pos % 2 == 0 {
                assert_eq!(a, low_cluster);
            } else {
                assert_ne!(a, low_cluster);
            }
        }
    }

    #[test]
    fn min_corners_dominate_members() {
        let rel = WorkloadSpec::new(Distribution::Independent, 4, 300, 11).generate();
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let c = kmeans(&rel, &ids, 10, 3, 30);
        let corners = cluster_min_corners(&rel, &ids, &c);
        assert_eq!(corners.len(), c.k);
        for (pos, &a) in c.assignment.iter().enumerate() {
            assert!(dominates_eq(&corners[a as usize], rel.tuple(ids[pos])));
        }
    }

    #[test]
    fn k_clamped_and_deterministic() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 5, 2).generate();
        let ids: Vec<TupleId> = (0..5).collect();
        let c = kmeans(&rel, &ids, 50, 1, 30);
        assert!(c.k <= 5);
        let c2 = kmeans(&rel, &ids, 50, 1, 30);
        assert_eq!(c.assignment, c2.assignment);
    }

    #[test]
    fn identical_points_single_cluster_semantics() {
        let rows: Vec<Vec<f64>> = (0..8).map(|_| vec![0.4, 0.6]).collect();
        let rel = Relation::from_rows(2, &rows).unwrap();
        let ids: Vec<TupleId> = (0..8).collect();
        let c = kmeans(&rel, &ids, 3, 5, 20);
        // All duplicates must share one cluster; empties are compacted.
        assert!(c.k >= 1);
        let g = c.groups();
        assert_eq!(g.iter().map(|v| v.len()).sum::<usize>(), 8);
    }

    #[test]
    fn groups_cover_all_positions() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 120, 9).generate();
        let ids: Vec<TupleId> = (0..rel.len() as TupleId).collect();
        let c = kmeans(&rel, &ids, 8, 2, 25);
        let mut all: Vec<u32> = c.groups().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..120).collect::<Vec<u32>>());
    }
}
