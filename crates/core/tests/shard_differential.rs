//! Differential oracle gate for sharded routing: across dimensionality,
//! shard count, and workload shape, the routed answer must be
//! bit-identical to the unsharded dynamic index — and with shards forced
//! down, bit-identical to the unsharded index over the surviving
//! partitions. This is the merge tie-break contract under randomized
//! load; any drift here is a correctness bug, not noise.

use drtopk_common::{Distribution, Relation, Weights, WorkloadSpec};
use drtopk_core::shard::shard_of;
use drtopk_core::{DlOptions, DynamicIndex, Handle, QueryBudget, RouterConfig, ShardRouter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_shards(rel: &Relation, p: usize) -> Vec<DynamicIndex> {
    drtopk_core::partition_relation(rel, p)
        .unwrap()
        .into_iter()
        .map(|(part, handles)| {
            DynamicIndex::with_handles(&part, handles, DlOptions::default(), 0.5).unwrap()
        })
        .collect()
}

fn survivor_oracle(rel: &Relation, p: usize, dead: &[usize]) -> DynamicIndex {
    let dims = rel.dims();
    let mut flat = Vec::new();
    let mut handles = Vec::new();
    for (t, row) in rel.iter() {
        if !dead.contains(&shard_of(t as Handle, p)) {
            flat.extend_from_slice(row);
            handles.push(t as Handle);
        }
    }
    DynamicIndex::with_handles(
        &Relation::from_flat_unchecked(dims, flat),
        handles,
        DlOptions::default(),
        0.5,
    )
    .unwrap()
}

#[test]
fn sharded_matches_unsharded_across_configurations() {
    let configs: [(usize, usize, usize, Distribution); 4] = [
        (2, 300, 2, Distribution::Independent),
        (3, 400, 3, Distribution::Correlated),
        (4, 257, 7, Distribution::AntiCorrelated),
        (2, 64, 5, Distribution::Independent),
    ];
    for (d, n, p, dist) in configs {
        let rel = WorkloadSpec::new(dist, d, n, (d * n + p) as u64).generate();
        let router = ShardRouter::new(build_shards(&rel, p), RouterConfig::default()).unwrap();
        let oracle = DynamicIndex::new(&rel, DlOptions::default(), 0.5);
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ (d as u64) << 8 ^ n as u64);
        for _ in 0..25 {
            let w = Weights::random(d, &mut rng);
            let k = rng.gen_range(1..=40);
            let routed = router.topk(&w, k, &QueryBudget::unlimited());
            assert!(routed.coverage.is_full());
            assert_eq!(
                routed.ids,
                oracle.topk(&w, k).0,
                "d={d} n={n} p={p} k={k}: routed answer drifted from the oracle"
            );
        }
    }
}

#[test]
fn degraded_matches_survivor_oracle_for_every_dead_shard() {
    let (d, n, p) = (3, 360, 4);
    let rel = WorkloadSpec::new(Distribution::Independent, d, n, 77).generate();
    let oracle_full = DynamicIndex::new(&rel, DlOptions::default(), 0.5);
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for dead in 0..p {
        let router = ShardRouter::new(build_shards(&rel, p), RouterConfig::default()).unwrap();
        router.cordon(dead);
        let survivors = survivor_oracle(&rel, p, &[dead]);
        for _ in 0..15 {
            let w = Weights::random(d, &mut rng);
            let k = rng.gen_range(1..=30);
            let routed = router.topk(&w, k, &QueryBudget::unlimited());
            assert!(routed.coverage.degraded());
            assert_eq!(routed.coverage.skipped(), vec![dead]);
            assert_eq!(
                routed.ids,
                survivors.topk(&w, k).0,
                "dead={dead} k={k}: degraded answer is not the survivor-partition top-k"
            );
        }
        // Rejoin: full bit-identity returns.
        router.mark_up(dead);
        let w = Weights::random(d, &mut rng);
        let routed = router.topk(&w, 20, &QueryBudget::unlimited());
        assert!(routed.coverage.is_full());
        assert_eq!(routed.ids, oracle_full.topk(&w, 20).0);
    }
}

#[test]
fn two_dead_shards_still_merge_exactly() {
    let (d, n, p) = (2, 300, 5);
    let rel = WorkloadSpec::new(Distribution::Independent, d, n, 31).generate();
    let router = ShardRouter::new(build_shards(&rel, p), RouterConfig::default()).unwrap();
    router.cordon(0);
    router.cordon(3);
    let survivors = survivor_oracle(&rel, p, &[0, 3]);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..10 {
        let w = Weights::random(d, &mut rng);
        let k = rng.gen_range(1..=25);
        let routed = router.topk(&w, k, &QueryBudget::unlimited());
        assert_eq!(routed.coverage.skipped(), vec![0, 3]);
        assert_eq!(routed.ids, survivors.topk(&w, k).0);
    }
}
