//! Scoped-thread fan-out primitives, shared across the workspace.
//!
//! The implementations live in [`drtopk_common::par`] so that the skyline
//! crate's incremental peel can use the same worker pool without a
//! dependency cycle (core depends on skyline, not the other way around).
//! This module re-exports them under the historical `core::par` path used
//! by the build phases and the batch executor.

pub use drtopk_common::par::{parallel_map, parallel_map_chunked, resolve_workers_chunked};
