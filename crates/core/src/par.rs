//! Shared scoped-thread fan-out used by the parallel build phases and the
//! batch query executor.
//!
//! Both callers need the same shape: map a function over a slice of
//! independent work items, one contiguous chunk per worker, writing each
//! result into its item's slot so output order equals input order. The
//! build phases use stateless workers ([`parallel_map`]); the batch
//! executor threads a per-worker state — its [`QueryScratch`] — through
//! every call ([`parallel_map_with`]).
//!
//! [`QueryScratch`]: crate::query::QueryScratch

/// Resolves a requested worker count: `0` means "all available cores",
/// anything else is taken literally, and the result never exceeds the
/// number of items (spawning idle threads is pure overhead).
pub(crate) fn resolve_workers(requested: usize, items: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        requested
    };
    workers.min(items).max(1)
}

/// Maps `f` over `items` using scoped threads, one chunk per available
/// core, preserving order. Used by the parallel build phases: each work
/// item (a coarse layer, a layer pair, a fine pair) is independent.
pub(crate) fn parallel_map<T: Sync, R: Send>(items: &[T], f: &(dyn Fn(&T) -> R + Sync)) -> Vec<R> {
    parallel_map_with(items, 0, &|| (), &|(), item| f(item))
}

/// Like [`parallel_map`], but each worker thread first builds one state
/// with `init` and reuses it across every item of its chunk — the batch
/// executor's scratch pool. `threads = 0` uses all available cores.
///
/// Order is preserved: result `i` always comes from item `i`, regardless
/// of thread count, so callers get deterministic output by construction.
pub(crate) fn parallel_map_with<T: Sync, R: Send, S>(
    items: &[T],
    threads: usize,
    init: &(dyn Fn() -> S + Sync),
    f: &(dyn Fn(&mut S, &T) -> R + Sync),
) -> Vec<R> {
    let workers = resolve_workers(threads, items.len());
    if workers <= 1 || items.len() <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<R>] = &mut out;
        let mut offset = 0;
        let mut handles = Vec::new();
        while offset < items.len() {
            let take = chunk.min(items.len() - offset);
            let (slice, tail) = rest.split_at_mut(take);
            rest = tail;
            let items_chunk = &items[offset..offset + take];
            handles.push(scope.spawn(move || {
                let mut state = init();
                for (slot, item) in slice.iter_mut().zip(items_chunk) {
                    *slot = Some(f(&mut state, item));
                }
            }));
            offset += take;
        }
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let out = parallel_map(&items, &|&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, &|&x: &usize| x).is_empty());
        assert_eq!(parallel_map(&[7usize], &|&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_with_threads_one_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 8, 64] {
            let inits = AtomicUsize::new(0);
            let out = parallel_map_with(
                &items,
                threads,
                &|| {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize // per-worker counter: items seen so far
                },
                &|seen, &x| {
                    *seen += 1;
                    x + 1
                },
            );
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
            let states = inits.load(Ordering::Relaxed);
            assert!(
                states <= resolve_workers(threads, items.len()),
                "threads={threads}: {states} states"
            );
            assert!(states >= 1);
        }
    }

    #[test]
    fn resolve_workers_clamps() {
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(2, 100), 2);
        assert_eq!(resolve_workers(0, 0), 1);
        assert!(resolve_workers(0, 1000) >= 1);
    }
}
