//! Retained sequential reference construction.
//!
//! [`DualLayerIndex::build_reference`] is a literal, single-threaded copy
//! of the pre-optimization build pipeline: repeated whole-set skyline
//! peels for the coarse layers, repeated convex-skyline peels for the fine
//! split, and plain pairwise edge generation with no block pruning. It is
//! deliberately slow and deliberately untouched by the optimized path's
//! pruning rules — the differential suite (`tests/differential.rs`)
//! serializes both indexes and requires byte equality, so every
//! optimization in [`build`] is checked against this ground truth.
//!
//! [`build`]: DualLayerIndex::build

use crate::index::{CoarseLayer, DualLayerIndex, NodeId};
use crate::options::{DlOptions, EdsPolicy, ZeroMode};
use crate::zero::Zero2d;
use drtopk_cluster::{cluster_min_corners, kmeans};
use drtopk_common::{dominates, Relation, TupleId};
use drtopk_geometry::csky::{convex_skyline, ConvexLayer};
use drtopk_geometry::facet_is_eds;
use drtopk_skyline::skyline_layers;

impl DualLayerIndex {
    /// Sequential reference build. Produces an index the optimized
    /// [`DualLayerIndex::build`] must replicate bit for bit (the
    /// `parallel` and `build_threads` options are ignored here — this
    /// path is always single-threaded and unpruned).
    pub fn build_reference(rel: &Relation, opts: DlOptions) -> DualLayerIndex {
        let n = rel.len();
        let d = rel.dims();
        let all: Vec<TupleId> = (0..n as TupleId).collect();

        // Phase 1: coarse layers by repeated whole-set skyline peels.
        let coarse = skyline_layers(rel, &all, opts.skyline_algo);

        // Phase 2: fine sublayers by repeated convex-skyline peels.
        let mut layers: Vec<CoarseLayer> = Vec::with_capacity(coarse.len());
        let mut fine_facets: Vec<Vec<Vec<Vec<TupleId>>>> = Vec::with_capacity(coarse.len());
        for members in &coarse {
            if opts.split_fine {
                let mut peeled = convex_layers_reference(rel, members);
                if opts.max_fine_layers > 0 && peeled.len() > opts.max_fine_layers {
                    let tail: Vec<TupleId> = peeled
                        .drain(opts.max_fine_layers - 1..)
                        .flat_map(|l| l.members)
                        .collect();
                    peeled.push(ConvexLayer {
                        members: tail,
                        facets: Vec::new(),
                    });
                }
                fine_facets.push(peeled.iter().map(|l| l.facets.clone()).collect());
                layers.push(CoarseLayer {
                    fine: peeled.into_iter().map(|l| l.members).collect(),
                });
            } else {
                layers.push(CoarseLayer {
                    fine: vec![members.clone()],
                });
                fine_facets.push(vec![Vec::new()]);
            }
        }

        // Phase 3: ∀-dominance edges, pairwise per adjacent coarse pair.
        let mut forall_edges: Vec<(NodeId, NodeId)> = Vec::new();
        for w in layers.windows(2) {
            let sources: Vec<TupleId> = w[0].members().collect();
            let targets: Vec<TupleId> = w[1].members().collect();
            forall_edges_reference(rel, &sources, &targets, &mut forall_edges);
        }

        // Phase 4: ∃-dominance edges, pairwise per adjacent fine pair.
        let mut exists_edges: Vec<(NodeId, NodeId)> = Vec::new();
        if opts.split_fine {
            for (ci, layer) in layers.iter().enumerate() {
                #[allow(clippy::needless_range_loop)]
                for j in 0..layer.fine.len().saturating_sub(1) {
                    exists_edges_reference(
                        rel,
                        &fine_facets[ci][j],
                        &layer.fine[j + 1],
                        opts.eds_policy,
                        &mut exists_edges,
                    );
                }
            }
        }

        // Phase 5: zero layer (identical to the optimized path, minus
        // profiling).
        let zero = if n == 0 {
            ZeroMode::None
        } else {
            match opts.zero {
                ZeroMode::Auto => {
                    if d == 2 && opts.split_fine {
                        ZeroMode::Exact2d
                    } else {
                        ZeroMode::Clustered { clusters: 0 }
                    }
                }
                ZeroMode::Exact2d if d != 2 || !opts.split_fine => {
                    ZeroMode::Clustered { clusters: 0 }
                }
                other => other,
            }
        };
        let mut pseudo: Vec<f64> = Vec::new();
        let mut pseudo_count = 0usize;
        let mut pseudo_fine: Vec<Vec<u32>> = Vec::new();
        let mut zero2d: Option<Zero2d> = None;
        match zero {
            ZeroMode::None => {}
            ZeroMode::Exact2d => {
                zero2d = Some(Zero2d::build(rel, &layers[0].fine[0]));
            }
            ZeroMode::Clustered { clusters } => {
                let l1: Vec<TupleId> = {
                    let mut v: Vec<TupleId> = layers[0].members().collect();
                    v.sort_unstable();
                    v
                };
                let c = if clusters == 0 {
                    (l1.len() as f64).sqrt().ceil() as usize
                } else {
                    clusters
                }
                .clamp(1, l1.len());
                let clustering = kmeans(rel, &l1, c, opts.cluster_seed, 40);
                let corners = cluster_min_corners(rel, &l1, &clustering);
                pseudo_count = corners.len();
                for corner in &corners {
                    pseudo.extend_from_slice(corner);
                }
                for (pos, &cl) in clustering.assignment.iter().enumerate() {
                    forall_edges.push((n as NodeId + cl as NodeId, l1[pos] as NodeId));
                }
                if opts.split_fine {
                    let prel = Relation::from_flat_unchecked(d, pseudo.clone());
                    let plocal: Vec<TupleId> = (0..pseudo_count as TupleId).collect();
                    let players = convex_layers_reference(&prel, &plocal);
                    let to_node = |local: TupleId| -> NodeId { n as NodeId + local };
                    pseudo_fine = players.iter().map(|l| l.members.to_vec()).collect();
                    for j in 0..players.len().saturating_sub(1) {
                        let mut edges_local: Vec<(NodeId, NodeId)> = Vec::new();
                        exists_edges_reference(
                            &prel,
                            &players[j].facets,
                            &players[j + 1].members,
                            opts.eds_policy,
                            &mut edges_local,
                        );
                        exists_edges.extend(
                            edges_local
                                .into_iter()
                                .map(|(s, t)| (to_node(s), to_node(t))),
                        );
                    }
                    let last = players.len() - 1;
                    let l11 = &layers[0].fine[0];
                    let mut combined = pseudo.clone();
                    for &t in l11 {
                        combined.extend_from_slice(rel.tuple(t));
                    }
                    let crel = Relation::from_flat_unchecked(d, combined);
                    let facets: Vec<Vec<TupleId>> = players[last].facets.clone();
                    let ctargets: Vec<TupleId> = (0..l11.len())
                        .map(|i| (pseudo_count + i) as TupleId)
                        .collect();
                    let mut edges_local: Vec<(NodeId, NodeId)> = Vec::new();
                    exists_edges_reference(
                        &crel,
                        &facets,
                        &ctargets,
                        opts.eds_policy,
                        &mut edges_local,
                    );
                    for (s, t) in edges_local {
                        let src = n as NodeId + s;
                        let dst = l11[t as usize - pseudo_count] as NodeId;
                        exists_edges.push((src, dst));
                    }
                } else {
                    pseudo_fine = vec![(0..pseudo_count as u32).collect()];
                }
            }
            ZeroMode::Auto => unreachable!("resolved above"),
        }

        // Assembly: the same shared path as the optimized build, so the
        // renumbering, arena, seeds, and columns are identical by
        // construction.
        crate::assemble::assemble(
            rel,
            opts,
            layers,
            &forall_edges,
            &exists_edges,
            pseudo,
            pseudo_count,
            pseudo_fine,
            zero2d,
        )
    }
}

/// Reference onion peel: repeated [`convex_skyline`] over the shrinking
/// remainder, removing extracted members by position each round. This is
/// the pre-optimization `convex_layers` loop, kept verbatim as ground
/// truth for the incremental 2-d peel.
pub(crate) fn convex_layers_reference(rel: &Relation, ids: &[TupleId]) -> Vec<ConvexLayer> {
    let mut remaining: Vec<TupleId> = ids.to_vec();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let cs = convex_skyline(rel, &remaining);
        assert!(
            !cs.members.is_empty(),
            "convex skyline of a nonempty set is nonempty"
        );
        let members: Vec<TupleId> = cs.members.iter().map(|&p| remaining[p as usize]).collect();
        let facets: Vec<Vec<TupleId>> = cs
            .facets
            .iter()
            .map(|f| f.iter().map(|&p| remaining[p as usize]).collect())
            .collect();
        let in_layer: std::collections::HashSet<u32> = cs.members.iter().copied().collect();
        let mut next = Vec::with_capacity(remaining.len() - members.len());
        for (pos, &id) in remaining.iter().enumerate() {
            if !in_layer.contains(&(pos as u32)) {
                next.push(id);
            }
        }
        remaining = next;
        layers.push(ConvexLayer { members, facets });
    }
    layers
}

/// Reference ∀-edge generation: sum-sorted prefix scan, one `dominates`
/// call per candidate pair, no block pruning.
pub(crate) fn forall_edges_reference(
    rel: &Relation,
    sources: &[TupleId],
    targets: &[TupleId],
    edges: &mut Vec<(NodeId, NodeId)>,
) {
    let mut by_sum: Vec<(f64, TupleId)> = sources
        .iter()
        .map(|&s| (rel.tuple(s).iter().sum::<f64>(), s))
        .collect();
    by_sum.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for &t in targets {
        let tv = rel.tuple(t);
        let t_sum: f64 = tv.iter().sum();
        for &(s_sum, s) in &by_sum {
            if s_sum >= t_sum {
                break;
            }
            if dominates(rel.tuple(s), tv) {
                edges.push((s as NodeId, t as NodeId));
            }
        }
    }
}

/// Reference ∃-edge generation: every facet whose min-corner weakly
/// dominates the target is handed to `facet_is_eds`, in enumeration order.
pub(crate) fn exists_edges_reference(
    rel: &Relation,
    facets: &[Vec<TupleId>],
    targets: &[TupleId],
    policy: EdsPolicy,
    edges: &mut Vec<(NodeId, NodeId)>,
) {
    if facets.is_empty() || targets.is_empty() {
        return;
    }
    let d = rel.dims();
    let corners: Vec<Vec<f64>> = facets
        .iter()
        .map(|f| {
            (0..d)
                .map(|i| {
                    f.iter()
                        .map(|&m| rel.tuple(m)[i])
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        })
        .collect();
    let min_sums: Vec<f64> = facets
        .iter()
        .map(|f| {
            f.iter()
                .map(|&m| rel.tuple(m).iter().sum::<f64>())
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut members: Vec<TupleId> = Vec::new();
    for &t in targets {
        let tv = rel.tuple(t);
        members.clear();
        let mut best: Option<(usize, f64)> = None;
        for (fi, facet) in facets.iter().enumerate() {
            let corner_ok = corners[fi].iter().zip(tv).all(|(c, x)| c <= x);
            if !corner_ok || !facet_is_eds(rel, facet, t) {
                continue;
            }
            match policy {
                EdsPolicy::FirstFacet => {
                    members.extend_from_slice(facet);
                    break;
                }
                EdsPolicy::AllFacets => {
                    for &m in facet {
                        if !members.contains(&m) {
                            members.push(m);
                        }
                    }
                }
                EdsPolicy::BestUniform => {
                    if best.is_none_or(|(_, s)| min_sums[fi] > s) {
                        best = Some((fi, min_sums[fi]));
                    }
                }
            }
        }
        if let Some((fi, _)) = best {
            members.extend_from_slice(&facets[fi]);
        }
        for &m in &members {
            edges.push((m as NodeId, t as NodeId));
        }
    }
}
