//! Sharded serving: partition → per-shard top-k → fault-tolerant merge.
//!
//! ROADMAP item 2(a): one monolithic index becomes a routing layer over
//! `P` partitions, so build time, rebuild amortization, and churn
//! isolation all drop by ~P. A routing layer is exactly where failures
//! live, so this one is born fault-tolerant:
//!
//! * **Partitioning** is by tuple id: shard `s` of `P` holds the tuples
//!   whose *global* handle `h` satisfies `h % P == s`, and each shard's
//!   [`DynamicIndex`] carries those global handles natively (via
//!   [`DynamicIndex::with_handles`]). Per-shard answers therefore come
//!   back as global ids and a k-way merge on `(score, handle)` — the
//!   exact comparator the unsharded dynamic index sorts with — is
//!   bit-identical to the unsharded answer.
//! * **Fan-out** probes every shard concurrently, each probe isolated
//!   with `catch_unwind` — the same per-request panic isolation contract
//!   [`crate::batch::BatchExecutor`] applies to guarded batch requests —
//!   so one shard's panic degrades coverage instead of killing the
//!   process.
//! * **Health** per shard is Up / Degraded / Down, driven by consecutive
//!   probe failures. A Down shard is skipped (no latency tax) until an
//!   operator or recovery path marks it up again.
//! * **Retry** of transiently failed probes is bounded, with
//!   deterministic jittered exponential backoff, and never sleeps past
//!   the request's own deadline.
//! * **Timeouts** are carved from the request's [`QueryBudget`]: each
//!   probe gets the request deadline tightened by the router's per-probe
//!   timeout. A probe that trips its *carved* deadline is a shard fault
//!   (retryable, health-affecting); a probe that trips the *request's*
//!   budget stops the request — the paper's Definition-9 cost bound and
//!   the true-prefix contract make that partial answer still exact over
//!   what it covers.
//! * **Degradation** is explicit: every routed answer carries a
//!   [`ShardCoverage`] naming the shards that answered. A merge over a
//!   subset of shards is the exact top-k over the union of the surviving
//!   partitions — never a guess.

use crate::dynamic::{DynamicIndex, Handle};
use crate::query::{QueryBudget, TruncateReason};
use drtopk_common::{Cost, Error, Relation, Weights};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on shard count: coverage travels as a 64-bit answered mask.
pub const MAX_SHARDS: usize = 64;

/// The shard a global handle lives on under `P`-way id partitioning.
#[inline]
pub fn shard_of(h: Handle, shards: usize) -> usize {
    (h % shards as u64) as usize
}

/// Splits a relation into `P` id-partitioned shards. Returns, per shard,
/// the shard-local relation and the strictly ascending *global* handles
/// of its tuples (tuple `t` of the input keeps handle `t`). Feed each
/// pair to [`DynamicIndex::with_handles`] to build the shard index.
pub fn partition_relation(
    rel: &Relation,
    shards: usize,
) -> Result<Vec<(Relation, Vec<Handle>)>, Error> {
    if shards == 0 || shards > MAX_SHARDS {
        return Err(Error::Invalid(format!(
            "shard count {shards} outside 1..={MAX_SHARDS}"
        )));
    }
    let dims = rel.dims();
    let mut flats: Vec<Vec<f64>> = vec![Vec::new(); shards];
    let mut handles: Vec<Vec<Handle>> = vec![Vec::new(); shards];
    for (t, row) in rel.iter() {
        let s = shard_of(t as Handle, shards);
        flats[s].extend_from_slice(row);
        handles[s].push(t as Handle);
    }
    Ok(flats
        .into_iter()
        .zip(handles)
        .map(|(flat, hs)| (Relation::from_flat_unchecked(dims, flat), hs))
        .collect())
}

/// Which shards contributed to a routed answer.
///
/// A compact bitmask (hence [`MAX_SHARDS`]): bit `s` set means shard `s`
/// answered. Full coverage means the answer is bit-identical to the
/// unsharded index's; partial coverage means it is the exact top-k over
/// the union of the answering shards' partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCoverage {
    total: u16,
    mask: u64,
}

impl ShardCoverage {
    /// Coverage over `total` shards with none answered yet.
    pub fn empty(total: usize) -> Self {
        debug_assert!((1..=MAX_SHARDS).contains(&total));
        ShardCoverage {
            total: total as u16,
            mask: 0,
        }
    }

    /// Coverage with every one of `total` shards answered.
    pub fn full(total: usize) -> Self {
        let mut c = ShardCoverage::empty(total);
        c.mask = if total >= 64 {
            u64::MAX
        } else {
            (1u64 << total) - 1
        };
        c
    }

    /// Reconstructs coverage from its wire form. Rejects an empty shard
    /// count, counts beyond [`MAX_SHARDS`], and mask bits at or above
    /// `total`.
    pub fn from_mask(total: u16, mask: u64) -> Result<Self, Error> {
        if total == 0 || total as usize > MAX_SHARDS {
            return Err(Error::Invalid(format!(
                "coverage shard count {total} outside 1..={MAX_SHARDS}"
            )));
        }
        let valid = if total >= 64 {
            u64::MAX
        } else {
            (1u64 << total) - 1
        };
        if mask & !valid != 0 {
            return Err(Error::Invalid(format!(
                "coverage mask {mask:#x} has bits beyond shard count {total}"
            )));
        }
        Ok(ShardCoverage { total, mask })
    }

    /// Records shard `s` as answered.
    pub fn mark(&mut self, s: usize) {
        debug_assert!(s < self.total as usize);
        self.mask |= 1u64 << s;
    }

    /// Whether shard `s` answered.
    pub fn covers(&self, s: usize) -> bool {
        s < self.total as usize && self.mask & (1u64 << s) != 0
    }

    /// Whether every shard answered.
    pub fn is_full(&self) -> bool {
        *self == ShardCoverage::full(self.total as usize)
    }

    /// Whether the answer is degraded (at least one shard skipped).
    pub fn degraded(&self) -> bool {
        !self.is_full()
    }

    /// Total shard count.
    pub fn total(&self) -> usize {
        self.total as usize
    }

    /// The answered-shards bitmask (wire form).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Shards that answered, ascending.
    pub fn answered(&self) -> Vec<usize> {
        (0..self.total as usize)
            .filter(|&s| self.covers(s))
            .collect()
    }

    /// Shards that did not answer, ascending.
    pub fn skipped(&self) -> Vec<usize> {
        (0..self.total as usize)
            .filter(|&s| !self.covers(s))
            .collect()
    }
}

/// Router-maintained health of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Answering normally.
    Up,
    /// Failing, but below the Down threshold: still probed.
    Degraded,
    /// Past the failure threshold (or cordoned): skipped until restored.
    Down,
}

/// Why one shard probe failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The probe panicked; isolated by the router's `catch_unwind`.
    Panic(String),
    /// An I/O-style error (a poisoned store, an injected fault).
    Io(String),
    /// The probe tripped its carved per-shard deadline.
    Timeout,
    /// The probe's answer was truncated by the budget it ran under. The
    /// router classifies this: a trip of the carved per-shard deadline
    /// becomes [`ShardError::Timeout`]; a trip of the request's own
    /// budget stops the request instead of faulting the shard.
    Truncated(TruncateReason),
    /// The shard is administratively unavailable (e.g. mid-replace).
    Unavailable(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Panic(m) => write!(f, "shard probe panicked: {m}"),
            ShardError::Io(m) => write!(f, "shard I/O error: {m}"),
            ShardError::Timeout => write!(f, "shard probe timed out"),
            ShardError::Truncated(r) => write!(f, "shard probe truncated: {r}"),
            ShardError::Unavailable(m) => write!(f, "shard unavailable: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Bounded retry with deterministic jittered exponential backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter; fixed seed → reproducible schedules.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

/// One step of xorshift64* — cheap deterministic pseudo-randomness for
/// jitter (no RNG dependency on the serving path).
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (0-based) for a
    /// probe salted with `salt` (shard id): exponential, capped, scaled
    /// by a deterministic factor in `[0.5, 1.5)` so retrying shards
    /// de-synchronize.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max_backoff);
        let bits = xorshift(
            self.jitter_seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) + 1),
        );
        let frac = (bits >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        capped.mul_f64(0.5 + frac)
    }
}

/// A scored answer row from one shard: `(score, global handle)`.
pub type ScoredHit = (f64, Handle);

/// What one successful shard probe returns: the shard's exact top-k
/// (ascending by `(score, handle)`) plus its Definition-9 cost.
pub type ShardAnswer = (Vec<ScoredHit>, Cost);

/// One queryable shard. Implementations must be cheap to probe
/// concurrently (`&self`) and are responsible for reporting truncation
/// via [`ShardError::Truncated`] — the router never merges a partial
/// shard answer, because a missing middle would break the merged
/// prefix's exactness.
pub trait ShardProbe: Send + Sync {
    /// Exact top-`k` over this shard's live tuples under `budget`.
    fn probe(&self, w: &Weights, k: usize, budget: &QueryBudget)
        -> Result<ShardAnswer, ShardError>;

    /// Attribute dimensionality (must agree across shards).
    fn dims(&self) -> usize;
}

impl ShardProbe for DynamicIndex {
    fn probe(
        &self,
        w: &Weights,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<ShardAnswer, ShardError> {
        let g = self.topk_guarded(w, k, budget);
        if let Some(r) = g.truncated {
            return Err(ShardError::Truncated(r));
        }
        let hits = g
            .ids
            .iter()
            .map(|&h| (w.score(self.get(h).expect("answer handle is live")), h))
            .collect();
        Ok((hits, g.cost))
    }

    fn dims(&self) -> usize {
        DynamicIndex::dims(self)
    }
}

/// K-way merges per-shard answers (each ascending by `(score, handle)`)
/// into the global top-`k`, using the *same* comparator the unsharded
/// [`DynamicIndex::topk`] sorts with — `(score, handle)` lexicographic —
/// so a full-coverage merge is bit-identical to the unsharded answer.
pub fn merge_scored(k: usize, lists: &[Vec<ScoredHit>]) -> Vec<Handle> {
    struct Head {
        score: f64,
        handle: Handle,
        src: usize,
        pos: usize,
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.score == other.score && self.handle == other.handle
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we pop the minimum.
            other
                .score
                .partial_cmp(&self.score)
                .expect("scores are finite")
                .then(other.handle.cmp(&self.handle))
        }
    }
    let mut heap = BinaryHeap::with_capacity(lists.len());
    for (src, list) in lists.iter().enumerate() {
        if let Some(&(score, handle)) = list.first() {
            heap.push(Head {
                score,
                handle,
                src,
                pos: 0,
            });
        }
    }
    let mut out = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(head.handle);
        let next = head.pos + 1;
        if let Some(&(score, handle)) = lists[head.src].get(next) {
            heap.push(Head {
                score,
                handle,
                src: head.src,
                pos: next,
            });
        }
    }
    out
}

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Retry schedule for transiently failed probes.
    pub retry: RetryPolicy,
    /// Per-probe timeout carved from the request budget. `None` means a
    /// probe is bounded only by the request's own deadline.
    pub probe_timeout: Option<Duration>,
    /// Consecutive failures after which a shard goes Down (skipped);
    /// below this it is Degraded (still probed). Minimum 1.
    pub down_after: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            retry: RetryPolicy::default(),
            probe_timeout: None,
            down_after: 3,
        }
    }
}

/// Result of one routed top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedTopk {
    /// Merged answer, ascending by `(score, handle)`. Exact over the
    /// covered shards' partitions; bit-identical to the unsharded answer
    /// when coverage is full and no budget tripped.
    pub ids: Vec<Handle>,
    /// Summed Definition-9 cost across the shards that answered.
    pub cost: Cost,
    /// `Some` when the *request's* budget stopped at least one probe.
    pub truncated: Option<TruncateReason>,
    /// Which shards contributed.
    pub coverage: ShardCoverage,
    /// Shards that failed past their retry budget this request, with the
    /// final error (skipped-while-Down shards are not listed — see
    /// [`ShardCoverage::skipped`] for the full set).
    pub failures: Vec<(usize, ShardError)>,
}

#[derive(Debug)]
struct HealthSlot {
    state: ShardHealth,
    consecutive_failures: u32,
}

/// Outcome of one probe-with-retry, per shard.
enum ProbeOutcome {
    Answered(ShardAnswer),
    Failed(ShardError),
    RequestStopped(TruncateReason),
    Skipped,
}

/// Fault-tolerant fan-out/merge router over `P` shards.
///
/// Generic over [`ShardProbe`] so the core crate can route over plain
/// [`DynamicIndex`] shards (tests, embedded use) while the server routes
/// over durable, failpoint-instrumented shards.
pub struct ShardRouter<S: ShardProbe> {
    shards: Vec<S>,
    health: Mutex<Vec<HealthSlot>>,
    cfg: RouterConfig,
    dims: usize,
}

impl<S: ShardProbe> std::fmt::Debug for ShardRouter<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("health", &self.health())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl<S: ShardProbe> ShardRouter<S> {
    /// Builds a router over `shards` (1..=[`MAX_SHARDS`], agreeing
    /// dimensionalities). All shards start Up.
    pub fn new(shards: Vec<S>, mut cfg: RouterConfig) -> Result<Self, Error> {
        if shards.is_empty() || shards.len() > MAX_SHARDS {
            return Err(Error::Invalid(format!(
                "shard count {} outside 1..={MAX_SHARDS}",
                shards.len()
            )));
        }
        let dims = shards[0].dims();
        for (s, shard) in shards.iter().enumerate() {
            if shard.dims() != dims {
                return Err(Error::Invalid(format!(
                    "shard {s} has {} dims, shard 0 has {dims}",
                    shard.dims()
                )));
            }
        }
        cfg.down_after = cfg.down_after.max(1);
        let health = (0..shards.len())
            .map(|_| HealthSlot {
                state: ShardHealth::Up,
                consecutive_failures: 0,
            })
            .collect();
        let router = ShardRouter {
            shards,
            health: Mutex::new(health),
            cfg,
            dims,
        };
        router.publish_health();
        Ok(router)
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `s` (tests, replace-on-recovery paths).
    pub fn shard(&self, s: usize) -> &S {
        &self.shards[s]
    }

    /// Attribute dimensionality of every shard.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Current health, indexed by shard.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|h| h.state)
            .collect()
    }

    /// Administratively takes shard `s` Down: it is skipped until
    /// [`ShardRouter::mark_up`].
    pub fn cordon(&self, s: usize) {
        {
            let mut health = self.health.lock().unwrap_or_else(|e| e.into_inner());
            health[s].state = ShardHealth::Down;
            health[s].consecutive_failures = self.cfg.down_after;
        }
        self.publish_health();
    }

    /// Restores shard `s` to Up with a clean failure count (the recovery
    /// path calls this after swapping a reopened store in).
    pub fn mark_up(&self, s: usize) {
        {
            let mut health = self.health.lock().unwrap_or_else(|e| e.into_inner());
            health[s].state = ShardHealth::Up;
            health[s].consecutive_failures = 0;
        }
        self.publish_health();
    }

    fn record_success(&self, s: usize) {
        let changed = {
            let mut health = self.health.lock().unwrap_or_else(|e| e.into_inner());
            let slot = &mut health[s];
            let changed = slot.state != ShardHealth::Up;
            slot.state = ShardHealth::Up;
            slot.consecutive_failures = 0;
            changed
        };
        if changed {
            self.publish_health();
        }
    }

    fn record_failure(&self, s: usize) {
        {
            let mut health = self.health.lock().unwrap_or_else(|e| e.into_inner());
            let slot = &mut health[s];
            // A cordoned/Down shard stays Down; failures past the
            // threshold don't need recounting.
            slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
            slot.state = if slot.consecutive_failures >= self.cfg.down_after {
                ShardHealth::Down
            } else {
                ShardHealth::Degraded
            };
        }
        self.publish_health();
    }

    fn publish_health(&self) {
        let (mut up, mut degraded, mut down) = (0u64, 0u64, 0u64);
        for h in self.health.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            match h.state {
                ShardHealth::Up => up += 1,
                ShardHealth::Degraded => degraded += 1,
                ShardHealth::Down => down += 1,
            }
        }
        drtopk_obs::metrics().set_shard_health(up, degraded, down);
    }

    /// The per-probe budget: the request's cost cap and cancel flag as-is
    /// (they are request-scoped), with the deadline tightened by the
    /// router's per-probe timeout.
    fn carve(&self, budget: &QueryBudget) -> QueryBudget {
        let mut carved = QueryBudget::unlimited();
        let mut deadline = budget.deadline();
        if let Some(t) = self.cfg.probe_timeout {
            let cap = Instant::now() + t;
            deadline = Some(deadline.map_or(cap, |d| d.min(cap)));
        }
        if let Some(d) = deadline {
            carved = carved.with_deadline(d);
        }
        if let Some(c) = budget.max_cost() {
            carved = carved.with_max_cost(c);
        }
        if let Some(f) = budget.cancel_flag() {
            carved = carved.with_cancel_flag(f);
        }
        carved
    }

    fn probe_with_retry(
        &self,
        s: usize,
        w: &Weights,
        k: usize,
        budget: &QueryBudget,
    ) -> ProbeOutcome {
        let m = drtopk_obs::metrics();
        let mut attempt = 0u32;
        loop {
            m.shard_probe();
            let carved = self.carve(budget);
            let shard = &self.shards[s];
            let outcome = catch_unwind(AssertUnwindSafe(|| shard.probe(w, k, &carved)));
            let err = match outcome {
                Ok(Ok(answer)) => {
                    self.record_success(s);
                    return ProbeOutcome::Answered(answer);
                }
                Ok(Err(e)) => e,
                Err(payload) => ShardError::Panic(panic_message(payload.as_ref())),
            };
            let request_expired = budget.deadline().is_some_and(|d| Instant::now() >= d);
            let fault = match err {
                ShardError::Truncated(TruncateReason::Deadline)
                    if self.cfg.probe_timeout.is_some() && !request_expired =>
                {
                    // The carved per-shard deadline tripped while the
                    // request still has time: that's the shard stalling.
                    ShardError::Timeout
                }
                ShardError::Truncated(r) => {
                    // The request's own budget tripped: stop the request;
                    // the shard takes no health penalty.
                    return ProbeOutcome::RequestStopped(r);
                }
                other => other,
            };
            m.shard_probe_failure();
            self.record_failure(s);
            if attempt >= self.cfg.retry.max_retries {
                return ProbeOutcome::Failed(fault);
            }
            let delay = self.cfg.retry.backoff(attempt, s as u64);
            if let Some(d) = budget.deadline() {
                if Instant::now() + delay >= d {
                    // No time left to retry inside the request.
                    return ProbeOutcome::Failed(fault);
                }
            }
            m.shard_retry();
            std::thread::sleep(delay);
            attempt += 1;
        }
    }

    /// Routed top-k: fan out to every non-Down shard, retry transient
    /// failures, and heap-merge k-from-each into the global answer.
    ///
    /// The returned [`ShardedTopk::coverage`] names the shards whose full
    /// top-k entered the merge; the answer is exact over exactly those
    /// partitions. `truncated` is set only when the *request's* budget
    /// (deadline / cost cap / cancellation) stopped a probe — shard
    /// faults degrade coverage instead.
    pub fn topk(&self, w: &Weights, k: usize, budget: &QueryBudget) -> ShardedTopk {
        let p = self.shards.len();
        let skip: Vec<bool> = self
            .health()
            .into_iter()
            .map(|h| h == ShardHealth::Down)
            .collect();
        let outcomes: Vec<ProbeOutcome> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..p)
                .map(|s| {
                    if skip[s] {
                        None
                    } else {
                        Some(scope.spawn(move || self.probe_with_retry(s, w, k, budget)))
                    }
                })
                .collect();
            joins
                .into_iter()
                .map(|j| match j {
                    None => ProbeOutcome::Skipped,
                    Some(handle) => handle.join().unwrap_or_else(|_| {
                        ProbeOutcome::Failed(ShardError::Panic("probe thread died".into()))
                    }),
                })
                .collect()
        });
        let mut coverage = ShardCoverage::empty(p);
        let mut truncated: Option<TruncateReason> = None;
        let mut cost = Cost::new();
        let mut lists: Vec<Vec<ScoredHit>> = Vec::with_capacity(p);
        let mut failures: Vec<(usize, ShardError)> = Vec::new();
        for (s, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                ProbeOutcome::Answered((hits, c)) => {
                    coverage.mark(s);
                    cost.merge(&c);
                    lists.push(hits);
                }
                ProbeOutcome::RequestStopped(r) => {
                    truncated.get_or_insert(r);
                }
                ProbeOutcome::Failed(e) => failures.push((s, e)),
                ProbeOutcome::Skipped => {}
            }
        }
        if coverage.degraded() && truncated.is_none() {
            drtopk_obs::metrics().shard_degraded_answer();
        }
        ShardedTopk {
            ids: merge_scored(k, &lists),
            cost,
            truncated,
            coverage,
            failures,
        }
    }
}

/// Tunables for a [`ReplicaSet`].
#[derive(Debug, Clone, Default)]
pub struct ReplicaConfig {
    /// Launch a hedged probe on the next candidate replica when the one
    /// in flight has not answered after this long — a slow-but-alive
    /// replica then races a fresh one and whichever answers first wins
    /// (answers are bit-identical, so the race is safe). `None` disables
    /// hedging: replicas are only tried after a hard failure.
    pub hedge_after: Option<Duration>,
}

/// N interchangeable replicas of one logical shard, presented to the
/// router as a single [`ShardProbe`].
///
/// Every replica holds the same id-partition, so any replica's answer is
/// bit-identical to any other's — which is what makes primary-first
/// failover and hedged probes invisible to the merge. A probe walks the
/// replicas in preference order (endpoints believed up first), failing
/// over on transport-class errors ([`ShardError::Panic`] / [`Io`](ShardError::Io) /
/// [`Timeout`](ShardError::Timeout) / [`Unavailable`](ShardError::Unavailable));
/// a [`ShardError::Truncated`] answer surfaces immediately — the budget
/// that tripped is request-scoped, so a different replica would only
/// repeat it.
///
/// Up/down beliefs are per-endpoint [`AtomicBool`]s, updated by probe
/// outcomes and (in the server) by the background health pinger via
/// [`ReplicaSet::set_up`]. A believed-down endpoint is still tried as a
/// last resort when everything else failed — beliefs order the walk,
/// they never amputate it.
pub struct ReplicaSet<P: ShardProbe + 'static> {
    replicas: Vec<Arc<P>>,
    up: Vec<AtomicBool>,
    cfg: ReplicaConfig,
    dims: usize,
}

impl<P: ShardProbe> std::fmt::Debug for ReplicaSet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("replicas", &self.replicas.len())
            .field(
                "up",
                &(0..self.replicas.len())
                    .map(|i| self.is_up(i))
                    .collect::<Vec<_>>(),
            )
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl<P: ShardProbe> ReplicaSet<P> {
    /// Builds a replica set (1..=N endpoints, agreeing dimensionalities,
    /// preference order = vector order). All endpoints start up.
    pub fn new(replicas: Vec<Arc<P>>, cfg: ReplicaConfig) -> Result<Self, Error> {
        if replicas.is_empty() {
            return Err(Error::Invalid("replica set cannot be empty".to_string()));
        }
        let dims = replicas[0].dims();
        for (i, r) in replicas.iter().enumerate() {
            if r.dims() != dims {
                return Err(Error::Invalid(format!(
                    "replica {i} has {} dims, replica 0 has {dims}",
                    r.dims()
                )));
            }
        }
        let up = (0..replicas.len()).map(|_| AtomicBool::new(true)).collect();
        Ok(ReplicaSet {
            replicas,
            up,
            cfg,
            dims,
        })
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false: construction rejects empty sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Direct access to replica `i` (pinger, metrics labels).
    pub fn replica(&self, i: usize) -> &Arc<P> {
        &self.replicas[i]
    }

    /// Current belief about endpoint `i`.
    pub fn is_up(&self, i: usize) -> bool {
        self.up[i].load(SeqCst)
    }

    /// Sets the belief about endpoint `i` (probe outcomes and the health
    /// pinger both feed this).
    pub fn set_up(&self, i: usize, up: bool) {
        self.up[i].store(up, SeqCst);
    }

    /// The walk order for one probe: endpoints believed up first, then
    /// believed-down ones as a last resort, preference order within each
    /// class.
    fn candidate_order(&self) -> Vec<usize> {
        let n = self.replicas.len();
        (0..n)
            .filter(|&i| self.is_up(i))
            .chain((0..n).filter(|&i| !self.is_up(i)))
            .collect()
    }

    /// Launches replica `idx` on a detached thread reporting into `tx`.
    /// Detached (not scoped) on purpose: a hedged winner must be able to
    /// return while the loser is still stalled in its probe.
    fn launch(
        &self,
        idx: usize,
        w: &Weights,
        k: usize,
        budget: &QueryBudget,
        tx: &mpsc::Sender<(usize, Result<ShardAnswer, ShardError>)>,
    ) {
        let replica = Arc::clone(&self.replicas[idx]);
        let w = w.clone();
        let budget = budget.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(|| replica.probe(&w, k, &budget)))
                .unwrap_or_else(|p| Err(ShardError::Panic(panic_message(p.as_ref()))));
            // The receiver is gone once a winner returned; losers drop out.
            let _ = tx.send((idx, out));
        });
    }
}

impl<P: ShardProbe> ShardProbe for ReplicaSet<P> {
    fn probe(
        &self,
        w: &Weights,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<ShardAnswer, ShardError> {
        let m = drtopk_obs::metrics();
        let order = self.candidate_order();
        let (tx, rx) = mpsc::channel();
        let mut next = 0usize; // next candidate in `order` to launch
        let mut outstanding = 0usize;
        self.launch(order[next], w, k, budget, &tx);
        next += 1;
        outstanding += 1;
        loop {
            // Hedge only while an unlaunched candidate remains.
            let msg = match self.cfg.hedge_after {
                Some(t) if next < order.len() => match rx.recv_timeout(t) {
                    Ok(msg) => Some(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("probe() holds a sender")
                    }
                },
                _ => Some(rx.recv().expect("probe() holds a sender")),
            };
            match msg {
                None => {
                    // Latency threshold tripped: race a fresh replica.
                    m.shard_hedge();
                    self.launch(order[next], w, k, budget, &tx);
                    next += 1;
                    outstanding += 1;
                }
                Some((idx, Ok(answer))) => {
                    self.set_up(idx, true);
                    return Ok(answer);
                }
                Some((_, Err(ShardError::Truncated(r)))) => {
                    // Request-scoped budget trip: retrying elsewhere can
                    // only repeat it. Surface for the router to classify.
                    return Err(ShardError::Truncated(r));
                }
                Some((idx, Err(e))) => {
                    // Transport-class fault: this endpoint is suspect.
                    self.set_up(idx, false);
                    outstanding -= 1;
                    if next < order.len() {
                        m.shard_failover();
                        self.launch(order[next], w, k, budget, &tx);
                        next += 1;
                        outstanding += 1;
                    } else if outstanding == 0 {
                        // Every replica walked, every probe failed: the
                        // freshest error describes the set best.
                        return Err(e);
                    }
                    // Otherwise a hedged probe is still in flight — wait.
                }
            }
        }
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicU32, Ordering::SeqCst};

    fn build_shards(rel: &Relation, p: usize) -> Vec<DynamicIndex> {
        partition_relation(rel, p)
            .unwrap()
            .into_iter()
            .map(|(shard_rel, handles)| {
                DynamicIndex::with_handles(&shard_rel, handles, DlOptions::dl_plus(), 0.3).unwrap()
            })
            .collect()
    }

    #[test]
    fn partition_covers_every_tuple_once() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 101, 11).generate();
        let parts = partition_relation(&rel, 4).unwrap();
        let mut seen = vec![false; rel.len()];
        for (s, (shard_rel, handles)) in parts.iter().enumerate() {
            assert_eq!(shard_rel.len(), handles.len());
            for (i, &h) in handles.iter().enumerate() {
                assert_eq!(shard_of(h, 4), s);
                assert!(!seen[h as usize], "handle {h} assigned twice");
                seen[h as usize] = true;
                assert_eq!(shard_rel.tuple(i as u32), rel.tuple(h as u32));
            }
        }
        assert!(seen.iter().all(|&b| b), "every tuple lands on a shard");
        assert!(partition_relation(&rel, 0).is_err());
        assert!(partition_relation(&rel, MAX_SHARDS + 1).is_err());
    }

    #[test]
    fn sharded_topk_is_bit_identical_to_unsharded() {
        let mut rng = StdRng::seed_from_u64(0xD15C);
        for &(d, n, p) in &[(2usize, 300usize, 2usize), (3, 400, 3), (4, 257, 7)] {
            let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, n, 5).generate();
            let oracle = DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.3);
            let router = ShardRouter::new(build_shards(&rel, p), RouterConfig::default()).unwrap();
            for _ in 0..20 {
                let w = Weights::random(d, &mut rng);
                let k = rng.gen_range(1..=40);
                let routed = router.topk(&w, k, &QueryBudget::unlimited());
                let (expect, _) = oracle.topk(&w, k);
                assert_eq!(routed.ids, expect, "d={d} p={p} k={k}");
                assert!(routed.coverage.is_full());
                assert!(routed.truncated.is_none());
            }
        }
    }

    #[test]
    fn merge_matches_flat_sort() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let lists: Vec<Vec<ScoredHit>> = (0..rng.gen_range(1..6))
                .map(|s| {
                    let mut l: Vec<ScoredHit> = (0..rng.gen_range(0..30))
                        .map(|i| {
                            // Coarse scores force ties; handles stay
                            // distinct across lists via the shard stride.
                            (rng.gen_range(0..8) as f64 / 8.0, (i * 6 + s) as Handle)
                        })
                        .collect();
                    l.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                    l
                })
                .collect();
            let k = rng.gen_range(1..40);
            let mut flat: Vec<ScoredHit> = lists.iter().flatten().copied().collect();
            flat.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let expect: Vec<Handle> = flat.into_iter().take(k).map(|(_, h)| h).collect();
            assert_eq!(merge_scored(k, &lists), expect);
        }
    }

    #[test]
    fn coverage_mask_roundtrip_and_validation() {
        let mut c = ShardCoverage::empty(5);
        assert!(c.degraded());
        for s in [0usize, 2, 4] {
            c.mark(s);
        }
        assert_eq!(c.answered(), vec![0, 2, 4]);
        assert_eq!(c.skipped(), vec![1, 3]);
        let back = ShardCoverage::from_mask(5, c.mask()).unwrap();
        assert_eq!(back, c);
        assert!(ShardCoverage::from_mask(0, 0).is_err());
        assert!(ShardCoverage::from_mask(5, 1 << 5).is_err(), "stray bit");
        assert!(ShardCoverage::from_mask(65, 0).is_err());
        assert!(ShardCoverage::full(64).is_full());
    }

    /// A probe double that fails its first `fail_first` probes, then
    /// delegates to a real shard.
    struct Flaky {
        inner: DynamicIndex,
        fail_first: u32,
        calls: AtomicU32,
        error: ShardError,
    }

    impl ShardProbe for Flaky {
        fn probe(
            &self,
            w: &Weights,
            k: usize,
            budget: &QueryBudget,
        ) -> Result<ShardAnswer, ShardError> {
            let n = self.calls.fetch_add(1, SeqCst);
            if n < self.fail_first {
                if matches!(self.error, ShardError::Panic(_)) {
                    panic!("flaky shard panicking on purpose");
                }
                return Err(self.error.clone());
            }
            self.inner.probe(w, k, budget)
        }

        fn dims(&self) -> usize {
            ShardProbe::dims(&self.inner)
        }
    }

    fn flaky_router(
        rel: &Relation,
        p: usize,
        flaky_shard: usize,
        fail_first: u32,
        error: ShardError,
        cfg: RouterConfig,
    ) -> ShardRouter<Flaky> {
        let shards: Vec<Flaky> = build_shards(rel, p)
            .into_iter()
            .enumerate()
            .map(|(s, inner)| Flaky {
                inner,
                fail_first: if s == flaky_shard { fail_first } else { 0 },
                calls: AtomicU32::new(0),
                error: error.clone(),
            })
            .collect();
        ShardRouter::new(shards, cfg).unwrap()
    }

    #[test]
    fn retry_recovers_a_transient_failure() {
        let d = 3;
        let rel = WorkloadSpec::new(Distribution::Independent, d, 200, 3).generate();
        let oracle = DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.3);
        let cfg = RouterConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(1),
                jitter_seed: 1,
            },
            ..RouterConfig::default()
        };
        let router = flaky_router(&rel, 3, 1, 1, ShardError::Io("transient".into()), cfg);
        let w = Weights::uniform(d);
        let routed = router.topk(&w, 10, &QueryBudget::unlimited());
        assert!(routed.coverage.is_full(), "retry must recover coverage");
        assert_eq!(routed.ids, oracle.topk(&w, 10).0);
        assert_eq!(
            router.health(),
            vec![ShardHealth::Up; 3],
            "a recovered shard is Up again"
        );
    }

    #[test]
    fn degraded_answer_matches_surviving_partition_oracle() {
        let d = 3;
        let p = 4;
        let dead = 2usize;
        let rel = WorkloadSpec::new(Distribution::Correlated, d, 350, 17).generate();
        let cfg = RouterConfig {
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            down_after: 1,
            ..RouterConfig::default()
        };
        let router = flaky_router(
            &rel,
            p,
            dead,
            u32::MAX,
            ShardError::Io("dead disk".into()),
            cfg,
        );
        // Survivor oracle: an unsharded index over every partition except
        // the dead shard's.
        let mut flat = Vec::new();
        let mut handles = Vec::new();
        for (t, row) in rel.iter() {
            if shard_of(t as Handle, p) != dead {
                flat.extend_from_slice(row);
                handles.push(t as Handle);
            }
        }
        let survivors = Relation::from_flat_unchecked(d, flat);
        let oracle =
            DynamicIndex::with_handles(&survivors, handles, DlOptions::dl_plus(), 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..5 {
            let w = Weights::random(d, &mut rng);
            let routed = router.topk(&w, 12, &QueryBudget::unlimited());
            assert_eq!(routed.ids, oracle.topk(&w, 12).0, "round {round}");
            assert!(routed.coverage.degraded());
            assert_eq!(routed.coverage.skipped(), vec![dead]);
            assert!(routed.truncated.is_none());
        }
        assert_eq!(router.health()[dead], ShardHealth::Down);
        // Down ⇒ skipped: the flaky shard saw exactly one probe.
        assert_eq!(router.shard(dead).calls.load(SeqCst), 1);
    }

    #[test]
    fn panic_is_isolated_and_health_degrades_then_downs() {
        let d = 2;
        let rel = WorkloadSpec::new(Distribution::Independent, d, 150, 23).generate();
        let cfg = RouterConfig {
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            down_after: 2,
            ..RouterConfig::default()
        };
        let router = flaky_router(&rel, 2, 0, u32::MAX, ShardError::Panic("boom".into()), cfg);
        let w = Weights::uniform(d);
        let r1 = router.topk(&w, 5, &QueryBudget::unlimited());
        assert!(r1.coverage.degraded());
        assert_eq!(router.health()[0], ShardHealth::Degraded, "one strike");
        let r2 = router.topk(&w, 5, &QueryBudget::unlimited());
        assert!(r2.coverage.degraded());
        assert_eq!(router.health()[0], ShardHealth::Down, "two strikes");
        // Recovery: operator marks the shard up; the next probe succeeds
        // (the Flaky double only panics below `fail_first`, which is
        // irrelevant here — swap in a clean count).
        router.shard(0).calls.store(u32::MAX, SeqCst);
        router.mark_up(0);
        let r3 = router.topk(&w, 5, &QueryBudget::unlimited());
        assert!(r3.coverage.is_full(), "rejoined shard serves again");
        assert_eq!(router.health()[0], ShardHealth::Up);
    }

    #[test]
    fn cordon_skips_without_probing() {
        let d = 2;
        let rel = WorkloadSpec::new(Distribution::Independent, d, 100, 5).generate();
        let router = flaky_router(
            &rel,
            2,
            0,
            0,
            ShardError::Io("unused".into()),
            RouterConfig::default(),
        );
        router.cordon(1);
        let w = Weights::uniform(d);
        let routed = router.topk(&w, 5, &QueryBudget::unlimited());
        assert_eq!(routed.coverage.skipped(), vec![1]);
        assert_eq!(router.shard(1).calls.load(SeqCst), 0, "no probe while Down");
        router.mark_up(1);
        assert!(router
            .topk(&w, 5, &QueryBudget::unlimited())
            .coverage
            .is_full());
    }

    #[test]
    fn request_budget_trip_is_not_a_shard_fault() {
        let d = 3;
        let rel = WorkloadSpec::new(Distribution::Independent, d, 300, 31).generate();
        let router = ShardRouter::new(build_shards(&rel, 3), RouterConfig::default()).unwrap();
        let w = Weights::uniform(d);
        // A deadline that already passed: every probe request-stops.
        let expired =
            QueryBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        let routed = router.topk(&w, 10, &expired);
        assert_eq!(routed.truncated, Some(TruncateReason::Deadline));
        assert_eq!(
            router.health(),
            vec![ShardHealth::Up; 3],
            "request-budget trips must not penalize shard health"
        );
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            for salt in 0..4u64 {
                let a = p.backoff(attempt, salt);
                let b = p.backoff(attempt, salt);
                assert_eq!(a, b, "deterministic for fixed (attempt, salt)");
                assert!(a <= p.max_backoff.mul_f64(1.5));
                assert!(a >= p.base_backoff.mul_f64(0.5));
            }
        }
        assert_ne!(
            p.backoff(0, 0),
            p.backoff(0, 1),
            "different shards de-synchronize"
        );
    }

    #[test]
    fn backoff_jitter_stays_in_half_open_band() {
        // The jitter factor is specified as [0.5, 1.5) of the capped
        // exponential. Sweep a dense grid of (attempt, salt) pairs and
        // check the band from the pre-jitter schedule.
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_micros(800),
            max_backoff: Duration::from_millis(40),
            jitter_seed: 0xA5A5,
        };
        for attempt in 0..10u32 {
            let exp = p.base_backoff.saturating_mul(1u32 << attempt.min(16));
            let capped = exp.min(p.max_backoff);
            for salt in 0..64u64 {
                let b = p.backoff(attempt, salt);
                assert!(b >= capped.mul_f64(0.5), "attempt {attempt} salt {salt}");
                assert!(b < capped.mul_f64(1.5), "attempt {attempt} salt {salt}");
            }
        }
    }

    #[test]
    fn backoff_caps_at_max_backoff() {
        let p = RetryPolicy {
            max_retries: 32,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            jitter_seed: 7,
        };
        // Past the cap, the pre-jitter schedule is flat at max_backoff.
        for attempt in 4..12u32 {
            for salt in 0..8u64 {
                let b = p.backoff(attempt, salt);
                assert!(b < p.max_backoff.mul_f64(1.5));
                assert!(b >= p.max_backoff.mul_f64(0.5));
            }
        }
    }

    #[test]
    fn backoff_survives_huge_attempt_numbers() {
        // The exponent is clamped and the multiply saturates: attempt
        // numbers near u32::MAX must neither overflow nor panic.
        let p = RetryPolicy::default();
        for attempt in [17, 31, 64, 1 << 20, u32::MAX - 1, u32::MAX] {
            let b = p.backoff(attempt, 3);
            assert!(b <= p.max_backoff.mul_f64(1.5));
        }
        // Degenerate policies stay finite too.
        let huge = RetryPolicy {
            base_backoff: Duration::from_secs(u64::MAX / 4),
            max_backoff: Duration::from_secs(u64::MAX / 2),
            ..RetryPolicy::default()
        };
        let _ = huge.backoff(u32::MAX, u64::MAX);
    }

    #[test]
    fn backoff_salts_desynchronize_schedules() {
        // Two probes retrying in lockstep must not sleep identical
        // schedules: across the first few attempts, distinct salts have
        // to disagree somewhere.
        let p = RetryPolicy::default();
        for (a, b) in [(0u64, 1u64), (1, 2), (0, 63), (7, 8)] {
            let differs = (0..4u32).any(|att| p.backoff(att, a) != p.backoff(att, b));
            assert!(differs, "salts {a} and {b} sleep in lockstep");
        }
    }

    /// A replica double: serves a fixed shard index, optionally failing
    /// or stalling first.
    struct Replica {
        inner: Arc<DynamicIndex>,
        fail: Option<ShardError>,
        delay: Duration,
        calls: AtomicU32,
    }

    impl Replica {
        fn healthy(inner: &Arc<DynamicIndex>) -> Arc<Self> {
            Arc::new(Replica {
                inner: Arc::clone(inner),
                fail: None,
                delay: Duration::ZERO,
                calls: AtomicU32::new(0),
            })
        }

        fn failing(inner: &Arc<DynamicIndex>, e: ShardError) -> Arc<Self> {
            Arc::new(Replica {
                inner: Arc::clone(inner),
                fail: Some(e),
                delay: Duration::ZERO,
                calls: AtomicU32::new(0),
            })
        }

        fn slow(inner: &Arc<DynamicIndex>, delay: Duration) -> Arc<Self> {
            Arc::new(Replica {
                inner: Arc::clone(inner),
                fail: None,
                delay,
                calls: AtomicU32::new(0),
            })
        }
    }

    impl ShardProbe for Replica {
        fn probe(
            &self,
            w: &Weights,
            k: usize,
            budget: &QueryBudget,
        ) -> Result<ShardAnswer, ShardError> {
            self.calls.fetch_add(1, SeqCst);
            if self.delay > Duration::ZERO {
                std::thread::sleep(self.delay);
            }
            if let Some(e) = &self.fail {
                return Err(e.clone());
            }
            self.inner.probe(w, k, budget)
        }

        fn dims(&self) -> usize {
            ShardProbe::dims(&*self.inner)
        }
    }

    fn replica_fixture() -> (Arc<DynamicIndex>, Weights) {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 120, 41).generate();
        let idx = Arc::new(DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.3));
        (idx, Weights::uniform(3))
    }

    #[test]
    fn replica_set_fails_over_to_secondary() {
        let (idx, w) = replica_fixture();
        let primary = Replica::failing(&idx, ShardError::Io("dead".into()));
        let secondary = Replica::healthy(&idx);
        let set = ReplicaSet::new(
            vec![Arc::clone(&primary), Arc::clone(&secondary)],
            ReplicaConfig::default(),
        )
        .unwrap();
        let (hits, _) = set.probe(&w, 7, &QueryBudget::unlimited()).unwrap();
        let ids: Vec<Handle> = hits.iter().map(|&(_, h)| h).collect();
        assert_eq!(ids, idx.topk(&w, 7).0, "secondary answer is the answer");
        assert!(!set.is_up(0), "failed endpoint marked down");
        assert!(set.is_up(1));
        // The next probe prefers the surviving endpoint: the dead primary
        // is not retried while believed down.
        let calls_before = primary.calls.load(SeqCst);
        set.probe(&w, 7, &QueryBudget::unlimited()).unwrap();
        assert_eq!(primary.calls.load(SeqCst), calls_before);
    }

    #[test]
    fn replica_set_exhausts_then_surfaces_the_last_error() {
        let (idx, w) = replica_fixture();
        let set = ReplicaSet::new(
            vec![
                Replica::failing(&idx, ShardError::Io("a".into())),
                Replica::failing(&idx, ShardError::Unavailable("b".into())),
            ],
            ReplicaConfig::default(),
        )
        .unwrap();
        let err = set.probe(&w, 5, &QueryBudget::unlimited()).unwrap_err();
        assert_eq!(err, ShardError::Unavailable("b".into()));
        assert!(!set.is_up(0) && !set.is_up(1));
        // A believed-down endpoint is still walked as a last resort —
        // beliefs order the walk, they never amputate it.
        assert!(set.probe(&w, 5, &QueryBudget::unlimited()).is_err());
    }

    #[test]
    fn replica_set_truncation_is_not_failed_over() {
        let (idx, w) = replica_fixture();
        let secondary = Replica::healthy(&idx);
        let set = ReplicaSet::new(
            vec![
                Replica::failing(&idx, ShardError::Truncated(TruncateReason::CostExceeded)),
                Arc::clone(&secondary),
            ],
            ReplicaConfig::default(),
        )
        .unwrap();
        let err = set.probe(&w, 5, &QueryBudget::unlimited()).unwrap_err();
        assert_eq!(err, ShardError::Truncated(TruncateReason::CostExceeded));
        assert_eq!(
            secondary.calls.load(SeqCst),
            0,
            "a request-budget trip must not burn a replica probe"
        );
        assert!(set.is_up(0), "truncation is not an endpoint fault");
    }

    #[test]
    fn replica_set_hedges_past_a_stalled_primary() {
        let (idx, w) = replica_fixture();
        let slow = Replica::slow(&idx, Duration::from_millis(400));
        let fast = Replica::healthy(&idx);
        let set = ReplicaSet::new(
            vec![Arc::clone(&slow), Arc::clone(&fast)],
            ReplicaConfig {
                hedge_after: Some(Duration::from_millis(20)),
            },
        )
        .unwrap();
        let start = Instant::now();
        let (hits, _) = set.probe(&w, 9, &QueryBudget::unlimited()).unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(300),
            "the hedged replica must win before the stalled primary"
        );
        let ids: Vec<Handle> = hits.iter().map(|&(_, h)| h).collect();
        assert_eq!(ids, idx.topk(&w, 9).0, "hedged answer is bit-identical");
        assert_eq!(fast.calls.load(SeqCst), 1, "exactly one hedge launched");
    }

    #[test]
    fn replica_set_rejects_bad_inputs() {
        let (idx, _) = replica_fixture();
        let empty: Vec<Arc<Replica>> = Vec::new();
        assert!(ReplicaSet::new(empty, ReplicaConfig::default()).is_err());
        let rel2 = WorkloadSpec::new(Distribution::Independent, 2, 50, 3).generate();
        let idx2 = Arc::new(DynamicIndex::new(&rel2, DlOptions::dl_plus(), 0.3));
        assert!(ReplicaSet::new(
            vec![Replica::healthy(&idx), Replica::healthy(&idx2)],
            ReplicaConfig::default()
        )
        .is_err());
    }

    #[test]
    fn router_over_replica_sets_is_bit_identical_to_unsharded() {
        // The integration the server relies on: ShardRouter<ReplicaSet<_>>
        // with a dead primary per shard still merges the unsharded answer.
        let d = 3;
        let p = 3;
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 300, 13).generate();
        let oracle = DynamicIndex::new(&rel, DlOptions::dl_plus(), 0.3);
        let sets: Vec<ReplicaSet<Replica>> = build_shards(&rel, p)
            .into_iter()
            .enumerate()
            .map(|(s, shard)| {
                let shard = Arc::new(shard);
                let primary = if s == 1 {
                    Replica::failing(&shard, ShardError::Io("dead".into()))
                } else {
                    Replica::healthy(&shard)
                };
                ReplicaSet::new(
                    vec![primary, Replica::healthy(&shard)],
                    ReplicaConfig::default(),
                )
                .unwrap()
            })
            .collect();
        let router = ShardRouter::new(sets, RouterConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xFA11);
        for _ in 0..10 {
            let w = Weights::random(d, &mut rng);
            let k = rng.gen_range(1..=30);
            let routed = router.topk(&w, k, &QueryBudget::unlimited());
            assert_eq!(routed.ids, oracle.topk(&w, k).0);
            assert!(routed.coverage.is_full(), "failover hides the dead primary");
            assert!(routed.truncated.is_none());
        }
    }

    #[test]
    fn router_rejects_bad_shard_sets() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 40, 3).generate();
        let rel3 = WorkloadSpec::new(Distribution::Independent, 3, 40, 3).generate();
        let empty: Vec<DynamicIndex> = Vec::new();
        assert!(ShardRouter::new(empty, RouterConfig::default()).is_err());
        let mixed = vec![
            DynamicIndex::new(&rel, DlOptions::dl(), 0.3),
            DynamicIndex::new(&rel3, DlOptions::dl(), 0.3),
        ];
        assert!(ShardRouter::new(mixed, RouterConfig::default()).is_err());
    }
}
