//! Zero-layer structures (Section V): selective access to the first fine
//! sublayer.

use drtopk_common::{Relation, TupleId, Weights};

/// Exact 2-d zero layer (Section V-A).
///
/// The first fine sublayer `L¹¹` is a convex chain; the weight simplex
/// (parameterized by `w₁`) partitions into contiguous ranges, one per chain
/// vertex, delimited by the slopes of the chain's facets. A query binary
/// searches its `w₁` into a range and seeds the queue with that single
/// vertex; popping a chain vertex then frees its chain neighbors (scores
/// along a convex chain are unimodal around the seed, so expansion in score
/// order is contiguous).
#[derive(Debug, Clone)]
pub struct Zero2d {
    /// The chain `L¹¹`, ordered by increasing x (decreasing y).
    pub chain: Vec<TupleId>,
    /// `breakpoints[t]` is the `w₁` value at which the minimizer switches
    /// from `chain[t]` (above) to `chain[t+1]` (below); strictly decreasing.
    pub breakpoints: Vec<f64>,
}

impl Zero2d {
    /// Builds the structure from the first fine sublayer's members.
    pub fn build(rel: &Relation, l11: &[TupleId]) -> Self {
        let mut chain: Vec<TupleId> = l11.to_vec();
        chain.sort_unstable_by(|&a, &b| {
            let (ta, tb) = (rel.tuple(a), rel.tuple(b));
            ta[0].partial_cmp(&tb[0]).unwrap().then(a.cmp(&b))
        });
        let mut breakpoints = Vec::with_capacity(chain.len().saturating_sub(1));
        for pair in chain.windows(2) {
            let (p, q) = (rel.tuple(pair[0]), rel.tuple(pair[1]));
            let dx = q[0] - p[0];
            let dy = p[1] - q[1];
            // Chain property: dx > 0, dy > 0. The switching weight solves
            // w₁·dx = (1 − w₁)·dy.
            debug_assert!(dx > 0.0 && dy > 0.0, "L11 must be a strict convex chain");
            breakpoints.push(dy / (dx + dy));
        }
        debug_assert!(
            breakpoints.windows(2).all(|w| w[0] >= w[1]),
            "breakpoints must decrease"
        );
        Zero2d { chain, breakpoints }
    }

    /// Chain position of the top-1 candidate for weight vector `w`
    /// (logarithmic search, as in Section V-A).
    pub fn select(&self, w: &Weights) -> usize {
        drtopk_obs::metrics().zero_probe();
        let w1 = w.as_slice()[0];
        // Minimizer is chain[t] for w1 in (breakpoints[t], breakpoints[t-1]).
        // breakpoints are decreasing, so partition_point on `w1 < bp`.
        self.breakpoints.partition_point(|&bp| w1 < bp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::relation::{toy_dataset, toy_id};
    use drtopk_common::Weights;

    fn toy_zero() -> (Relation, Zero2d) {
        let r = toy_dataset();
        let l11 = vec![toy_id('a'), toy_id('b'), toy_id('c')];
        let z = Zero2d::build(&r, &l11);
        (r, z)
    }

    #[test]
    fn chain_is_x_ordered() {
        let (_, z) = toy_zero();
        assert_eq!(z.chain, vec![toy_id('a'), toy_id('b'), toy_id('c')]);
        assert_eq!(z.breakpoints.len(), 2);
        assert!(z.breakpoints[0] > z.breakpoints[1]);
    }

    #[test]
    fn select_matches_bruteforce_over_weight_sweep() {
        let (r, z) = toy_zero();
        for step in 1..100 {
            let w1 = step as f64 / 100.0;
            let w = Weights::new(vec![w1, 1.0 - w1]).unwrap();
            let best = z.select(&w);
            let best_id = z.chain[best];
            for &c in &z.chain {
                assert!(
                    w.score(r.tuple(best_id)) <= w.score(r.tuple(c)) + 1e-12,
                    "select() must return the true chain minimizer (w1={w1})"
                );
            }
        }
    }

    #[test]
    fn extreme_weights_pick_chain_ends() {
        let (_, z) = toy_zero();
        let w_x = Weights::new(vec![0.99, 0.01]).unwrap();
        let w_y = Weights::new(vec![0.01, 0.99]).unwrap();
        assert_eq!(z.select(&w_x), 0, "x-heavy weight favors the min-x end");
        assert_eq!(
            z.select(&w_y),
            z.chain.len() - 1,
            "y-heavy weight favors the min-y end"
        );
    }

    #[test]
    fn single_vertex_chain() {
        let r = Relation::from_rows(2, &[vec![0.4, 0.4]]).unwrap();
        let z = Zero2d::build(&r, &[0]);
        assert!(z.breakpoints.is_empty());
        assert_eq!(z.select(&Weights::uniform(2)), 0);
    }
}
