//! Build-time configuration of the dual-resolution index.

use drtopk_skyline::SkylineAlgo;

/// How ∃-dominance edges are chosen when several facets of the previous
/// fine sublayer qualify as ∃-dominance sets of a tuple.
///
/// Fewer in-edges mean *later* ∃-freeing and therefore better selectivity
/// (a tuple is ∃-free as soon as **any** in-neighbor is reported), so one
/// sound EDS per tuple is optimal; which one pops first is query-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdsPolicy {
    /// Use the first qualifying facet (enumeration order). Cheapest to
    /// build; the paper's "minimal" facet EDS reading. Default.
    #[default]
    FirstFacet,
    /// Use every qualifying facet (union of their members). Worst
    /// selectivity, still correct — the ablation contrast case.
    AllFacets,
    /// Among qualifying facets, keep the one whose *minimum member
    /// attribute-sum* is largest: its earliest-popping member tends to pop
    /// latest under uniform-ish weights.
    BestUniform,
}

/// Zero-layer configuration (Section V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZeroMode {
    /// No zero layer: the whole first fine sublayer seeds the queue
    /// (plain DL, or DG when fine splitting is off).
    None,
    /// Clustered pseudo-tuples (Section V-B). `clusters = 0` means
    /// "automatic": ⌈√|L¹|⌉. With fine splitting on, the pseudo-tuples are
    /// themselves peeled into convex sublayers with ∃ edges (DL+); with it
    /// off this is DG+'s flat pseudo-tuple layer.
    Clustered {
        /// Cluster count; `0` selects ⌈√|L¹|⌉ automatically.
        clusters: usize,
    },
    /// Exact weight-range partitioning over the first sublayer's chain —
    /// 2-d only (Section V-A); falls back to `Clustered{0}` for d ≥ 3.
    Exact2d,
    /// The paper's DL+ behaviour: `Exact2d` when d == 2, clustered
    /// pseudo-tuples otherwise.
    Auto,
}

/// Options controlling index construction.
#[derive(Debug, Clone, PartialEq)]
pub struct DlOptions {
    /// Split each coarse layer into convex-skyline sublayers and build
    /// ∃-dominance edges. Turning this off yields the Dominant Graph.
    pub split_fine: bool,
    /// ∃-edge selection policy (ignored when `split_fine` is false).
    pub eds_policy: EdsPolicy,
    /// Zero-layer construction.
    pub zero: ZeroMode,
    /// Skyline algorithm for coarse-layer peeling.
    pub skyline_algo: SkylineAlgo,
    /// Seed for the zero layer's k-means.
    pub cluster_seed: u64,
    /// Cap on fine sublayers per coarse layer (0 = unlimited). Ablation
    /// knob: 1 reproduces coarse-only behaviour with fine bookkeeping.
    pub max_fine_layers: usize,
    /// Parallelize construction across independent layers with scoped
    /// threads (identical output; wall-clock only).
    pub parallel: bool,
    /// Worker threads for parallel construction (`0` = all available
    /// cores). Ignored unless `parallel` is set. The built index is
    /// bit-identical at every thread count.
    pub build_threads: usize,
}

impl Default for DlOptions {
    /// DL+ — the paper's full method.
    fn default() -> Self {
        DlOptions {
            split_fine: true,
            eds_policy: EdsPolicy::default(),
            zero: ZeroMode::Auto,
            skyline_algo: SkylineAlgo::BSkyTree,
            cluster_seed: 0x5eed,
            max_fine_layers: 0,
            parallel: false,
            build_threads: 0,
        }
    }
}

impl DlOptions {
    /// DL: dual-resolution layers without the zero-layer optimization.
    pub fn dl() -> Self {
        DlOptions {
            zero: ZeroMode::None,
            ..Default::default()
        }
    }

    /// DL+: DL with the zero layer (2-d exact / clustered). Same as
    /// `Default`.
    pub fn dl_plus() -> Self {
        Self::default()
    }

    /// DG: the Dominant Graph baseline — coarse skyline layers and
    /// ∀-dominance only.
    pub fn dg() -> Self {
        DlOptions {
            split_fine: false,
            zero: ZeroMode::None,
            ..Default::default()
        }
    }

    /// DG+: DG with the flat clustered pseudo-tuple zero layer.
    pub fn dg_plus() -> Self {
        DlOptions {
            split_fine: false,
            zero: ZeroMode::Clustered { clusters: 0 },
            ..Default::default()
        }
    }
}

impl DlOptions {
    /// Heuristic tuning from a sample of the relation, applying the
    /// ablation findings recorded in EXPERIMENTS.md:
    ///
    /// * parallel construction once the input is large enough to amortize
    ///   thread startup;
    /// * the exact 2-d zero layer when applicable (always wins there);
    /// * a fine-sublayer cap for large anti-correlated inputs — the
    ///   selectivity win saturates after a handful of sublayers while
    ///   construction keeps paying per peel.
    pub fn tuned_for(rel: &drtopk_common::Relation) -> DlOptions {
        let n = rel.len();
        let d = rel.dims();
        let mut opts = DlOptions {
            parallel: n >= 10_000,
            ..DlOptions::default()
        };
        if n == 0 {
            return opts;
        }
        // Estimate anti-correlation from a bounded sample: the variance of
        // the attribute sums collapses towards 0 when attributes trade off
        // against each other (independent data has variance d/12).
        let sample = n.min(2_000);
        let step = (n / sample).max(1);
        let mut sums = Vec::with_capacity(sample);
        let mut i = 0usize;
        while i < n && sums.len() < sample {
            sums.push(rel.tuple(i as u32).iter().sum::<f64>());
            i += step;
        }
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        let var = sums.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / sums.len() as f64;
        let independent_var = d as f64 / 12.0;
        let anti_correlated = var < 0.5 * independent_var;
        if anti_correlated && n >= 50_000 {
            // Huge skyline layers ahead: cap the fine peeling where the
            // ablation shows the win saturating.
            opts.max_fine_layers = 16;
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, WorkloadSpec};

    #[test]
    fn tuned_options_are_sensible() {
        let small = WorkloadSpec::new(Distribution::Independent, 3, 500, 1).generate();
        let t = DlOptions::tuned_for(&small);
        assert!(!t.parallel);
        assert_eq!(t.max_fine_layers, 0);

        let big_ant = WorkloadSpec::new(Distribution::AntiCorrelated, 4, 60_000, 2).generate();
        let t = DlOptions::tuned_for(&big_ant);
        assert!(t.parallel);
        assert_eq!(
            t.max_fine_layers, 16,
            "large anti-correlated input caps fine peeling"
        );

        let big_ind = WorkloadSpec::new(Distribution::Independent, 4, 60_000, 3).generate();
        let t = DlOptions::tuned_for(&big_ind);
        assert!(t.parallel);
        assert_eq!(
            t.max_fine_layers, 0,
            "independent data keeps full fine peeling"
        );
    }

    #[test]
    fn tuned_options_produce_correct_indexes() {
        use crate::index::DualLayerIndex;
        use drtopk_common::{topk_bruteforce, Weights};
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 800, 4).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::tuned_for(&rel));
        let w = Weights::uniform(3);
        assert_eq!(idx.topk(&w, 20).ids, topk_bruteforce(&rel, &w, 20));
    }

    #[test]
    fn variant_constructors() {
        assert!(DlOptions::dl().split_fine);
        assert!(matches!(DlOptions::dl().zero, ZeroMode::None));
        assert!(!DlOptions::dg().split_fine);
        assert!(matches!(
            DlOptions::dg_plus().zero,
            ZeroMode::Clustered { clusters: 0 }
        ));
        assert!(matches!(DlOptions::dl_plus().zero, ZeroMode::Auto));
    }
}
