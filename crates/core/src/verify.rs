//! Structural invariant checks for built indexes.
//!
//! These are exercised by the test suite and usable by applications that
//! want to validate an index built over untrusted data. Each function
//! panics with a description on the first violated invariant.

use crate::index::{DualLayerIndex, NodeId};
use drtopk_common::{dominates, dominates_eq, TupleId, Weights};

/// Checks the layering invariants:
///
/// * coarse layers partition the relation; fine sublayers partition their
///   coarse layer;
/// * no tuple dominates another inside the same coarse layer;
/// * every tuple of coarse layer i+1 is dominated by some tuple of layer i.
pub fn verify_structure(idx: &DualLayerIndex) {
    let rel = idx.relation();
    let n = rel.len();
    let mut seen = vec![false; n];
    for layer in idx.coarse_layers() {
        for t in layer.members() {
            assert!(!seen[t as usize], "tuple {t} appears in two layers");
            seen[t as usize] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "some tuple is missing from the layers"
    );

    for (ci, layer) in idx.coarse_layers().iter().enumerate() {
        let members: Vec<TupleId> = layer.members().collect();
        for &a in &members {
            for &b in &members {
                assert!(
                    !dominates(rel.tuple(a), rel.tuple(b)),
                    "dominance inside coarse layer {ci}: {a} ≺ {b}"
                );
            }
        }
        if ci > 0 {
            let prev: Vec<TupleId> = idx.coarse_layers()[ci - 1].members().collect();
            for &t in &members {
                assert!(
                    prev.iter().any(|&s| dominates(rel.tuple(s), rel.tuple(t))),
                    "tuple {t} in layer {ci} lacks a dominator in layer {}",
                    ci - 1
                );
            }
        }
    }
}

/// Checks edge-level invariants:
///
/// * every ∀ edge's source (weakly, for pseudo-tuples) dominates its target;
/// * ∀/∃ in-degree counters match the adjacency lists;
/// * every real tuple outside the first coarse layer has ∀ in-degree ≥ 1
///   (so it can never be accessed before a dominator).
pub fn verify_edges(idx: &DualLayerIndex) {
    let n = idx.len();
    let total = n + idx.stats().pseudo_tuples;
    let mut forall_in = vec![0u32; total];
    let mut exists_in = vec![0u32; total];
    for s in 0..total as NodeId {
        for t in idx.forall_out(s) {
            let sc = idx.node_coords(s);
            let tc = idx.node_coords(t);
            if idx.is_real(s) {
                assert!(dominates(sc, tc), "∀ edge {s}→{t} without dominance");
            } else {
                assert!(
                    dominates_eq(sc, tc),
                    "pseudo ∀ edge {s}→{t} without weak dominance"
                );
            }
            forall_in[t as usize] += 1;
        }
        for t in idx.exists_out(s) {
            exists_in[t as usize] += 1;
        }
    }
    for v in 0..total as NodeId {
        assert_eq!(
            forall_in[v as usize],
            idx.forall_in_degree(v),
            "∀ in-degree mismatch at node {v}"
        );
        assert_eq!(
            exists_in[v as usize],
            idx.exists_in_degree(v),
            "∃ in-degree mismatch at node {v}"
        );
    }
    for (ci, layer) in idx.coarse_layers().iter().enumerate().skip(1) {
        for t in layer.members() {
            assert!(
                idx.forall_in_degree(t as NodeId) >= 1,
                "tuple {t} in coarse layer {ci} has no ∀ in-edge"
            );
        }
    }
}

/// Checks the score-level soundness that Lemmas 1–2 rely on, for one
/// weight vector:
///
/// * every ∀ in-neighbor of a node scores no higher than the node;
/// * every node with ∃ in-edges has an in-neighbor scoring strictly lower
///   (the EDS guarantee), so it is always unblocked before its turn.
pub fn verify_edge_soundness(idx: &DualLayerIndex, w: &Weights) {
    let n = idx.len();
    let total = n + idx.stats().pseudo_tuples;
    let score = |v: NodeId| w.score(idx.node_coords(v));
    for t in 0..total as NodeId {
        let st = score(t);
        let f_in = idx.forall_in(t);
        for &s in &f_in {
            assert!(
                score(s) <= st + 1e-12,
                "∀ in-neighbor {s} of {t} scores higher ({} > {st})",
                score(s)
            );
        }
        let e_in = idx.exists_in(t);
        if !e_in.is_empty() {
            let min_in = e_in.iter().map(|&s| score(s)).fold(f64::INFINITY, f64::min);
            assert!(
                min_in < st + 1e-12,
                "no ∃ in-neighbor of {t} precedes it (min {min_in} vs {st})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::relation::toy_dataset;
    use drtopk_common::{Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn toy_index_passes_all_invariants() {
        let r = toy_dataset();
        for opts in [
            DlOptions::dl(),
            DlOptions::dl_plus(),
            DlOptions::dg(),
            DlOptions::dg_plus(),
        ] {
            let idx = DualLayerIndex::build(&r, opts);
            verify_structure(&idx);
            verify_edges(&idx);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..5 {
                verify_edge_soundness(&idx, &Weights::random(2, &mut rng));
            }
        }
    }

    #[test]
    fn random_indexes_pass_all_invariants() {
        let mut rng = StdRng::seed_from_u64(11);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 250, 31).generate();
                for opts in [DlOptions::dl_plus(), DlOptions::dg_plus()] {
                    let idx = DualLayerIndex::build(&rel, opts);
                    verify_structure(&idx);
                    verify_edges(&idx);
                    for _ in 0..3 {
                        verify_edge_soundness(&idx, &Weights::random(d, &mut rng));
                    }
                }
            }
        }
    }

    #[test]
    fn toy_example_3_and_4_edge_sets() {
        use drtopk_common::relation::toy_id;
        let r = toy_dataset();
        let idx = DualLayerIndex::build(&r, DlOptions::dl());
        let id = |c: char| toy_id(c) as NodeId;
        // Example 3: a ∀-dominates exactly {d, e, i}.
        let mut a_out: Vec<NodeId> = idx.forall_out(id('a')).to_vec();
        a_out.sort_unstable();
        assert_eq!(a_out, vec![id('d'), id('e'), id('i')]);
        // Example 4: i's ∀-dominators are {a, f}; j's are {b, g}.
        assert_eq!(idx.forall_in(id('i')), vec![id('a'), id('f')]);
        assert_eq!(idx.forall_in(id('j')), vec![id('b'), id('g')]);
        // Examples 2-3: a, b ∃-dominate f; b, c ∃-dominate g.
        assert_eq!(idx.exists_in(id('f')), vec![id('a'), id('b')]);
        assert_eq!(idx.exists_in(id('g')), vec![id('b'), id('c')]);
        // Example 4: first fine sublayers {a,b,c}, {d,e,j}, {h,k} are ∃-free.
        for c in ['a', 'b', 'c', 'd', 'e', 'j', 'h', 'k'] {
            assert_eq!(idx.exists_in_degree(id(c)), 0, "{c} must be ∃-free");
        }
        // i is ∃-dominated by e and j (facet {e, j}).
        assert_eq!(idx.exists_in(id('i')), vec![id('e'), id('j')]);
    }

    #[test]
    fn toy_fine_sublayers_match_example_3() {
        use drtopk_common::relation::toy_id;
        let r = toy_dataset();
        let idx = DualLayerIndex::build(&r, DlOptions::dl());
        let layers = idx.coarse_layers();
        assert_eq!(layers.len(), 3);
        let fine: Vec<Vec<Vec<char>>> = layers
            .iter()
            .map(|l| {
                l.fine
                    .iter()
                    .map(|f| {
                        let mut v: Vec<char> =
                            f.iter().map(|&t| (b'a' + t as u8) as char).collect();
                        v.sort_unstable();
                        v
                    })
                    .collect()
            })
            .collect();
        assert_eq!(fine[0], vec![vec!['a', 'b', 'c'], vec!['f', 'g']]);
        assert_eq!(fine[1], vec![vec!['d', 'e', 'j'], vec!['i']]);
        assert_eq!(fine[2], vec![vec!['h', 'k']]);
        let _ = toy_id('a');
    }
}
