//! Top-k under arbitrary *monotone* scoring functions.
//!
//! The paper assumes linear scoring because convex skylines — and hence
//! the ∃-dominance machinery — are only sound for linear functions. The
//! coarse level needs less: ∀-dominance ordering (Lemma 1) holds for
//! every monotone function, exactly the Dominant Graph's assumption. This
//! module therefore answers monotone top-k queries on any built
//! [`DualLayerIndex`] by traversing the ∀-graph only (∃ edges and the
//! zero-layer chain are linearity-dependent and are bypassed; clustered
//! pseudo-tuples are kept — a min-corner dominates its cluster under any
//! monotone function).
//!
//! With non-strictly-monotone functions (e.g. a weighted Chebyshev
//! maximum), dominance can produce score *ties*; the returned set is then
//! correct up to equal-score substitutions, matching the paper's "ties
//! are broken arbitrarily".

use crate::index::{DualLayerIndex, NodeId};
use crate::query::TopkResult;
use drtopk_common::{Cost, TupleId};
use std::collections::BinaryHeap;

/// A monotone scoring function over `[0,1]^d`: if `t ≤ u` component-wise
/// then `score(t) ≤ score(u)`. Implementations must be deterministic and
/// produce finite values on `[0,1]^d`.
pub trait MonotoneScore {
    /// Number of attributes the function expects.
    fn dims(&self) -> usize;
    /// Evaluates the function.
    fn score(&self, t: &[f64]) -> f64;
}

/// `F(t) = Σ wᵢ · tᵢ^p` — a weighted power sum (`p ≥ 1` convex,
/// `0 < p < 1` concave; all strictly monotone for positive weights).
#[derive(Debug, Clone)]
pub struct WeightedPower {
    /// Per-attribute positive weights.
    pub weights: Vec<f64>,
    /// The exponent `p`.
    pub power: f64,
}

impl MonotoneScore for WeightedPower {
    fn dims(&self) -> usize {
        self.weights.len()
    }
    fn score(&self, t: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(t)
            .map(|(w, x)| w * x.powf(self.power))
            .sum()
    }
}

/// `F(t) = max_i wᵢ · tᵢ` — weighted Chebyshev; monotone but not strictly
/// (changing a non-maximal coordinate leaves the score unchanged).
#[derive(Debug, Clone)]
pub struct WeightedChebyshev {
    /// Per-attribute positive weights.
    pub weights: Vec<f64>,
}

impl MonotoneScore for WeightedChebyshev {
    fn dims(&self) -> usize {
        self.weights.len()
    }
    fn score(&self, t: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(t)
            .map(|(w, x)| w * x)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// `F(t) = Σ wᵢ · ln(1 + tᵢ)` — a diminishing-returns aggregate.
#[derive(Debug, Clone)]
pub struct LogSum {
    /// Per-attribute positive weights.
    pub weights: Vec<f64>,
}

impl MonotoneScore for LogSum {
    fn dims(&self) -> usize {
        self.weights.len()
    }
    fn score(&self, t: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(t)
            .map(|(w, x)| w * (1.0 + x).ln())
            .sum()
    }
}

use crate::query::Entry;

impl DualLayerIndex {
    /// Answers a top-k query for an arbitrary monotone scoring function by
    /// traversing the coarse (∀-dominance) level only. See module docs for
    /// the tie semantics.
    ///
    /// # Panics
    /// Panics if `f.dims()` differs from the index's dimensionality.
    pub fn topk_monotone<F: MonotoneScore>(&self, f: &F, k: usize) -> TopkResult {
        assert_eq!(
            f.dims(),
            self.dims(),
            "scoring function dimensionality mismatch"
        );
        let n = self.len();
        let total = n + self.stats().pseudo_tuples;
        let k_eff = k.min(n);
        let mut cost = Cost::new();
        let mut ids: Vec<TupleId> = Vec::with_capacity(k_eff);
        if k_eff == 0 {
            return TopkResult { ids, cost };
        }
        // Traverses in internal (traversal-ordered) node space, like the
        // linear path; `Entry::orig` keeps the id tie-break public.
        let mut remaining: Vec<u32> = self.forall_indeg.clone();
        let mut enqueued = vec![false; total];
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();

        let enqueue =
            |node: NodeId, heap: &mut BinaryHeap<Entry>, enqueued: &mut [bool], cost: &mut Cost| {
                if enqueued[node as usize] {
                    return;
                }
                enqueued[node as usize] = true;
                let real = self.is_real(node);
                if real {
                    cost.tick();
                } else {
                    cost.tick_pseudo();
                }
                let orig = self.node_orig[node as usize];
                heap.push(Entry {
                    score: f.score(self.node_coords(orig)),
                    real,
                    node,
                    orig,
                });
            };

        // Seeds: every node without ∀ in-edges — the whole first coarse
        // layer (or all pseudo-tuples when a clustered zero layer exists).
        for node in 0..total as NodeId {
            if remaining[node as usize] == 0 {
                enqueue(node, &mut heap, &mut enqueued, &mut cost);
            }
        }
        while ids.len() < k_eff {
            let Some(entry) = heap.pop() else {
                debug_assert!(false, "queue exhausted early");
                break;
            };
            if entry.real {
                ids.push(entry.orig as TupleId);
            }
            for &t in self.arena.forall_out(entry.node) {
                remaining[t as usize] -= 1;
                if remaining[t as usize] == 0 {
                    enqueue(t, &mut heap, &mut enqueued, &mut cost);
                }
            }
        }
        TopkResult { ids, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{Distribution, WorkloadSpec};

    fn oracle_scores<F: MonotoneScore>(rel: &drtopk_common::Relation, f: &F, k: usize) -> Vec<f64> {
        let mut s: Vec<f64> = rel.iter().map(|(_, t)| f.score(t)).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s.truncate(k);
        s
    }

    fn check<F: MonotoneScore>(
        rel: &drtopk_common::Relation,
        idx: &DualLayerIndex,
        f: &F,
        k: usize,
    ) {
        let got = idx.topk_monotone(f, k);
        let mut gs: Vec<f64> = got.ids.iter().map(|&t| f.score(rel.tuple(t))).collect();
        gs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want = oracle_scores(rel, f, k);
        assert_eq!(gs.len(), want.len());
        for (a, b) in gs.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "monotone score mismatch: {a} vs {b}");
        }
        // Results must arrive in non-decreasing score order.
        let ordered: Vec<f64> = got.ids.iter().map(|&t| f.score(rel.tuple(t))).collect();
        assert!(ordered.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn quadratic_and_log_and_chebyshev_match_oracle() {
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 300, 99).generate();
                for opts in [DlOptions::dl(), DlOptions::dl_plus(), DlOptions::dg_plus()] {
                    let idx = DualLayerIndex::build(&rel, opts);
                    let w: Vec<f64> = (1..=d).map(|i| i as f64).collect();
                    for k in [1, 10, 40] {
                        check(
                            &rel,
                            &idx,
                            &WeightedPower {
                                weights: w.clone(),
                                power: 2.0,
                            },
                            k,
                        );
                        check(
                            &rel,
                            &idx,
                            &WeightedPower {
                                weights: w.clone(),
                                power: 0.5,
                            },
                            k,
                        );
                        check(&rel, &idx, &LogSum { weights: w.clone() }, k);
                        check(&rel, &idx, &WeightedChebyshev { weights: w.clone() }, k);
                    }
                }
            }
        }
    }

    #[test]
    fn monotone_cost_bounded_by_n_plus_pseudo() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 400, 7).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let f = WeightedPower {
            weights: vec![1.0, 2.0, 3.0],
            power: 1.5,
        };
        let res = idx.topk_monotone(&f, 10);
        assert!(res.cost.evaluated <= 400);
        assert!(res.cost.evaluated >= 10);
    }

    #[test]
    fn linear_special_case_agrees_with_topk() {
        // power = 1 is the linear case: results must equal the linear path
        // exactly (same tie-break on distinct scores).
        use drtopk_common::Weights;
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 5).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let raw = vec![0.2, 0.3, 0.5];
        let f = WeightedPower {
            weights: raw.clone(),
            power: 1.0,
        };
        let w = Weights::new(raw).unwrap();
        assert_eq!(idx.topk_monotone(&f, 25).ids, idx.topk(&w, 25).ids);
    }
}
