//! Analytical queries layered on the index traversal: reverse top-k,
//! k-skyband, and batched evaluation.
//!
//! * **Reverse top-k** (bichromatic; Vlachou et al., ICDE 2010 — the
//!   paper's reference \[32\]): given a tuple and a population of user
//!   weight vectors, find the users whose top-k contains the tuple.
//!   Answered with threshold traversals bounded by the tuple's own score,
//!   so each user costs roughly a top-k query, not a scan.
//! * **k-skyband**: the tuples dominated by fewer than k others — a
//!   weight-independent superset of every possible top-k answer under any
//!   strictly monotone scoring function.
//! * **Batched top-k**: many weight vectors against one index with one
//!   scratch allocation, optionally fanned out over threads.

use crate::index::{DualLayerIndex, NodeId};
use crate::query::TopkResult;
use drtopk_common::{dominates, Cost, TupleId, Weights};

impl DualLayerIndex {
    /// Bichromatic reverse top-k: indexes into `users` whose top-k result
    /// (under this index's relation) contains `target`. Also returns the
    /// total traversal cost.
    ///
    /// Per user `w`, `target ∈ top-k(w)` iff fewer than k tuples have a
    /// smaller `(score, id)` key — decided by a score-bounded traversal
    /// that stops as soon as k better tuples are seen.
    ///
    /// # Panics
    /// Panics if `target` is out of range or any user's dimensionality
    /// differs from the index's.
    pub fn reverse_topk(&self, target: TupleId, k: usize, users: &[Weights]) -> (Vec<usize>, Cost) {
        assert!((target as usize) < self.len(), "target out of range");
        let mut cost = Cost::new();
        let mut hits = Vec::new();
        if k == 0 {
            return (hits, cost);
        }
        for (ui, w) in users.iter().enumerate() {
            let t_score = w.score(self.relation().tuple(target));
            // Count tuples strictly preceding `target` in (score, id)
            // order; stop counting at k.
            let mut better = 0usize;
            let mut cursor = crate::query::TopkCursor::new(self, w);
            for (t, score) in cursor.by_ref() {
                if score > t_score || (score == t_score && t >= target) {
                    break;
                }
                if t != target {
                    better += 1;
                    if better >= k {
                        break;
                    }
                }
            }
            cost.merge(&cursor.cost());
            if better < k {
                hits.push(ui);
            }
        }
        (hits, cost)
    }

    /// The k-skyband: tuples dominated by fewer than `k` others. For any
    /// strictly monotone scoring function, every top-k answer lies in the
    /// k-skyband, making it the tightest weight-independent candidate set.
    ///
    /// Computed from the coarse layers: only tuples in the first k coarse
    /// layers can qualify (each deeper layer adds a dominator along a
    /// chain), so the quadratic count runs over a small prefix.
    pub fn skyband(&self, k: usize) -> Vec<TupleId> {
        if k == 0 {
            return Vec::new();
        }
        let rel = self.relation();
        // Candidates: first k coarse layers (layer number = longest
        // dominance chain length <= 1 + #dominators).
        let candidates: Vec<TupleId> = self
            .coarse_layers()
            .iter()
            .take(k)
            .flat_map(|l| l.members())
            .collect();
        let mut out = Vec::new();
        'outer: for &t in &candidates {
            let tv = rel.tuple(t);
            let mut dominators = 0usize;
            // Dominators of a candidate can sit anywhere in the first k
            // layers (and nowhere deeper: a dominator's layer precedes
            // its dominatee's).
            for &s in &candidates {
                if s != t && dominates(rel.tuple(s), tv) {
                    dominators += 1;
                    if dominators >= k {
                        continue 'outer;
                    }
                }
            }
            out.push(t);
        }
        out.sort_unstable();
        out
    }

    /// Answers many queries with one scratch allocation per worker; with
    /// `parallel = true` the batch fans out over all cores (results are
    /// identical either way). Thin wrapper over
    /// [`BatchExecutor`](crate::batch::BatchExecutor), kept for API
    /// stability; use the executor directly for per-request `k` or an
    /// explicit thread count.
    pub fn topk_batch(&self, queries: &[Weights], k: usize, parallel: bool) -> Vec<TopkResult> {
        let threads = if parallel { 0 } else { 1 };
        crate::batch::BatchExecutor::with_threads(self, threads).run_uniform(queries, k)
    }
}

/// Verifies (for tests) that the skyband candidate restriction is sound:
/// a tuple outside the first k coarse layers has ≥ k dominators.
#[doc(hidden)]
pub fn chain_length_lower_bounds_dominators(idx: &DualLayerIndex, t: NodeId) -> bool {
    let rel = idx.relation();
    let layer_of = idx
        .coarse_layers()
        .iter()
        .position(|l| l.members().any(|m| m == t))
        .expect("tuple is in some layer");
    let dominators = (0..rel.len() as TupleId)
        .filter(|&s| s != t && dominates(rel.tuple(s), rel.tuple(t)))
        .count();
    dominators >= layer_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reverse_topk_matches_bruteforce() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 300, 17).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let mut rng = StdRng::seed_from_u64(11);
        let users: Vec<Weights> = (0..25).map(|_| Weights::random(3, &mut rng)).collect();
        for target in [0u32, 17, 123, 299] {
            for k in [1, 5, 20] {
                let (got, cost) = idx.reverse_topk(target, k, &users);
                let want: Vec<usize> = users
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| topk_bruteforce(&rel, w, k).contains(&target))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, want, "target={target} k={k}");
                assert!(cost.total() <= (users.len() * rel.len()) as u64);
            }
        }
    }

    #[test]
    fn skyband_contains_every_topk_answer() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 400, 3).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let mut rng = StdRng::seed_from_u64(2);
        for k in [1, 3, 10] {
            let band = idx.skyband(k);
            for _ in 0..10 {
                let w = Weights::random(3, &mut rng);
                for t in topk_bruteforce(&rel, &w, k) {
                    assert!(
                        band.contains(&t),
                        "top-{k} answer {t} missing from {k}-skyband"
                    );
                }
            }
            // Definitional check: members have < k dominators, and every
            // excluded tuple has >= k.
            for t in 0..rel.len() as TupleId {
                let dominators = (0..rel.len() as TupleId)
                    .filter(|&s| s != t && drtopk_common::dominates(rel.tuple(s), rel.tuple(t)))
                    .count();
                assert_eq!(band.contains(&t), dominators < k, "tuple {t} k={k}");
            }
        }
    }

    #[test]
    fn skyband_1_is_the_skyline() {
        let rel = WorkloadSpec::new(Distribution::Independent, 4, 250, 9).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let band = idx.skyband(1);
        let mut l1: Vec<TupleId> = idx.coarse_layers()[0].members().collect();
        l1.sort_unstable();
        assert_eq!(band, l1);
    }

    #[test]
    fn chain_length_bound_holds() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 200, 5).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        for t in 0..rel.len() as TupleId {
            assert!(chain_length_lower_bounds_dominators(&idx, t), "tuple {t}");
        }
    }

    #[test]
    fn batch_matches_sequential_and_parallel() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 500, 7).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let mut rng = StdRng::seed_from_u64(31);
        let queries: Vec<Weights> = (0..40).map(|_| Weights::random(3, &mut rng)).collect();
        let seq = idx.topk_batch(&queries, 10, false);
        let par = idx.topk_batch(&queries, 10, true);
        assert_eq!(seq.len(), 40);
        for ((s, p), w) in seq.iter().zip(&par).zip(&queries) {
            assert_eq!(s.ids, p.ids);
            assert_eq!(s.cost, p.cost);
            assert_eq!(s.ids, topk_bruteforce(&rel, w, 10));
        }
    }
}
