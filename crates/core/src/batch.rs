//! Concurrent batch query execution.
//!
//! A [`BatchExecutor`] answers many independent `(weights, k)` requests
//! against one index by fanning contiguous chunks of the request slice
//! across scoped worker threads. Each worker allocates a single
//! [`QueryScratch`] and reuses it for every request of its chunk, so a
//! batch of q queries costs O(threads) scratch allocations instead of
//! O(q).
//!
//! Determinism: results come back in request order, and each individual
//! result is bit-identical to a sequential [`DualLayerIndex::topk`] call —
//! queries never share mutable state, and the traversal itself is
//! deterministic, so the thread count can only change wall-clock time,
//! never answers or costs.

use crate::cache::ResultCache;
use crate::index::DualLayerIndex;
use crate::par::{parallel_map_chunked, resolve_workers_chunked};
use crate::query::{GuardedTopk, QueryBudget, QueryScratch, TopkResult};
use drtopk_common::Weights;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Failpoint visited once per request on the guarded path, before the
/// query runs. The chaos suite arms it with a panic to prove one poisoned
/// request cannot take down its batch.
pub const WORKER_FAILPOINT: &str = "batch::worker";

/// A per-request failure inside [`BatchExecutor::run_guarded`]: the
/// request's query panicked (or an injected worker fault fired). Other
/// requests of the batch are unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Panic payload or injected-fault description.
    pub message: String,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request failed: {}", self.message)
    }
}

impl std::error::Error for RequestError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query worker panicked".to_string()
    }
}

/// Smallest number of requests worth handing one worker thread. A top-k
/// query on a built index runs in tens of microseconds, so dispatching
/// fewer requests than this per thread costs more in spawn/join overhead
/// than the parallelism recovers (the PR-1 throughput sweep measured
/// speedup < 1 at 2 threads for exactly this reason). Small batches
/// therefore collapse onto fewer workers.
const MIN_REQUESTS_PER_WORKER: usize = 8;

/// Multi-threaded executor for batches of top-k requests over one index.
///
/// ```
/// use drtopk_common::{Distribution, Weights, WorkloadSpec};
/// use drtopk_core::{BatchExecutor, DlOptions, DualLayerIndex};
///
/// let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 1).generate();
/// let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
/// let requests = vec![(Weights::uniform(3), 5), (Weights::uniform(3), 1)];
/// let results = BatchExecutor::new(&idx).run(&requests);
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].ids, idx.topk(&Weights::uniform(3), 5).ids);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor<'a> {
    idx: &'a DualLayerIndex,
    threads: usize,
    cache: Option<&'a ResultCache>,
}

impl<'a> BatchExecutor<'a> {
    /// An executor that uses all available cores.
    pub fn new(idx: &'a DualLayerIndex) -> Self {
        BatchExecutor {
            idx,
            threads: 0,
            cache: None,
        }
    }

    /// An executor with an explicit thread count (`0` = all cores).
    pub fn with_threads(idx: &'a DualLayerIndex, threads: usize) -> Self {
        BatchExecutor {
            idx,
            threads,
            cache: None,
        }
    }

    /// Routes this executor's queries through a shared [`ResultCache`].
    /// All workers consult and fill the same cache concurrently (its
    /// sharded locks keep the hit path read-mostly); ids stay
    /// bit-identical to the uncached run, costs follow the cache's
    /// documented hit/miss semantics.
    pub fn with_cache(mut self, cache: &'a ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The thread count this executor would use for a batch of `requests`
    /// requests: the configured count, clamped to available cores and to
    /// one worker per `MIN_REQUESTS_PER_WORKER`-request chunk.
    pub fn effective_threads(&self, requests: usize) -> usize {
        resolve_workers_chunked(self.threads, requests, MIN_REQUESTS_PER_WORKER)
    }

    /// Answers every `(weights, k)` request, returning results in request
    /// order. Each result is bit-identical to `self.idx.topk(&w, k)`.
    ///
    /// # Panics
    /// Panics if any weight vector's dimensionality differs from the
    /// index's.
    pub fn run(&self, requests: &[(Weights, usize)]) -> Vec<TopkResult> {
        let idx = self.idx;
        let cache = self.cache;
        drtopk_obs::metrics().batch_enqueue(requests.len() as u64);
        let out = parallel_map_chunked(
            requests,
            self.threads,
            MIN_REQUESTS_PER_WORKER,
            &|| QueryScratch::for_index(idx),
            &|scratch, (w, k)| match cache {
                Some(c) => c.topk_with_scratch(idx, w, *k, scratch).into_result(),
                None => idx.topk_with_scratch(w, *k, scratch),
            },
        );
        drtopk_obs::metrics().batch_drain(out.len() as u64);
        out
    }

    /// Fault-isolated batch execution: every `(weights, k)` request is
    /// answered under `budget`, panics are confined to the request that
    /// raised them, and results come back in request order.
    ///
    /// Guarantees:
    ///
    /// * a request whose query panics (malformed weights, an injected
    ///   worker fault) yields `Err(RequestError)` for that slot only —
    ///   the rest of the batch completes normally;
    /// * every successful, untruncated result is bit-identical to a
    ///   sequential [`DualLayerIndex::topk`] call;
    /// * `budget` applies per request (same deadline/cost cap for each);
    ///   its cancellation flag is shared, so tripping it drains the whole
    ///   batch cooperatively — each remaining request returns its
    ///   truncated prefix instead of running to completion.
    ///
    /// A worker whose request panicked rebuilds its pooled scratch before
    /// the next request: the panic may have unwound mid-update, and a
    /// fresh scratch is the only state guaranteed clean.
    ///
    /// With a cache attached: under an unlimited budget requests take the
    /// full cache path (lookup, fallback, fill). Under a real budget a
    /// cache *hit* — always a complete answer costing at most k rescores —
    /// is served as-is (strictly better than any truncation the budget
    /// could force), while a miss runs the guarded traversal unchanged and
    /// is never stored (a truncated answer must not poison the cache).
    pub fn run_guarded(
        &self,
        requests: &[(Weights, usize)],
        budget: &QueryBudget,
    ) -> Vec<Result<GuardedTopk, RequestError>> {
        let idx = self.idx;
        let cache = self.cache;
        drtopk_obs::metrics().batch_enqueue(requests.len() as u64);
        let out = parallel_map_chunked(
            requests,
            self.threads,
            MIN_REQUESTS_PER_WORKER,
            &|| Some(QueryScratch::for_index(idx)),
            &|slot: &mut Option<QueryScratch>, (w, k)| {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    drtopk_failpoints::hit(WORKER_FAILPOINT)
                        .map_err(|e| RequestError {
                            message: e.to_string(),
                        })
                        .map(|()| {
                            let scratch = slot.get_or_insert_with(|| QueryScratch::for_index(idx));
                            match cache {
                                Some(c) if budget.is_unlimited() => {
                                    let r = c.topk_with_scratch(idx, w, *k, scratch);
                                    GuardedTopk {
                                        ids: r.ids,
                                        cost: r.cost,
                                        truncated: None,
                                    }
                                }
                                Some(c) => match c.probe(idx, w, *k) {
                                    Some(r) => GuardedTopk {
                                        ids: r.ids,
                                        cost: r.cost,
                                        truncated: None,
                                    },
                                    None => idx.topk_guarded_with_scratch(w, *k, budget, scratch),
                                },
                                None => idx.topk_guarded_with_scratch(w, *k, budget, scratch),
                            }
                        })
                }));
                match outcome {
                    Ok(result) => result,
                    Err(payload) => {
                        *slot = None;
                        Err(RequestError {
                            message: panic_message(payload),
                        })
                    }
                }
            },
        );
        drtopk_obs::metrics().batch_drain(out.len() as u64);
        out
    }

    /// Like [`run_guarded`](Self::run_guarded), but with a **per-request**
    /// budget: each `(weights, k, budget)` triple carries its own
    /// deadline/cost cap/cancel flag. This is the enqueue hook the network
    /// server uses — every client propagates its own deadline in the frame
    /// header (`PROTOCOL.md` §3.1), so one slow client's budget must not
    /// govern the micro-batch it happens to share.
    ///
    /// All `run_guarded` guarantees hold per slot: panics are confined to
    /// the request that raised them, untruncated results are bit-identical
    /// to sequential [`DualLayerIndex::topk`], cache hits are served
    /// complete under any budget, and budgeted misses never fill the cache.
    pub fn run_guarded_each(
        &self,
        requests: &[(Weights, usize, QueryBudget)],
    ) -> Vec<Result<GuardedTopk, RequestError>> {
        let idx = self.idx;
        let cache = self.cache;
        drtopk_obs::metrics().batch_enqueue(requests.len() as u64);
        let out = parallel_map_chunked(
            requests,
            self.threads,
            MIN_REQUESTS_PER_WORKER,
            &|| Some(QueryScratch::for_index(idx)),
            &|slot: &mut Option<QueryScratch>, (w, k, budget)| {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    drtopk_failpoints::hit(WORKER_FAILPOINT)
                        .map_err(|e| RequestError {
                            message: e.to_string(),
                        })
                        .map(|()| {
                            let scratch = slot.get_or_insert_with(|| QueryScratch::for_index(idx));
                            match cache {
                                Some(c) if budget.is_unlimited() => {
                                    let r = c.topk_with_scratch(idx, w, *k, scratch);
                                    GuardedTopk {
                                        ids: r.ids,
                                        cost: r.cost,
                                        truncated: None,
                                    }
                                }
                                Some(c) => match c.probe(idx, w, *k) {
                                    Some(r) => GuardedTopk {
                                        ids: r.ids,
                                        cost: r.cost,
                                        truncated: None,
                                    },
                                    None => idx.topk_guarded_with_scratch(w, *k, budget, scratch),
                                },
                                None => idx.topk_guarded_with_scratch(w, *k, budget, scratch),
                            }
                        })
                }));
                match outcome {
                    Ok(result) => result,
                    Err(payload) => {
                        *slot = None;
                        Err(RequestError {
                            message: panic_message(payload),
                        })
                    }
                }
            },
        );
        drtopk_obs::metrics().batch_drain(out.len() as u64);
        out
    }

    /// Answers every query with the same `k` — the common benchmark shape.
    pub fn run_uniform(&self, queries: &[Weights], k: usize) -> Vec<TopkResult> {
        let idx = self.idx;
        let cache = self.cache;
        drtopk_obs::metrics().batch_enqueue(queries.len() as u64);
        let out = parallel_map_chunked(
            queries,
            self.threads,
            MIN_REQUESTS_PER_WORKER,
            &|| QueryScratch::for_index(idx),
            &|scratch, w| match cache {
                Some(c) => c.topk_with_scratch(idx, w, k, scratch).into_result(),
                None => idx.topk_with_scratch(w, k, scratch),
            },
        );
        drtopk_obs::metrics().batch_drain(out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn batch_fixture(d: usize, n: usize) -> (DualLayerIndex, Vec<(Weights, usize)>) {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, n, 13).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let requests: Vec<(Weights, usize)> = (0..60)
            .map(|_| (Weights::random(d, &mut rng), rng.gen_range(1..=25usize)))
            .collect();
        (idx, requests)
    }

    #[test]
    fn batch_is_bit_identical_to_sequential_across_thread_counts() {
        // The satellite contract: same ids, same cost as a sequential
        // topk loop, for threads in {1, 2, 8}.
        for d in [2, 3] {
            let (idx, requests) = batch_fixture(d, 400);
            let sequential: Vec<TopkResult> =
                requests.iter().map(|(w, k)| idx.topk(w, *k)).collect();
            for threads in [1usize, 2, 8] {
                let exec = BatchExecutor::with_threads(&idx, threads);
                let batch = exec.run(&requests);
                assert_eq!(batch.len(), sequential.len());
                for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                    assert_eq!(b.ids, s.ids, "d={d} threads={threads} request {i}");
                    assert_eq!(b.cost, s.cost, "d={d} threads={threads} request {i}");
                }
            }
        }
    }

    #[test]
    fn run_uniform_matches_per_request_k() {
        let (idx, requests) = batch_fixture(3, 300);
        let queries: Vec<Weights> = requests.iter().map(|(w, _)| w.clone()).collect();
        let uniform = BatchExecutor::with_threads(&idx, 2).run_uniform(&queries, 7);
        let explicit: Vec<(Weights, usize)> = queries.iter().map(|w| (w.clone(), 7)).collect();
        let general = BatchExecutor::with_threads(&idx, 2).run(&explicit);
        for (a, b) in uniform.iter().zip(&general) {
            assert_eq!(a.ids, b.ids);
            assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn mixed_k_values_and_edge_requests() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 150, 5).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let requests = vec![
            (Weights::uniform(2), 0), // empty answer
            (Weights::uniform(2), 1),
            (Weights::new(vec![0.99, 0.01]).unwrap(), 150), // full relation
            (Weights::new(vec![0.01, 0.99]).unwrap(), 999), // k > n
        ];
        let out = BatchExecutor::with_threads(&idx, 2).run(&requests);
        assert!(out[0].ids.is_empty());
        assert_eq!(out[1].ids.len(), 1);
        assert_eq!(out[2].ids.len(), 150);
        assert_eq!(out[3].ids.len(), 150);
        for ((w, k), r) in requests.iter().zip(&out) {
            let want = idx.topk(w, *k);
            assert_eq!(r.ids, want.ids);
            assert_eq!(r.cost, want.cost);
        }
    }

    #[test]
    fn guarded_matches_plain_run_without_faults() {
        let (idx, requests) = batch_fixture(3, 400);
        let plain = BatchExecutor::with_threads(&idx, 2).run(&requests);
        for threads in [1usize, 4] {
            let guarded = BatchExecutor::with_threads(&idx, threads)
                .run_guarded(&requests, &crate::query::QueryBudget::unlimited());
            assert_eq!(guarded.len(), plain.len());
            for (i, (g, p)) in guarded.iter().zip(&plain).enumerate() {
                let g = g.as_ref().expect("no faults injected");
                assert!(g.is_complete());
                assert_eq!(g.ids, p.ids, "threads={threads} request {i}");
                assert_eq!(g.cost, p.cost, "threads={threads} request {i}");
            }
        }
    }

    #[test]
    fn one_panicking_request_fails_alone() {
        // A weight vector of the wrong arity makes the traversal panic.
        // run_guarded must confine the panic to that request and keep the
        // other answers bit-identical to sequential topk.
        let (idx, mut requests) = batch_fixture(3, 300);
        let poison = 17;
        requests[poison] = (Weights::uniform(2), 5);
        let sequential: Vec<Option<TopkResult>> = requests
            .iter()
            .enumerate()
            .map(|(i, (w, k))| (i != poison).then(|| idx.topk(w, *k)))
            .collect();
        for threads in [1usize, 2, 8] {
            let out = BatchExecutor::with_threads(&idx, threads)
                .run_guarded(&requests, &crate::query::QueryBudget::unlimited());
            assert_eq!(out.len(), requests.len());
            for (i, r) in out.iter().enumerate() {
                if i == poison {
                    let err = r.as_ref().unwrap_err();
                    assert!(
                        err.message.contains("dimensionality"),
                        "threads={threads}: {}",
                        err.message
                    );
                } else {
                    let g = r.as_ref().expect("healthy request must succeed");
                    let s = sequential[i].as_ref().unwrap();
                    assert_eq!(g.ids, s.ids, "threads={threads} request {i}");
                    assert_eq!(g.cost, s.cost, "threads={threads} request {i}");
                }
            }
        }
    }

    #[test]
    fn shared_cancel_flag_drains_the_batch() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let (idx, requests) = batch_fixture(3, 300);
        let flag = Arc::new(AtomicBool::new(true));
        let budget = crate::query::QueryBudget::unlimited().with_cancel_flag(flag);
        let out = BatchExecutor::with_threads(&idx, 2).run_guarded(&requests, &budget);
        for r in &out {
            let g = r.as_ref().expect("cancellation is not an error");
            assert!(!g.is_complete(), "pre-tripped flag truncates every request");
            assert!(g.ids.is_empty());
        }
    }

    #[test]
    fn cached_batch_ids_are_bit_identical_across_threads() {
        use crate::cache::ResultCache;
        for d in [2usize, 3] {
            let (idx, _) = batch_fixture(d, 400);
            // A zipfian batch: heavy weight repetition, mixed k.
            let mut rng = StdRng::seed_from_u64(0xCAC4E);
            let pool: Vec<Weights> = (0..6).map(|_| Weights::random(d, &mut rng)).collect();
            let requests: Vec<(Weights, usize)> = (0..120)
                .map(|i| (pool[i % pool.len()].clone(), 1 + i % 20))
                .collect();
            let plain = BatchExecutor::with_threads(&idx, 1).run(&requests);
            let cache = ResultCache::default();
            for threads in [1usize, 4] {
                let cached = BatchExecutor::with_threads(&idx, threads)
                    .with_cache(&cache)
                    .run(&requests);
                for (i, (c, p)) in cached.iter().zip(&plain).enumerate() {
                    assert_eq!(c.ids, p.ids, "d={d} threads={threads} request {i}");
                }
            }
            let s = cache.stats();
            assert!(s.hits > 0, "d={d}: repeated weights must hit: {s:?}");
        }
    }

    #[test]
    fn cached_guarded_run_serves_hits_and_respects_budgets() {
        use crate::cache::ResultCache;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let (idx, _) = batch_fixture(3, 300);
        let w = Weights::uniform(3);
        let requests: Vec<(Weights, usize)> = (0..16).map(|_| (w.clone(), 5)).collect();
        let cache = ResultCache::default();
        let exec = BatchExecutor::with_threads(&idx, 2).with_cache(&cache);
        // Unlimited budget: full cache path, answers match plain topk.
        let want = idx.topk(&w, 5).ids;
        for r in exec.run_guarded(&requests, &QueryBudget::unlimited()) {
            let g = r.expect("no faults");
            assert!(g.is_complete());
            assert_eq!(g.ids, want);
        }
        assert!(cache.stats().hits > 0);
        // A pre-tripped budget: hits still come back complete (the cache
        // bypasses the traversal entirely), and nothing new is stored.
        let stores_before = cache.stats().stores;
        let flag = Arc::new(AtomicBool::new(true));
        let tripped = QueryBudget::unlimited().with_cancel_flag(flag);
        for r in exec.run_guarded(&requests, &tripped) {
            let g = r.expect("cancellation is not an error");
            assert!(g.is_complete(), "cache hits bypass the tripped budget");
            assert_eq!(g.ids, want);
        }
        assert_eq!(
            cache.stats().stores,
            stores_before,
            "budgeted misses must never fill the cache"
        );
        // Same tripped budget without a warm entry: plain truncation.
        let cold = ResultCache::default();
        let cold_exec = BatchExecutor::with_threads(&idx, 2).with_cache(&cold);
        let flag2 = Arc::new(AtomicBool::new(true));
        let tripped2 = QueryBudget::unlimited().with_cancel_flag(flag2);
        for r in cold_exec.run_guarded(&requests, &tripped2) {
            let g = r.expect("cancellation is not an error");
            assert!(!g.is_complete(), "cold cache + tripped budget truncates");
        }
        assert!(cold.is_empty(), "truncated answers must not be stored");
    }

    #[test]
    fn per_request_budgets_apply_independently() {
        use crate::query::{QueryBudget, TruncateReason};
        let (idx, requests) = batch_fixture(3, 400);
        // Alternate unlimited and zero-cost budgets across the batch: even
        // slots must come back complete and bit-identical to sequential
        // topk, odd slots must truncate with CostExceeded — regardless of
        // which worker thread and micro-chunk a slot lands in.
        let each: Vec<(Weights, usize, QueryBudget)> = requests
            .iter()
            .enumerate()
            .map(|(i, (w, k))| {
                let b = if i % 2 == 0 {
                    QueryBudget::unlimited()
                } else {
                    QueryBudget::unlimited().with_max_cost(0)
                };
                (w.clone(), *k, b)
            })
            .collect();
        for threads in [1usize, 2, 8] {
            let out = BatchExecutor::with_threads(&idx, threads).run_guarded_each(&each);
            assert_eq!(out.len(), each.len());
            for (i, r) in out.iter().enumerate() {
                let g = r.as_ref().expect("no faults injected");
                if i % 2 == 0 {
                    assert!(g.is_complete(), "threads={threads} request {i}");
                    let want = idx.topk(&requests[i].0, requests[i].1);
                    assert_eq!(g.ids, want.ids, "threads={threads} request {i}");
                    assert_eq!(g.cost, want.cost, "threads={threads} request {i}");
                } else {
                    assert_eq!(
                        g.truncated,
                        Some(TruncateReason::CostExceeded),
                        "threads={threads} request {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_request_budgets_with_cache_serve_hits_complete() {
        use crate::cache::ResultCache;
        use crate::query::QueryBudget;
        let (idx, _) = batch_fixture(3, 300);
        let w = Weights::uniform(3);
        let want = idx.topk(&w, 5).ids;
        let cache = ResultCache::default();
        let exec = BatchExecutor::with_threads(&idx, 2).with_cache(&cache);
        // Warm the cache with an unlimited request, then hammer it with
        // zero-cost budgets: every hit must come back complete.
        let warm = vec![(w.clone(), 5, QueryBudget::unlimited())];
        exec.run_guarded_each(&warm)[0].as_ref().expect("warm");
        let stores_before = cache.stats().stores;
        let tight: Vec<(Weights, usize, QueryBudget)> = (0..16)
            .map(|_| (w.clone(), 5, QueryBudget::unlimited().with_max_cost(0)))
            .collect();
        for r in exec.run_guarded_each(&tight) {
            let g = r.expect("no faults");
            assert!(g.is_complete(), "cache hits bypass the tight budget");
            assert_eq!(g.ids, want);
        }
        assert_eq!(
            cache.stats().stores,
            stores_before,
            "budgeted requests must never fill the cache"
        );
    }

    #[test]
    fn empty_batch_and_effective_threads() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 50, 2).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let exec = BatchExecutor::with_threads(&idx, 4);
        assert!(exec.run(&[]).is_empty());
        // Never more than requested, never oversubscribed past the host.
        let cores = std::thread::available_parallelism().map_or(4, |p| p.get());
        assert_eq!(exec.effective_threads(100), 4.min(cores));
        // Batches smaller than one minimum chunk run on a single worker —
        // the small-batch overhead fix.
        assert_eq!(exec.effective_threads(2), 1);
        assert_eq!(exec.effective_threads(MIN_REQUESTS_PER_WORKER - 1), 1);
        assert!(exec.effective_threads(2 * MIN_REQUESTS_PER_WORKER) <= 2);
        assert!(BatchExecutor::new(&idx).effective_threads(100) >= 1);
    }
}
