//! Plain-data snapshots of a built index, for persistence.
//!
//! A [`IndexSnapshot`] captures every field of a [`DualLayerIndex`] as
//! flat vectors so a storage layer can serialize it without rebuilding
//! (index construction is the expensive part — Table IV). Round-tripping
//! through a snapshot reproduces the index exactly, including query costs.

use crate::index::{CoarseLayer, DualLayerIndex, NodeId};
use crate::options::DlOptions;
use crate::zero::Zero2d;
use drtopk_common::{Error, Relation, TupleId};

/// Flat, public representation of a built index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSnapshot {
    /// Attribute dimensionality.
    pub dims: usize,
    /// Row-major relation payload.
    pub data: Vec<f64>,
    /// Fine sublayers, flattened: `(coarse, fine, members)` in order.
    pub fine_layers: Vec<(u32, u32, Vec<TupleId>)>,
    /// ∀ edges as (source, target) pairs.
    pub forall_edges: Vec<(NodeId, NodeId)>,
    /// ∃ edges as (source, target) pairs.
    pub exists_edges: Vec<(NodeId, NodeId)>,
    /// Pseudo-tuple payload (row-major).
    pub pseudo: Vec<f64>,
    /// Pseudo-tuple fine grouping: one member list per pseudo sublayer.
    pub pseudo_fine: Vec<Vec<u32>>,
    /// 2-d zero layer chain, if present.
    pub zero2d_chain: Option<Vec<TupleId>>,
    /// Weight-range breakpoints of the 2-d zero layer (empty without one).
    pub zero2d_breakpoints: Vec<f64>,
    /// Build option recorded for provenance: whether fine splitting was on.
    pub split_fine: bool,
    /// Build option recorded for provenance: the fine sublayer cap.
    pub max_fine_layers: usize,
    /// Traversal-order node permutation (`perm[original] = internal`).
    /// Purely derived from the layer structure; persisted so loaders can
    /// cross-check the layout and older snapshots (empty vector) still
    /// load — the permutation is then recomputed.
    pub node_perm: Vec<NodeId>,
}

impl IndexSnapshot {
    /// Number of real (non-pseudo) tuples captured in the snapshot.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// Whether the snapshot holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks that this snapshot can serve queries under `opts` (and, when
    /// given, over `expected_dims`-dimensional weight vectors).
    ///
    /// Snapshots record the build options that shape the stored structure
    /// (`split_fine`, `max_fine_layers`); loading one under different
    /// options would silently answer queries with the *persisted* layout
    /// while the caller believes the *requested* one is in effect. This
    /// turns that mismatch into a clear [`Error::Invalid`] at load time.
    pub fn check_compatible(
        &self,
        opts: &DlOptions,
        expected_dims: Option<usize>,
    ) -> Result<(), Error> {
        if let Some(d) = expected_dims {
            if self.dims != d {
                return Err(Error::Invalid(format!(
                    "snapshot is {}-dimensional but {d} dimensions were requested",
                    self.dims
                )));
            }
        }
        if self.split_fine != opts.split_fine {
            return Err(Error::Invalid(format!(
                "snapshot was built with split_fine={} but split_fine={} was requested; \
                 rebuild the index or load with matching options",
                self.split_fine, opts.split_fine
            )));
        }
        if self.split_fine && self.max_fine_layers != opts.max_fine_layers {
            return Err(Error::Invalid(format!(
                "snapshot was built with max_fine_layers={} but {} was requested; \
                 rebuild the index or load with matching options",
                self.max_fine_layers, opts.max_fine_layers
            )));
        }
        Ok(())
    }
}

impl DualLayerIndex {
    /// Extracts a snapshot of this index.
    pub fn to_snapshot(&self) -> IndexSnapshot {
        let n = self.len();
        let total = n + self.stats().pseudo_tuples;
        let mut fine_layers = Vec::new();
        for (ci, layer) in self.coarse_layers().iter().enumerate() {
            for (fi, f) in layer.fine.iter().enumerate() {
                fine_layers.push((ci as u32, fi as u32, f.clone()));
            }
        }
        // Edges are stored in public (original-id) space, canonically
        // sorted by (source, target) — a representation independent of the
        // in-memory traversal ordering.
        let mut forall_edges = Vec::new();
        let mut exists_edges = Vec::new();
        for s in 0..total as NodeId {
            for t in self.forall_out(s) {
                forall_edges.push((s, t));
            }
            for t in self.exists_out(s) {
                exists_edges.push((s, t));
            }
        }
        forall_edges.sort_unstable();
        exists_edges.sort_unstable();
        IndexSnapshot {
            dims: self.dims(),
            data: self.relation().flat().to_vec(),
            fine_layers,
            forall_edges,
            exists_edges,
            pseudo: self.pseudo.clone(),
            pseudo_fine: self.pseudo_fine.clone(),
            zero2d_chain: self.zero2d().map(|z| z.chain.clone()),
            zero2d_breakpoints: self
                .zero2d()
                .map(|z| z.breakpoints.clone())
                .unwrap_or_default(),
            split_fine: self.options().split_fine,
            max_fine_layers: self.options().max_fine_layers,
            node_perm: self.node_permutation().to_vec(),
        }
    }

    /// Reconstructs an index from a snapshot.
    ///
    /// Validates structural consistency (layer partition, edge endpoints in
    /// range) and returns an error on malformed input; edge *semantics*
    /// (that each edge reflects a true dominance relationship) can be
    /// checked separately with [`crate::verify`].
    pub fn from_snapshot(snap: &IndexSnapshot) -> Result<DualLayerIndex, Error> {
        if snap.dims == 0 {
            return Err(Error::InvalidDimension(0));
        }
        if !snap.data.len().is_multiple_of(snap.dims)
            || !snap.pseudo.len().is_multiple_of(snap.dims)
        {
            return Err(Error::DimensionMismatch {
                expected: snap.dims,
                got: snap.data.len() % snap.dims,
            });
        }
        // Snapshots typically arrive from decoded files: validate values,
        // not just shape, so corrupt payloads can't smuggle out-of-range
        // coordinates past the traversal's invariants.
        let rel = Relation::from_flat(snap.dims, snap.data.clone())?;
        let n = rel.len();
        let pseudo_count = snap.pseudo.len() / snap.dims;
        let total = n + pseudo_count;

        // Rebuild the coarse/fine structure, checking the partition.
        let mut layers: Vec<CoarseLayer> = Vec::new();
        let mut covered = vec![false; n];
        for &(ci, fi, ref members) in &snap.fine_layers {
            if ci as usize >= layers.len() {
                if ci as usize != layers.len() {
                    return Err(Error::EmptyQuery("non-contiguous coarse layer ids".into()));
                }
                layers.push(CoarseLayer { fine: Vec::new() });
            }
            let layer = &mut layers[ci as usize];
            if fi as usize != layer.fine.len() {
                return Err(Error::EmptyQuery("non-contiguous fine layer ids".into()));
            }
            for &t in members {
                let Some(slot) = covered.get_mut(t as usize) else {
                    return Err(Error::EmptyQuery(format!("tuple id {t} out of range")));
                };
                if *slot {
                    return Err(Error::EmptyQuery(format!("tuple {t} in two layers")));
                }
                *slot = true;
            }
            layer.fine.push(members.clone());
        }
        if covered.iter().any(|&c| !c) {
            return Err(Error::EmptyQuery("layers do not cover the relation".into()));
        }

        let check_edges = |edges: &[(NodeId, NodeId)]| -> Result<(), Error> {
            for &(s, t) in edges {
                if s as usize >= total || t as usize >= total {
                    return Err(Error::EmptyQuery(format!("edge ({s},{t}) out of range")));
                }
            }
            Ok(())
        };
        check_edges(&snap.forall_edges)?;
        check_edges(&snap.exists_edges)?;
        for group in &snap.pseudo_fine {
            if group.iter().any(|&g| g as usize >= pseudo_count) {
                return Err(Error::EmptyQuery("pseudo_fine index out of range".into()));
            }
        }
        let zero2d = match &snap.zero2d_chain {
            Some(chain) => {
                if chain.iter().any(|&t| t as usize >= n) {
                    return Err(Error::EmptyQuery("zero-layer chain id out of range".into()));
                }
                if snap.zero2d_breakpoints.len() + 1 != chain.len() {
                    return Err(Error::EmptyQuery(
                        "breakpoint count must be |chain| - 1".into(),
                    ));
                }
                if snap.zero2d_breakpoints.windows(2).any(|w| w[0] < w[1])
                    || snap.zero2d_breakpoints.iter().any(|b| !b.is_finite())
                {
                    return Err(Error::EmptyQuery(
                        "zero-layer breakpoints must be finite and non-increasing".into(),
                    ));
                }
                Some(Zero2d {
                    chain: chain.clone(),
                    breakpoints: snap.zero2d_breakpoints.clone(),
                })
            }
            None => None,
        };

        let opts = DlOptions {
            split_fine: snap.split_fine,
            max_fine_layers: snap.max_fine_layers,
            ..DlOptions::default()
        };
        // The shared assembly path recomputes the traversal ordering, the
        // edge arena, seeds, and stats exactly as a fresh build would.
        let idx = crate::assemble::assemble(
            &rel,
            opts,
            layers,
            &snap.forall_edges,
            &snap.exists_edges,
            snap.pseudo.clone(),
            pseudo_count,
            snap.pseudo_fine.clone(),
            zero2d,
        );
        // Cross-check a stored permutation (empty = pre-layout snapshot,
        // nothing to check): a mismatch means the snapshot's structure and
        // its recorded layout disagree, i.e. corruption.
        if !snap.node_perm.is_empty() && snap.node_perm != *idx.node_permutation() {
            return Err(Error::Invalid(
                "stored node permutation does not match the snapshot's layer structure".into(),
            ));
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{Distribution, Weights, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_results_and_costs() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in [2, 3] {
            let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, 300, 77).generate();
            for opts in [DlOptions::dl(), DlOptions::dl_plus(), DlOptions::dg_plus()] {
                let idx = DualLayerIndex::build(&rel, opts);
                let snap = idx.to_snapshot();
                let back = DualLayerIndex::from_snapshot(&snap).expect("valid snapshot");
                assert_eq!(back.stats(), idx.stats());
                for k in [1, 10, 40] {
                    let w = Weights::random(d, &mut rng);
                    let a = idx.topk(&w, k);
                    let b = back.topk(&w, k);
                    assert_eq!(a.ids, b.ids);
                    assert_eq!(a.cost, b.cost, "costs must survive the roundtrip");
                }
            }
        }
    }

    #[test]
    fn compatibility_check_catches_option_mismatches() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 60, 11).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let snap = idx.to_snapshot();

        assert!(snap.check_compatible(&DlOptions::dl_plus(), None).is_ok());
        assert!(snap
            .check_compatible(&DlOptions::dl_plus(), Some(3))
            .is_ok());
        assert!(matches!(
            snap.check_compatible(&DlOptions::dl_plus(), Some(4)),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            snap.check_compatible(&DlOptions::dg_plus(), None),
            Err(Error::Invalid(_))
        ));
        let capped = DlOptions {
            max_fine_layers: 2,
            ..DlOptions::dl_plus()
        };
        assert!(matches!(
            snap.check_compatible(&capped, None),
            Err(Error::Invalid(_))
        ));

        // DG snapshots ignore the fine-layer cap: it only shapes structure
        // when splitting is on.
        let dg = DualLayerIndex::build(&rel, DlOptions::dg()).to_snapshot();
        let dg_capped = DlOptions {
            max_fine_layers: 7,
            ..DlOptions::dg()
        };
        assert!(dg.check_compatible(&dg_capped, None).is_ok());
        assert_eq!(snap.len(), 60);
        assert!(!snap.is_empty());
    }

    #[test]
    fn rejects_corrupted_snapshots() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 50, 1).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let snap = idx.to_snapshot();

        let mut missing = snap.clone();
        missing.fine_layers.pop();
        assert!(
            DualLayerIndex::from_snapshot(&missing).is_err(),
            "uncovered tuples"
        );

        let mut bad_edge = snap.clone();
        bad_edge.forall_edges.push((9999, 0));
        assert!(
            DualLayerIndex::from_snapshot(&bad_edge).is_err(),
            "edge out of range"
        );

        let mut dup = snap.clone();
        let members = dup.fine_layers[0].2.clone();
        dup.fine_layers
            .push((dup.fine_layers.last().unwrap().0 + 1, 0, members));
        assert!(
            DualLayerIndex::from_snapshot(&dup).is_err(),
            "duplicated tuples"
        );

        let mut bad_zero = snap.clone();
        if bad_zero.zero2d_chain.is_some() {
            bad_zero.zero2d_breakpoints.push(0.5);
            assert!(
                DualLayerIndex::from_snapshot(&bad_zero).is_err(),
                "breakpoint arity"
            );
        }
    }
}
