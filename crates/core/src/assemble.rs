//! Shared final assembly of a [`DualLayerIndex`] from public-space parts.
//!
//! Both construction paths ([`DualLayerIndex::build`] and the retained
//! sequential reference) and snapshot loading produce the same public-space
//! intermediate — layers, edge lists, pseudo-tuples, zero layer — and hand
//! it here. Assembly computes the traversal-order renumbering, packs the
//! [`EdgeArena`](crate::index::EdgeArena), builds the reverse CSRs, seeds,
//! chain tables, internal-order scoring columns, and stats. Because every
//! producer funnels through this one function, the optimized and reference
//! builds are byte-identical *by construction* at the assembly stage.

use crate::index::{CoarseLayer, Csr, DualLayerIndex, EdgeArena, IndexStats, NodeId};
use crate::options::DlOptions;
use crate::zero::Zero2d;
use drtopk_common::{Columns, Relation};

/// Computes the traversal-order permutation over `n + p` nodes:
///
/// * real nodes `0..n` ordered by (coarse layer, fine sublayer, attribute
///   sum ascending, tuple id ascending);
/// * pseudo nodes `n..n+p` ordered by (pseudo fine sublayer, min-corner
///   sum ascending, local index ascending).
///
/// Returns `(perm, orig)` with `perm[orig_id] = internal_id` and
/// `orig[internal_id] = orig_id`. Real nodes keep the `0..n` block and
/// pseudo nodes the `n..n+p` block, so `is_real` holds in both spaces.
pub(crate) fn traversal_order(
    rel: &Relation,
    layers: &[CoarseLayer],
    pseudo: &[f64],
    pseudo_count: usize,
    pseudo_fine: &[Vec<u32>],
) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = rel.len();
    let d = rel.dims();
    let total = n + pseudo_count;
    let mut orig: Vec<NodeId> = Vec::with_capacity(total);
    let mut assigned = vec![false; total];
    let mut bucket: Vec<(f64, NodeId)> = Vec::new();
    for layer in layers {
        for fine in &layer.fine {
            bucket.clear();
            bucket.extend(
                fine.iter()
                    .map(|&t| (rel.tuple(t).iter().sum::<f64>(), t as NodeId)),
            );
            bucket.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            for &(_, t) in &bucket {
                assigned[t as usize] = true;
                orig.push(t);
            }
        }
    }
    // Defensive: cover stragglers (a valid build/snapshot partitions the
    // relation, so this is a no-op there).
    for t in 0..n as NodeId {
        if !assigned[t as usize] {
            orig.push(t);
        }
    }
    for group in pseudo_fine {
        bucket.clear();
        bucket.extend(group.iter().map(|&local| {
            let sum: f64 = pseudo[local as usize * d..(local as usize + 1) * d]
                .iter()
                .sum();
            (sum, local)
        }));
        bucket.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, local) in &bucket {
            assigned[n + local as usize] = true;
            orig.push(n as NodeId + local);
        }
    }
    for local in 0..pseudo_count {
        if !assigned[n + local] {
            orig.push((n + local) as NodeId);
        }
    }
    debug_assert_eq!(orig.len(), total);
    let mut perm = vec![0 as NodeId; total];
    for (internal, &o) in orig.iter().enumerate() {
        perm[o as usize] = internal as NodeId;
    }
    (perm, orig)
}

/// Final assembly: renumber, pack adjacency, derive seeds/stats/columns.
///
/// `forall_edges`/`exists_edges` are in public (original-id) space, exactly
/// as the build phases emit them; `zero2d`'s chain likewise. The produced
/// index depends only on the *sets* of edges and the layer structure, not
/// on edge-list order, because the arena sorts every segment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    rel: &Relation,
    opts: DlOptions,
    layers: Vec<CoarseLayer>,
    forall_edges: &[(NodeId, NodeId)],
    exists_edges: &[(NodeId, NodeId)],
    pseudo: Vec<f64>,
    pseudo_count: usize,
    pseudo_fine: Vec<Vec<u32>>,
    zero2d: Option<Zero2d>,
) -> DualLayerIndex {
    let n = rel.len();
    let d = rel.dims();
    let total = n + pseudo_count;
    let (node_perm, node_orig) = traversal_order(rel, &layers, &pseudo, pseudo_count, &pseudo_fine);

    // Translate edges into internal space and pack the shared arena.
    let map = |e: &[(NodeId, NodeId)]| -> Vec<(NodeId, NodeId)> {
        e.iter()
            .map(|&(s, t)| (node_perm[s as usize], node_perm[t as usize]))
            .collect()
    };
    let internal_forall = map(forall_edges);
    let internal_exists = map(exists_edges);
    let (arena, forall_indeg, exists_indeg) =
        EdgeArena::build(total, &internal_forall, &internal_exists);

    // Reverse CSRs (internal space) for O(degree) in-neighbor queries.
    let mut rev_f: Vec<(NodeId, NodeId)> = internal_forall.iter().map(|&(s, t)| (t, s)).collect();
    let mut rev_e: Vec<(NodeId, NodeId)> = internal_exists.iter().map(|&(s, t)| (t, s)).collect();
    let (rev_forall, _) = Csr::from_edges(total, &mut rev_f);
    let (rev_exists, _) = Csr::from_edges(total, &mut rev_e);

    // Chain tables (2-d exact zero layer): position ↔ internal id.
    let (chain_internal, chain_pos_of) = match &zero2d {
        Some(z) => {
            let ci: Vec<NodeId> = z.chain.iter().map(|&t| node_perm[t as usize]).collect();
            let mut pos_of = vec![u32::MAX; total];
            for (pos, &i) in ci.iter().enumerate() {
                pos_of[i as usize] = pos as u32;
            }
            (ci, pos_of)
        }
        None => (Vec::new(), Vec::new()),
    };

    // Seeds: nodes free at query start, internal ids ascending. Chain
    // members are excluded in 2-d exact mode (seeded per query by
    // weight-range lookup).
    let mut seeds: Vec<NodeId> = Vec::new();
    for i in 0..total as NodeId {
        let chained = chain_pos_of.get(i as usize).is_some_and(|&p| p != u32::MAX);
        if forall_indeg[i as usize] == 0 && exists_indeg[i as usize] == 0 && !chained {
            seeds.push(i);
        }
    }

    let stats = IndexStats {
        n,
        dims: d,
        coarse_layers: layers.len(),
        fine_layers: layers.iter().map(|l| l.fine.len()).sum(),
        forall_edges: forall_edges.len(),
        exists_edges: exists_edges.len(),
        pseudo_tuples: pseudo_count,
        seeds: seeds.len(),
        first_layer_size: layers.first().map_or(0, |l| l.len()),
        first_fine_size: layers
            .first()
            .and_then(|l| l.fine.first())
            .map_or(0, |f| f.len()),
    };

    // Scoring columns in internal order: row i = coords of internal node i.
    let mut rows = vec![0.0f64; total * d];
    for (internal, &o) in node_orig.iter().enumerate() {
        let coords = if (o as usize) < n {
            rel.tuple(o)
        } else {
            let p = o as usize - n;
            &pseudo[p * d..(p + 1) * d]
        };
        rows[internal * d..(internal + 1) * d].copy_from_slice(coords);
    }
    let columns = Columns::from_flat_rows(d, &rows);

    DualLayerIndex {
        rel: rel.clone(),
        opts,
        layers,
        arena,
        forall_indeg,
        exists_indeg,
        rev_forall,
        rev_exists,
        node_perm,
        node_orig,
        pseudo,
        pseudo_count,
        pseudo_fine,
        zero2d,
        chain_internal,
        chain_pos_of,
        seeds,
        columns,
        stats,
    }
}
