//! Top-k query processing (Algorithm 2).
//!
//! A best-first traversal over the index graph: a score-ordered priority
//! queue holds *free* nodes (∀-dominance-free and ∃-dominance-free,
//! Theorem 3); popping a node relaxes its out-edges, possibly freeing —
//! and scoring — further nodes. The paper's cost metric (Definition 9) is
//! exactly the number of scoring calls, tracked in [`TopkResult::cost`].

use crate::index::{DualLayerIndex, NodeId};
use drtopk_common::{Cost, TupleId, Weights};
use drtopk_obs::{QueryCounters, QuerySpan};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-query execution limits, checked cooperatively at pop granularity.
///
/// A budget bounds what one query may consume on a serving path: a
/// wall-clock **deadline**, a **cost cap** on tuples evaluated (the
/// paper's Definition 9 metric, so the cap is workload-meaningful), and a
/// shared **cancellation flag** an operator or batch coordinator can trip
/// from another thread. All three are optional; [`QueryBudget::unlimited`]
/// never trips.
///
/// Enforcement is cooperative: the traversal checks the budget once per
/// queue pop, so a tripped budget stops within one edge-relaxation of the
/// violation (the cost cap can overshoot by at most one pop's fan-out).
/// When a budget trips, the query returns its best-so-far answer prefix —
/// pops happen in ascending score order, so the prefix is exactly the true
/// top-m for some m ≤ k — with a [`GuardedTopk::truncated`] marker naming
/// the tripped limit.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    deadline: Option<Instant>,
    max_cost: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
}

/// The traversal checks the wall clock only every this many pops: a pop
/// costs tens of nanoseconds and `Instant::now` is comparable, so a
/// per-pop clock read would dominate the loop it guards.
const DEADLINE_CHECK_PERIOD: u64 = 16;

impl QueryBudget {
    /// A budget that never trips (equivalent to `Default`).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Trips once the wall clock reaches `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Trips `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Trips once more than `max_cost` tuples (real + pseudo, Definition
    /// 9) have been evaluated.
    pub fn with_max_cost(mut self, max_cost: u64) -> Self {
        self.max_cost = Some(max_cost);
        self
    }

    /// Trips as soon as `flag` reads `true`. The flag is shared: one flag
    /// can cancel a whole batch cooperatively.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Whether no limit is configured (the no-op fast path).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_cost.is_none() && self.cancel.is_none()
    }

    /// The configured wall-clock deadline, if any. A router carving
    /// per-shard budgets reads this to tighten — never loosen — the
    /// request's own deadline for each sub-probe.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The configured Definition-9 cost cap, if any.
    pub fn max_cost(&self) -> Option<u64> {
        self.max_cost
    }

    /// The shared cancellation flag, if any. Cloning the `Arc` lets a
    /// derived (carved) budget trip together with its parent request.
    pub fn cancel_flag(&self) -> Option<Arc<AtomicBool>> {
        self.cancel.clone()
    }

    /// Checks every configured limit; `pops` is the number of pops
    /// completed so far (used to pace the clock reads).
    fn tripped(&self, cost: &Cost, pops: u64) -> Option<TruncateReason> {
        if let Some(flag) = &self.cancel {
            if flag.load(AtomicOrdering::Relaxed) {
                return Some(TruncateReason::Cancelled);
            }
        }
        if let Some(cap) = self.max_cost {
            if cost.total() > cap {
                return Some(TruncateReason::CostExceeded);
            }
        }
        if let Some(deadline) = self.deadline {
            if pops.is_multiple_of(DEADLINE_CHECK_PERIOD) && Instant::now() >= deadline {
                return Some(TruncateReason::Deadline);
            }
        }
        None
    }
}

/// Why a guarded query stopped before producing `k` answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncateReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The Definition-9 cost cap was exceeded.
    CostExceeded,
    /// The shared cancellation flag was tripped.
    Cancelled,
}

impl std::fmt::Display for TruncateReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruncateReason::Deadline => write!(f, "deadline exceeded"),
            TruncateReason::CostExceeded => write!(f, "cost cap exceeded"),
            TruncateReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Result of one budget-guarded top-k query (the partial-result contract).
///
/// `ids` is always a correct prefix of the exact answer: when `truncated`
/// is `None` it is the full top-k; when a budget tripped it is the true
/// top-m for the m answers found before the trip, in the same order a
/// completed query would return them.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedTopk {
    /// Answer prefix, ascending by `(score, id)`.
    pub ids: Vec<TupleId>,
    /// Tuples scored before the query stopped (Definition 9).
    pub cost: Cost,
    /// `None` when the query completed; otherwise the tripped limit.
    pub truncated: Option<TruncateReason>,
}

impl GuardedTopk {
    /// Whether the full top-k was produced.
    pub fn is_complete(&self) -> bool {
        self.truncated.is_none()
    }
}

/// Result of one top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkResult {
    /// Answer tuple ids, ascending by `(score, id)`.
    pub ids: Vec<TupleId>,
    /// Tuples (and pseudo-tuples) scored while answering (Definition 9).
    pub cost: Cost,
}

/// One step of a traced query: the popped node and the queue/answer state
/// after its edges were relaxed. Used to pin the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The node removed from the queue this step.
    pub popped: NodeId,
    /// Queue contents after the step, in pop order.
    pub queue_after: Vec<NodeId>,
    /// Accumulated answer list after the step.
    pub answers_after: Vec<TupleId>,
}

/// Full trace of a query run.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Nodes seeded into the queue before the first pop.
    pub seeds: Vec<NodeId>,
    /// One entry per pop, in traversal order.
    pub steps: Vec<TraceStep>,
}

/// Min-first heap entry: score ascending, pseudo-tuples before real tuples
/// on ties (a pseudo min-corner can tie its sole cluster member and must
/// pop first), then *original* node id ascending — matching the paper's id
/// tie-break. The traversal runs over internal (traversal-ordered) ids, but
/// the tie-break uses `orig` so the pop sequence is independent of the
/// internal renumbering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Entry {
    pub(crate) score: f64,
    pub(crate) real: bool,
    /// Internal (traversal-ordered) node id — indexes scratch and adjacency.
    pub(crate) node: NodeId,
    /// Original public node id — answer value and deterministic tie-break.
    pub(crate) orig: NodeId,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum first.
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores are finite")
            .then_with(|| other.real.cmp(&self.real))
            .then_with(|| other.orig.cmp(&self.orig))
    }
}

/// Reusable per-query working memory. One scratch serves any number of
/// sequential queries against the index it was created for; reusing it
/// avoids the O(n) allocations a fresh [`DualLayerIndex::topk`] call makes.
///
/// Per-node state (`remaining`, `eblocked`, `enqueued`, `chain_wait`) is
/// *epoch-versioned*: each node carries a stamp, and state is lazily
/// re-initialized from the index the first time a query touches the node.
/// [`QueryScratch::reset`] therefore costs O(1) — it bumps the epoch — and
/// a query's setup cost is O(nodes touched), not O(n).
#[derive(Debug, Clone)]
pub struct QueryScratch {
    /// Current query epoch; `stamp[i] == epoch` means node `i`'s per-node
    /// state is valid for this query.
    epoch: u32,
    stamp: Vec<u32>,
    remaining: Vec<u32>,
    eblocked: Vec<bool>,
    enqueued: Vec<bool>,
    chain_wait: Vec<bool>,
    heap: BinaryHeap<Entry>,
    /// Nodes freed since the last flush, awaiting batch scoring.
    freed: Vec<NodeId>,
    /// Kernel output buffer, parallel to `freed` during a flush.
    scores: Vec<f64>,
    /// Distinct nodes touched (lazily initialized) this query.
    touched: u64,
    /// Plain-integer observability counters, flushed to the global
    /// [`drtopk_obs`] registry once per query (zero-sized when the `obs`
    /// feature is off).
    counters: QueryCounters,
}

impl QueryScratch {
    /// Allocates scratch sized for `idx`: every per-node vector is sized
    /// to the full node count up front, so no query ever reallocates.
    pub fn for_index(idx: &DualLayerIndex) -> Self {
        let total = idx.total_nodes();
        QueryScratch {
            epoch: 0,
            stamp: vec![0; total],
            remaining: vec![0; total],
            eblocked: vec![false; total],
            enqueued: vec![false; total],
            chain_wait: vec![false; total],
            heap: BinaryHeap::with_capacity(total),
            freed: Vec::with_capacity(total),
            scores: Vec::with_capacity(total),
            touched: 0,
            counters: QueryCounters::new(),
        }
    }

    /// Prepares the scratch for a fresh query against `idx` in O(1):
    /// clears the (already-drained) heap and buffers and advances the
    /// epoch, invalidating every node's stamped state at once. Public so
    /// benchmarks can time the reset separately from the traversal; every
    /// query entry point calls it implicitly.
    pub fn reset(&mut self, idx: &DualLayerIndex) {
        let total = idx.total_nodes();
        if self.stamp.len() != total {
            // Scratch built for a different index size: rebind.
            *self = QueryScratch::for_index(idx);
        }
        self.heap.clear();
        self.freed.clear();
        self.counters.clear();
        self.touched = 0;
        if self.epoch == u32::MAX {
            // Epoch wraparound (once per 2^32 queries): hard-clear stamps.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Lazily initializes node `i`'s per-query state on first touch.
    #[inline]
    fn touch(&mut self, idx: &DualLayerIndex, i: usize) {
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.remaining[i] = idx.forall_indeg[i];
            self.eblocked[i] = idx.exists_indeg[i] > 0;
            self.enqueued[i] = false;
            self.chain_wait[i] = idx.chain_pos_of.get(i).is_some_and(|&p| p != u32::MAX);
            self.touched += 1;
        }
    }

    /// Marks a node as freed (deduplicated, cost-ticked); it is scored and
    /// pushed by the next [`QueryScratch::flush_freed`].
    fn mark_freed(&mut self, idx: &DualLayerIndex, node: NodeId, cost: &mut Cost) {
        self.touch(idx, node as usize);
        if self.enqueued[node as usize] {
            return;
        }
        self.enqueued[node as usize] = true;
        if idx.is_real(node) {
            cost.tick();
        } else {
            cost.tick_pseudo();
        }
        self.freed.push(node);
    }

    /// Scores all marked nodes in one columnar kernel call and pushes them
    /// onto the queue. The kernel's scores are bit-identical to
    /// [`Weights::score`], so heap ordering is unchanged versus per-node
    /// scoring.
    fn flush_freed(&mut self, idx: &DualLayerIndex, w: &Weights) {
        if self.freed.is_empty() {
            return;
        }
        self.counters.heap_pushed(self.freed.len() as u64);
        self.counters.kernel_block(self.freed.len() as u64);
        idx.columns.score_block(w, &self.freed, &mut self.scores);
        for i in 0..self.freed.len() {
            let node = self.freed[i];
            self.heap.push(Entry {
                score: self.scores[i],
                real: idx.is_real(node),
                node,
                orig: idx.node_orig[node as usize],
            });
        }
        self.freed.clear();
    }

    /// Records the touched-node count and flushes the per-query counter
    /// block to the global registry.
    fn flush_counters(&mut self) {
        self.counters.scratch_touched(self.touched);
        self.counters.flush();
    }
}

/// When a traversal stops.
enum StopRule {
    /// After `k` real answers.
    Count(usize),
    /// Once the next pop's score exceeds the bound (threshold query).
    Bound(f64),
}

impl DualLayerIndex {
    /// Answers a top-k query (Definition 1): the `k` tuples with the
    /// smallest scores under `w`, ties broken by tuple id.
    ///
    /// # Examples
    ///
    /// ```
    /// use drtopk_common::{Distribution, Weights, WorkloadSpec};
    /// use drtopk_core::{DlOptions, DualLayerIndex};
    ///
    /// let rel = WorkloadSpec::new(Distribution::Independent, 3, 500, 7).generate();
    /// let idx = DualLayerIndex::build(&rel, DlOptions::default());
    /// let res = idx.topk(&Weights::uniform(3), 10);
    /// assert_eq!(res.ids.len(), 10);
    /// // Selective access: far fewer tuples scored than the relation holds.
    /// assert!(res.cost.total() < 500);
    /// ```
    ///
    /// # Panics
    /// Panics if `w`'s dimensionality differs from the index's.
    pub fn topk(&self, w: &Weights, k: usize) -> TopkResult {
        let mut scratch = QueryScratch::for_index(self);
        self.run(w, StopRule::Count(k), &mut scratch, None)
    }

    /// Like [`DualLayerIndex::topk`], reusing caller-provided scratch to
    /// avoid per-query allocation (for query-per-microsecond workloads).
    pub fn topk_with_scratch(
        &self,
        w: &Weights,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> TopkResult {
        self.run(w, StopRule::Count(k), scratch, None)
    }

    /// Threshold query: every tuple with score ≤ `bound`, ascending. Uses
    /// the same selective traversal; cost is proportional to the answer
    /// size, not the relation size.
    ///
    /// # Panics
    /// Panics if `w`'s dimensionality differs from the index's, or if
    /// `bound` is NaN.
    pub fn range_by_score(&self, w: &Weights, bound: f64) -> TopkResult {
        assert!(!bound.is_nan(), "score bound must not be NaN");
        let mut scratch = QueryScratch::for_index(self);
        self.run(w, StopRule::Bound(bound), &mut scratch, None)
    }

    /// Like [`DualLayerIndex::topk`], also recording a full traversal trace.
    pub fn topk_traced(&self, w: &Weights, k: usize) -> (TopkResult, QueryTrace) {
        let mut trace = QueryTrace::default();
        let mut scratch = QueryScratch::for_index(self);
        let result = self.run(w, StopRule::Count(k), &mut scratch, Some(&mut trace));
        (result, trace)
    }

    /// Lazily streams answers in score order: a *progressive* top-k that
    /// lets callers stop whenever enough results arrived, paying only for
    /// what was consumed.
    pub fn topk_iter(&self, w: &Weights) -> TopkCursor<'_> {
        TopkCursor::new(self, w)
    }

    /// Filtered top-k: the k best tuples *satisfying `pred`*, streamed in
    /// score order until enough matches are found. Because the traversal
    /// enumerates globally by score, cost tracks the number of tuples
    /// inspected, not the relation size — efficient for selective
    /// predicates whose matches score well.
    pub fn topk_where<P: FnMut(TupleId, &[f64]) -> bool>(
        &self,
        w: &Weights,
        k: usize,
        mut pred: P,
    ) -> TopkResult {
        let k_eff = k.min(self.len());
        let mut cursor = TopkCursor::new(self, w);
        let mut ids = Vec::with_capacity(k_eff);
        while ids.len() < k_eff {
            let Some((t, _)) = cursor.next() else { break };
            if pred(t, self.rel.tuple(t)) {
                ids.push(t);
            }
        }
        TopkResult {
            ids,
            cost: cursor.cost(),
        }
    }

    /// Resets scratch, applies the 2-d chain gating for `w`, and seeds the
    /// queue with every initially-free node.
    ///
    /// Chain members *wait* by default (their lazy-initialized state says
    /// so), so seeding only has to touch the one weight-range seed — the
    /// per-query chain setup is O(1), not O(|chain|).
    fn seed_queue(&self, w: &Weights, scratch: &mut QueryScratch, cost: &mut Cost) {
        assert_eq!(w.dims(), self.dims(), "weight dimensionality mismatch");
        scratch.reset(self);
        let mut chain_seed = None;
        if let Some(z) = &self.zero2d {
            let seed = self.chain_internal[z.select(w)];
            scratch.touch(self, seed as usize);
            scratch.chain_wait[seed as usize] = false;
            chain_seed = Some(seed);
        }
        for &s in &self.seeds {
            scratch.mark_freed(self, s, cost);
        }
        if let Some(seed) = chain_seed {
            scratch.mark_freed(self, seed, cost);
        }
        scratch.flush_freed(self, w);
    }

    /// Frees the chain member at `pos` if it was only chain-gated.
    fn free_chain_neighbor(&self, scratch: &mut QueryScratch, pos: usize, cost: &mut Cost) {
        let nb = self.chain_internal[pos];
        scratch.touch(self, nb as usize);
        if scratch.chain_wait[nb as usize] {
            scratch.chain_wait[nb as usize] = false;
            if scratch.remaining[nb as usize] == 0 && !scratch.eblocked[nb as usize] {
                scratch.mark_freed(self, nb, cost);
            }
        }
    }

    /// Pops the minimum-key free node and relaxes its out-edges, possibly
    /// scoring and enqueueing newly free nodes. `None` when the queue is
    /// exhausted.
    fn pop_relax(&self, w: &Weights, scratch: &mut QueryScratch, cost: &mut Cost) -> Option<Entry> {
        let entry = scratch.heap.pop()?;
        let node = entry.node;
        // Relaxation only *marks* newly free nodes; they are scored in one
        // kernel call and pushed at the end of the pop. The heap order is
        // total and `enqueued` dedups at mark time, so deferring the pushes
        // to the pop boundary leaves the pop sequence (and therefore ids
        // and cost) identical to immediate insertion.
        let (fo, eo) = self.arena.both(node);
        // Relax ∀ out-edges: a target needs *all* dominators popped.
        scratch.counters.forall_relaxed(fo.len() as u64);
        for &t in fo {
            scratch.touch(self, t as usize);
            scratch.remaining[t as usize] -= 1;
            if scratch.remaining[t as usize] == 0
                && !scratch.eblocked[t as usize]
                && !scratch.chain_wait[t as usize]
            {
                scratch.mark_freed(self, t, cost);
            }
        }
        // Relax ∃ out-edges: a target needs *any* EDS member popped.
        scratch.counters.exists_relaxed(eo.len() as u64);
        for &t in eo {
            scratch.touch(self, t as usize);
            if scratch.eblocked[t as usize] {
                scratch.eblocked[t as usize] = false;
                if scratch.remaining[t as usize] == 0 && !scratch.chain_wait[t as usize] {
                    scratch.mark_freed(self, t, cost);
                }
            }
        }
        // Chain expansion (2-d zero layer): free adjacent chain nodes.
        if !self.chain_pos_of.is_empty() {
            let pos = self.chain_pos_of[node as usize];
            if pos != u32::MAX {
                let pos = pos as usize;
                if pos > 0 {
                    self.free_chain_neighbor(scratch, pos - 1, cost);
                }
                if pos + 1 < self.chain_internal.len() {
                    self.free_chain_neighbor(scratch, pos + 1, cost);
                }
            }
        }
        scratch.flush_freed(self, w);
        Some(entry)
    }

    /// Answers a budget-guarded top-k query: the full answer when no limit
    /// trips, otherwise the best-so-far prefix with a truncation marker
    /// (see [`GuardedTopk`] for the partial-result contract).
    pub fn topk_guarded(&self, w: &Weights, k: usize, budget: &QueryBudget) -> GuardedTopk {
        let mut scratch = QueryScratch::for_index(self);
        self.topk_guarded_with_scratch(w, k, budget, &mut scratch)
    }

    /// Like [`DualLayerIndex::topk_guarded`], reusing caller-provided
    /// scratch (the batch executor's per-worker pool).
    pub fn topk_guarded_with_scratch(
        &self,
        w: &Weights,
        k: usize,
        budget: &QueryBudget,
        scratch: &mut QueryScratch,
    ) -> GuardedTopk {
        let budget = if budget.is_unlimited() {
            None
        } else {
            Some(budget)
        };
        let (TopkResult { ids, cost }, truncated) =
            self.run_impl(w, StopRule::Count(k), scratch, None, budget);
        GuardedTopk {
            ids,
            cost,
            truncated,
        }
    }

    fn run(
        &self,
        w: &Weights,
        stop: StopRule,
        scratch: &mut QueryScratch,
        trace: Option<&mut QueryTrace>,
    ) -> TopkResult {
        self.run_impl(w, stop, scratch, trace, None).0
    }

    fn run_impl(
        &self,
        w: &Weights,
        stop: StopRule,
        scratch: &mut QueryScratch,
        mut trace: Option<&mut QueryTrace>,
        budget: Option<&QueryBudget>,
    ) -> (TopkResult, Option<TruncateReason>) {
        let n = self.len();
        let k_eff = match stop {
            StopRule::Count(k) => k.min(n),
            StopRule::Bound(_) => n,
        };
        let mut cost = Cost::new();
        let mut ids = Vec::new();
        let mut truncated = None;
        if k_eff == 0 {
            assert_eq!(w.dims(), self.dims(), "weight dimensionality mismatch");
            return (TopkResult { ids, cost }, truncated);
        }
        let span = QuerySpan::start();
        self.seed_queue(w, scratch, &mut cost);
        if let Some(t) = trace.as_deref_mut() {
            let mut s: Vec<NodeId> = scratch.heap.iter().map(|e| e.orig).collect();
            s.sort_unstable();
            t.seeds = s;
        }

        let mut pops: u64 = 0;
        while ids.len() < k_eff {
            if let Some(b) = budget {
                if let Some(reason) = b.tripped(&cost, pops) {
                    truncated = Some(reason);
                    break;
                }
            }
            pops += 1;
            if let (StopRule::Bound(b), Some(top)) = (&stop, scratch.heap.peek()) {
                if top.score > *b {
                    break;
                }
            }
            let Some(entry) = self.pop_relax(w, scratch, &mut cost) else {
                // A Count query can only exhaust the queue on a broken
                // invariant; a Bound query exhausts it whenever the bound
                // covers the whole relation.
                debug_assert!(
                    matches!(stop, StopRule::Bound(_)),
                    "queue exhausted before k answers — broken invariant"
                );
                break;
            };
            if entry.real {
                ids.push(entry.orig as TupleId);
            }
            if let Some(t) = trace.as_deref_mut() {
                let mut q: Vec<Entry> = scratch.heap.iter().copied().collect();
                q.sort_by(|a, b| b.cmp(a)); // Entry::cmp is reversed; re-reverse for pop order
                t.steps.push(TraceStep {
                    popped: entry.orig,
                    queue_after: q.into_iter().map(|e| e.orig).collect(),
                    answers_after: ids.clone(),
                });
            }
        }
        scratch.flush_counters();
        span.finish(cost.evaluated, cost.pseudo_evaluated);
        (TopkResult { ids, cost }, truncated)
    }
}

/// A lazily-evaluated top-k traversal: yields `(tuple id, score)` pairs in
/// ascending score order, scoring tuples only as the consumer advances.
///
/// ```
/// # use drtopk_common::{Distribution, Weights, WorkloadSpec};
/// # use drtopk_core::{DlOptions, DualLayerIndex};
/// let rel = WorkloadSpec::new(Distribution::Independent, 3, 200, 1).generate();
/// let idx = DualLayerIndex::build(&rel, DlOptions::default());
/// let w = Weights::uniform(3);
/// // Take answers until a score threshold is crossed, without fixing k.
/// let cheap: Vec<_> = idx.topk_iter(&w).take_while(|&(_, s)| s < 0.2).collect();
/// # let _ = cheap;
/// ```
pub struct TopkCursor<'a> {
    idx: &'a DualLayerIndex,
    w: Weights,
    scratch: QueryScratch,
    cost: Cost,
    /// `Some` until the drop flush; the span covers the cursor's lifetime.
    span: Option<QuerySpan>,
}

impl<'a> TopkCursor<'a> {
    /// Starts a progressive traversal (seeds the queue).
    pub fn new(idx: &'a DualLayerIndex, w: &Weights) -> Self {
        let span = Some(QuerySpan::start());
        let mut scratch = QueryScratch::for_index(idx);
        let mut cost = Cost::new();
        idx.seed_queue(w, &mut scratch, &mut cost);
        TopkCursor {
            idx,
            w: w.clone(),
            scratch,
            cost,
            span,
        }
    }

    /// Tuples scored so far (Definition 9, monotone in consumption).
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// The score of the next answer, without consuming it. Pseudo-tuples
    /// at the queue head are drained first.
    pub fn peek_score(&mut self) -> Option<f64> {
        loop {
            match self.scratch.heap.peek() {
                Some(e) if e.real => return Some(e.score),
                Some(_) => {
                    self.idx
                        .pop_relax(&self.w, &mut self.scratch, &mut self.cost);
                }
                None => return None,
            }
        }
    }
}

impl Drop for TopkCursor<'_> {
    fn drop(&mut self) {
        self.scratch.flush_counters();
        if let Some(span) = self.span.take() {
            span.finish(self.cost.evaluated, self.cost.pseudo_evaluated);
        }
    }
}

impl Iterator for TopkCursor<'_> {
    type Item = (TupleId, f64);

    fn next(&mut self) -> Option<(TupleId, f64)> {
        loop {
            let entry = self
                .idx
                .pop_relax(&self.w, &mut self.scratch, &mut self.cost)?;
            if entry.real {
                return Some((entry.orig as TupleId, entry.score));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{DlOptions, ZeroMode};
    use drtopk_common::relation::{toy_dataset, toy_id};
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn entry_ordering() {
        // `orig` is the tie-break key; `node` is deliberately scrambled to
        // check the internal id plays no part in the ordering.
        let a = Entry {
            score: 0.5,
            real: true,
            node: 30,
            orig: 1,
        };
        let b = Entry {
            score: 0.4,
            real: true,
            node: 0,
            orig: 9,
        };
        let c = Entry {
            score: 0.5,
            real: false,
            node: 99,
            orig: 7,
        };
        let d = Entry {
            score: 0.5,
            real: true,
            node: 50,
            orig: 0,
        };
        let mut h = BinaryHeap::from(vec![a, b, c, d]);
        // Min score first; tie: pseudo before real; tie: lower orig first.
        assert_eq!(h.pop().unwrap().orig, 9);
        assert_eq!(h.pop().unwrap().orig, 7);
        assert_eq!(h.pop().unwrap().orig, 0);
        assert_eq!(h.pop().unwrap().orig, 1);
    }

    #[test]
    fn toy_top3_trace_matches_table_iii() {
        // k = 3, w = (0.5, 0.5) over the toy dataset, plain DL (Table III
        // describes processing without the zero layer).
        let r = toy_dataset();
        let idx = DualLayerIndex::build(&r, DlOptions::dl());
        let (res, trace) = idx.topk_traced(&Weights::uniform(2), 3);
        let id = |c: char| toy_id(c);
        assert_eq!(
            res.ids,
            vec![id('a'), id('b'), id('f')],
            "top-3 = {{a, b, f}}"
        );
        // Step 2: Q = {a, b, c} seeded from L11.
        assert_eq!(trace.seeds, vec![id('a'), id('b'), id('c')]);
        // Steps 3-4: pop a; Q = {b, f, d, e, c} in pop order.
        assert_eq!(trace.steps[0].popped, id('a'));
        assert_eq!(
            trace.steps[0].queue_after,
            vec![id('b'), id('f'), id('d'), id('e'), id('c')]
        );
        // Steps 5-6: pop b; Q = {f, d, e, c, g}.
        assert_eq!(trace.steps[1].popped, id('b'));
        assert_eq!(
            trace.steps[1].queue_after,
            vec![id('f'), id('d'), id('e'), id('c'), id('g')]
        );
        // Step 7: pop f.
        assert_eq!(trace.steps[2].popped, id('f'));
        assert_eq!(
            trace.steps[2].answers_after,
            vec![id('a'), id('b'), id('f')]
        );
        // Cost: exactly {a,b,c} + {d,e,f} + {g} = 7 tuples evaluated.
        assert_eq!(res.cost.total(), 7);
    }

    #[test]
    fn matches_bruteforce_all_variants() {
        let mut rng = StdRng::seed_from_u64(2024);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in 2..=4 {
                let rel = WorkloadSpec::new(dist, d, 300, 42).generate();
                for opts in [
                    DlOptions::dl(),
                    DlOptions::dl_plus(),
                    DlOptions::dg(),
                    DlOptions::dg_plus(),
                ] {
                    let idx = DualLayerIndex::build(&rel, opts.clone());
                    for k in [1, 7, 40] {
                        let w = Weights::random(d, &mut rng);
                        let got = idx.topk(&w, k);
                        let want = topk_bruteforce(&rel, &w, k);
                        assert_eq!(got.ids, want, "{dist:?} d={d} k={k} opts={opts:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_5_dl_cost_never_exceeds_dg() {
        let mut rng = StdRng::seed_from_u64(7);
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            let rel = WorkloadSpec::new(dist, 3, 500, 9).generate();
            let dl = DualLayerIndex::build(&rel, DlOptions::dl());
            let dg = DualLayerIndex::build(&rel, DlOptions::dg());
            for k in [1, 10, 50] {
                for _ in 0..5 {
                    let w = Weights::random(3, &mut rng);
                    let c_dl = dl.topk(&w, k).cost.total();
                    let c_dg = dg.topk(&w, k).cost.total();
                    assert!(
                        c_dl <= c_dg,
                        "Theorem 5 violated: DL={c_dl} > DG={c_dg} ({dist:?}, k={k})"
                    );
                }
            }
        }
    }

    #[test]
    fn k_edge_cases() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 50, 3).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::default());
        let w = Weights::uniform(3);
        assert!(idx.topk(&w, 0).ids.is_empty());
        let all = idx.topk(&w, 500);
        assert_eq!(
            all.ids,
            topk_bruteforce(&rel, &w, 50),
            "k > n returns everything in order"
        );
    }

    #[test]
    fn zero2d_reduces_first_layer_access() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 2, 2000, 5).generate();
        let dl = DualLayerIndex::build(&rel, DlOptions::dl());
        let dlp = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        assert!(dlp.zero2d().is_some());
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum_dl = 0;
        let mut sum_dlp = 0;
        for _ in 0..20 {
            let w = Weights::random(2, &mut rng);
            let a = dl.topk(&w, 10);
            let b = dlp.topk(&w, 10);
            assert_eq!(a.ids, b.ids);
            sum_dl += a.cost.total();
            sum_dlp += b.cost.total();
        }
        assert!(
            sum_dlp < sum_dl,
            "2-d zero layer must cut access cost ({sum_dlp} vs {sum_dl})"
        );
    }

    #[test]
    fn single_tuple_relation() {
        let rel = drtopk_common::Relation::from_rows(2, &[vec![0.3, 0.7]]).unwrap();
        let idx = DualLayerIndex::build(&rel, DlOptions::default());
        let res = idx.topk(&Weights::uniform(2), 1);
        assert_eq!(res.ids, vec![0]);
    }

    #[test]
    fn clustered_zero_in_2d_when_forced() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 400, 8).generate();
        let idx = DualLayerIndex::build(
            &rel,
            DlOptions {
                zero: ZeroMode::Clustered { clusters: 4 },
                ..DlOptions::default()
            },
        );
        assert!(idx.zero2d().is_none());
        assert!(idx.stats().pseudo_tuples >= 1);
        let w = Weights::uniform(2);
        assert_eq!(idx.topk(&w, 10).ids, topk_bruteforce(&rel, &w, 10));
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 400, 4).generate();
        for opts in [DlOptions::dl(), DlOptions::dl_plus()] {
            let idx = DualLayerIndex::build(&rel, opts);
            let mut scratch = QueryScratch::for_index(&idx);
            let mut rng = StdRng::seed_from_u64(8);
            for k in [1, 5, 30] {
                for _ in 0..5 {
                    let w = Weights::random(3, &mut rng);
                    let fresh = idx.topk(&w, k);
                    let reused = idx.topk_with_scratch(&w, k, &mut scratch);
                    assert_eq!(fresh.ids, reused.ids);
                    assert_eq!(fresh.cost, reused.cost);
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_2d_zero_layer_queries() {
        // The chain seed is per-query; reusing scratch must not leak chain
        // state between different weight vectors.
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 2, 500, 6).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        assert!(idx.zero2d().is_some());
        let mut scratch = QueryScratch::for_index(&idx);
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..20 {
            let w = Weights::random(2, &mut rng);
            assert_eq!(
                idx.topk_with_scratch(&w, 10, &mut scratch).ids,
                topk_bruteforce(&rel, &w, 10)
            );
        }
    }

    #[test]
    fn range_by_score_matches_filter_oracle() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 300, 12).generate();
        let mut rng = StdRng::seed_from_u64(5);
        for opts in [DlOptions::dl(), DlOptions::dl_plus(), DlOptions::dg()] {
            let idx = DualLayerIndex::build(&rel, opts);
            for _ in 0..5 {
                let w = Weights::random(3, &mut rng);
                // Pick a bound that captures roughly the 25th tuple.
                let bound = {
                    let t25 = topk_bruteforce(&rel, &w, 25)[24];
                    w.score(rel.tuple(t25))
                };
                let got = idx.range_by_score(&w, bound);
                let want: Vec<_> = {
                    let mut all = topk_bruteforce(&rel, &w, rel.len());
                    all.retain(|&t| w.score(rel.tuple(t)) <= bound);
                    all
                };
                assert_eq!(got.ids, want);
            }
        }
    }

    #[test]
    fn progressive_cursor_matches_topk() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 400, 21).generate();
        let mut rng = StdRng::seed_from_u64(66);
        for opts in [DlOptions::dl(), DlOptions::dl_plus(), DlOptions::dg_plus()] {
            let idx = DualLayerIndex::build(&rel, opts);
            for _ in 0..5 {
                let w = Weights::random(3, &mut rng);
                let want = idx.topk(&w, 25);
                let mut cursor = idx.topk_iter(&w);
                let got: Vec<TupleId> = cursor.by_ref().take(25).map(|(t, _)| t).collect();
                assert_eq!(got, want.ids);
                // Consuming exactly k answers costs exactly what topk(k) costs.
                assert_eq!(cursor.cost(), want.cost);
            }
        }
    }

    #[test]
    fn progressive_cursor_streams_everything_in_order() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 150, 9).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let w = Weights::new(vec![0.7, 0.3]).unwrap();
        let all: Vec<(TupleId, f64)> = idx.topk_iter(&w).collect();
        assert_eq!(all.len(), 150);
        assert!(all.windows(2).all(|p| p[0].1 <= p[1].1 + 1e-12));
        let ids: Vec<TupleId> = all.iter().map(|&(t, _)| t).collect();
        assert_eq!(ids, topk_bruteforce(&rel, &w, 150));
    }

    #[test]
    fn cursor_peek_does_not_consume() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 100, 2).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let w = Weights::uniform(3);
        let mut cursor = idx.topk_iter(&w);
        let peeked = cursor.peek_score().unwrap();
        let (first, score) = cursor.next().unwrap();
        assert_eq!(peeked, score);
        assert_eq!(first, topk_bruteforce(&rel, &w, 1)[0]);
    }

    /// End-to-end wiring: one topk call must land in the global registry.
    /// Deltas are `>=` because sibling tests run queries concurrently.
    #[test]
    #[cfg(feature = "obs")]
    fn metrics_registry_observes_queries() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 2, 300, 17).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let w = Weights::uniform(2);
        let before = drtopk_obs::metrics().snapshot();
        let res = idx.topk(&w, 10);
        let after = drtopk_obs::metrics().snapshot();
        assert!(after.queries > before.queries);
        assert!(after.tuples_evaluated >= before.tuples_evaluated + res.cost.evaluated);
        // Every answer was once a heap push; the 2-d zero layer probed.
        assert!(after.heap_pushes >= before.heap_pushes + res.ids.len() as u64);
        assert!(after.zero_probes > before.zero_probes);
        assert!(after.query_cost.count() > before.query_cost.count());
        assert!(after.query_latency_ns.count() > before.query_latency_ns.count());
        // The epoch scratch reports how many nodes the query lazily
        // initialized, and the scoring kernel its block sizes.
        assert!(after.scratch_touched.count() > before.scratch_touched.count());
        assert!(after.kernel_block_tuples.count() > before.kernel_block_tuples.count());
        assert!(
            after.kernel_block_tuples.mean() >= 1.0,
            "blocks hold at least one tuple"
        );
    }

    #[test]
    fn range_by_score_edge_bounds() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 100, 3).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let w = Weights::uniform(2);
        assert!(
            idx.range_by_score(&w, -1.0).ids.is_empty(),
            "negative bound returns nothing"
        );
        let all = idx.range_by_score(&w, 2.0);
        assert_eq!(all.ids.len(), 100, "bound above max returns everything");
        assert_eq!(all.ids, topk_bruteforce(&rel, &w, 100));
    }
}

#[cfg(test)]
mod where_tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec};

    #[test]
    fn filtered_topk_matches_filtered_oracle() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 400, 13).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let w = Weights::new(vec![0.5, 0.25, 0.25]).unwrap();
        // Predicate: first attribute under 0.3 ("price cap").
        let got = idx.topk_where(&w, 10, |_, t| t[0] < 0.3);
        let want: Vec<TupleId> = topk_bruteforce(&rel, &w, rel.len())
            .into_iter()
            .filter(|&t| rel.tuple(t)[0] < 0.3)
            .take(10)
            .collect();
        assert_eq!(got.ids, want);
        assert!(got.cost.evaluated <= rel.len() as u64);
    }

    #[test]
    fn unsatisfiable_predicate_scans_to_exhaustion() {
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 60, 2).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl());
        let w = Weights::uniform(2);
        let got = idx.topk_where(&w, 5, |_, _| false);
        assert!(got.ids.is_empty());
        assert_eq!(got.cost.evaluated, 60, "must prove no match exists");
    }

    #[test]
    fn trivial_predicate_equals_plain_topk() {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 300, 4).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let w = Weights::uniform(3);
        assert_eq!(
            idx.topk_where(&w, 15, |_, _| true).ids,
            idx.topk(&w, 15).ids
        );
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{Distribution, WorkloadSpec};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn fixture() -> (drtopk_common::Relation, DualLayerIndex) {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, 3, 500, 19).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        (rel, idx)
    }

    #[test]
    fn unlimited_budget_matches_plain_topk() {
        let (_, idx) = fixture();
        let w = Weights::uniform(3);
        let plain = idx.topk(&w, 25);
        let guarded = idx.topk_guarded(&w, 25, &QueryBudget::unlimited());
        assert!(guarded.is_complete());
        assert_eq!(guarded.ids, plain.ids);
        assert_eq!(guarded.cost, plain.cost);
    }

    #[test]
    fn cost_cap_returns_exact_prefix() {
        let (_, idx) = fixture();
        let w = Weights::new(vec![0.6, 0.2, 0.2]).unwrap();
        let full = idx.topk(&w, 50);
        assert!(full.cost.total() > 10, "fixture must be non-trivial");
        let budget = QueryBudget::unlimited().with_max_cost(full.cost.total() / 2);
        let guarded = idx.topk_guarded(&w, 50, &budget);
        assert_eq!(guarded.truncated, Some(TruncateReason::CostExceeded));
        assert!(guarded.ids.len() < full.ids.len());
        // The partial-result contract: a true prefix of the exact answer.
        assert_eq!(guarded.ids, full.ids[..guarded.ids.len()]);
        // Pop-granularity enforcement can overshoot by at most one pop's
        // relaxation fan-out, never by a full traversal.
        assert!(guarded.cost.total() < full.cost.total());
    }

    #[test]
    fn expired_deadline_truncates_immediately() {
        let (_, idx) = fixture();
        let w = Weights::uniform(3);
        let budget =
            QueryBudget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let guarded = idx.topk_guarded(&w, 20, &budget);
        assert_eq!(guarded.truncated, Some(TruncateReason::Deadline));
        assert!(
            guarded.ids.is_empty(),
            "deadline already passed before the first pop"
        );
        let generous = QueryBudget::unlimited().with_timeout(Duration::from_secs(60));
        let ok = idx.topk_guarded(&w, 20, &generous);
        assert!(ok.is_complete());
        assert_eq!(ok.ids, idx.topk(&w, 20).ids);
    }

    #[test]
    fn pre_tripped_cancel_flag_stops_the_query() {
        let (_, idx) = fixture();
        let w = Weights::uniform(3);
        let flag = Arc::new(AtomicBool::new(true));
        let budget = QueryBudget::unlimited().with_cancel_flag(flag.clone());
        let guarded = idx.topk_guarded(&w, 20, &budget);
        assert_eq!(guarded.truncated, Some(TruncateReason::Cancelled));
        assert!(guarded.ids.is_empty());
        // Untripped flag: the same budget completes normally.
        flag.store(false, AtomicOrdering::SeqCst);
        assert!(idx.topk_guarded(&w, 20, &budget).is_complete());
    }

    #[test]
    fn guarded_scratch_reuse_is_clean_after_truncation() {
        // A truncated query abandons mid-traversal state in the scratch;
        // the next query must reset it completely.
        let (rel, idx) = fixture();
        let mut scratch = QueryScratch::for_index(&idx);
        let w = Weights::uniform(3);
        let tight = QueryBudget::unlimited().with_max_cost(3);
        let t = idx.topk_guarded_with_scratch(&w, 40, &tight, &mut scratch);
        assert!(!t.is_complete());
        let full = idx.topk_guarded_with_scratch(&w, 40, &QueryBudget::unlimited(), &mut scratch);
        assert!(full.is_complete());
        assert_eq!(full.ids, drtopk_common::topk_bruteforce(&rel, &w, 40));
    }

    #[test]
    fn zero_k_is_always_complete() {
        let (_, idx) = fixture();
        let w = Weights::uniform(3);
        let g = idx.topk_guarded(&w, 0, &QueryBudget::unlimited().with_max_cost(0));
        assert!(g.is_complete());
        assert!(g.ids.is_empty());
    }
}
