//! Per-phase construction profiling.
//!
//! A [`BuildProfile`] records, for every phase of
//! [`DualLayerIndex::build_with_profile`], the wall-clock seconds spent
//! and the number of dominance tests performed — the `Cost`-style counter
//! that makes pruning effectiveness observable independently of machine
//! speed. A "dominance test" is one unit of pairwise work: a `dominates`
//! call, a staircase probe in the incremental skyline peel, or an
//! `facet_is_eds` evaluation in the ∃-edge phase. Work avoided by sorting
//! and min/max prefix pruning simply never shows up in the counters,
//! which is exactly the point.
//!
//! [`DualLayerIndex::build_with_profile`]: crate::DualLayerIndex::build_with_profile

/// Seconds and dominance tests for one construction phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseProfile {
    /// Wall-clock seconds spent in the phase.
    pub seconds: f64,
    /// Dominance tests performed (0 for phases that do none, e.g. the
    /// convex fine split, whose work is geometric rather than pairwise).
    pub dominance_tests: u64,
}

/// Full construction profile, one entry per build phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildProfile {
    /// Phase 1 — coarse skyline-layer peeling.
    pub coarse_peel: PhaseProfile,
    /// Phase 2 — convex fine-sublayer splitting (no dominance tests).
    pub fine_split: PhaseProfile,
    /// Phase 3 — ∀-dominance edges between adjacent coarse layers.
    pub forall_edges: PhaseProfile,
    /// Phase 4 — ∃-dominance edges between adjacent fine sublayers
    /// (tests are `facet_is_eds` evaluations).
    pub exists_edges: PhaseProfile,
    /// Phase 5 — zero layer (clustering plus its own peel/edge work).
    pub zero_layer: PhaseProfile,
    /// CSR assembly and seed computation.
    pub assemble_seconds: f64,
    /// End-to-end build seconds.
    pub total_seconds: f64,
}

impl BuildProfile {
    /// Total dominance tests across every phase.
    pub fn dominance_tests(&self) -> u64 {
        self.coarse_peel.dominance_tests
            + self.fine_split.dominance_tests
            + self.forall_edges.dominance_tests
            + self.exists_edges.dominance_tests
            + self.zero_layer.dominance_tests
    }
}

impl std::fmt::Display for BuildProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "phase          seconds   dominance tests")?;
        for (name, p) in [
            ("coarse peel", &self.coarse_peel),
            ("fine split", &self.fine_split),
            ("forall edges", &self.forall_edges),
            ("exists edges", &self.exists_edges),
            ("zero layer", &self.zero_layer),
        ] {
            writeln!(
                f,
                "{name:<14} {:>8.3}   {:>15}",
                p.seconds, p.dominance_tests
            )?;
        }
        writeln!(f, "{:<14} {:>8.3}", "assemble", self.assemble_seconds)?;
        write!(
            f,
            "{:<14} {:>8.3}   {:>15}",
            "total",
            self.total_seconds,
            self.dominance_tests()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let p = BuildProfile {
            coarse_peel: PhaseProfile {
                seconds: 0.5,
                dominance_tests: 100,
            },
            forall_edges: PhaseProfile {
                seconds: 0.25,
                dominance_tests: 40,
            },
            total_seconds: 0.9,
            ..Default::default()
        };
        assert_eq!(p.dominance_tests(), 140);
        let s = p.to_string();
        assert!(s.contains("coarse peel"));
        assert!(s.contains("total"));
        assert!(s.contains("140"));
    }
}
