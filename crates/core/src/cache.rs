//! Weight-space result caching: the cheapest query is the one never
//! traversed.
//!
//! Chester et al. (*Indexing Reverse Top-k Queries*) observe that the
//! weight simplex partitions into cells whose top-k answer is constant.
//! Real traffic repeats heavily in weight space, so a [`ResultCache`]
//! layered in front of `topk` converts repeated (or merely *nearby*)
//! weight vectors into O(k) — or zero — work:
//!
//! * **d = 2, exact zero layer present**: entries are keyed by the
//!   [`Zero2d`] facet-slope cell containing `w` (the reverse top-*1* cell
//!   the index already computes). At fill time the cache derives, in
//!   closed form, the exact `w₁` interval on which the cached answer
//!   *list* (set **and** order) provably stays the answer; a hit is an
//!   interval-containment check and returns the stored ids verbatim —
//!   zero traversal, zero rescoring, reported cost `0`.
//! * **d ≥ 3 (or 2-d without the exact zero layer)**: entries are keyed
//!   by a quantized weight direction and validated per hit with a
//!   certificate: the cached k tuples are rescored under the new `w`
//!   (reported cost `k`), and the hit is accepted only if the stored
//!   (k+1)-th score bound proves no outside tuple can displace the cached
//!   set (see [certificate rule](#certificate-rule) below).
//!
//! Misses and certificate rejections fall back to the real traversal with
//! a `k+1` fetch (the extra answer is the next entry's barrier), so
//! **answers are bit-identical to uncached `topk` by construction** —
//! hits are only served when provably equal, everything else is computed
//! by the index itself. Reported *costs* differ by documented semantics:
//! `0` on a 2-d cell hit, `k` on a certified hit, and the cost of the
//! `k+1`-fetch traversal on a miss.
//!
//! # Certificate rule
//!
//! Let `w₀` be the weights that populated an entry, `B` the score of the
//! (k+1)-th tuple under `w₀` (`+∞` when fewer than k+1 tuples exist), and
//! `neg = Σⱼ max(0, w₀ⱼ − wⱼ)`. Every tuple `t` outside the cached set
//! satisfies `s_t(w₀) ≥ B` and, since attributes live in `[0,1]`,
//! `s_t(w) ≥ s_t(w₀) − neg ≥ B − neg`. The hit is accepted iff
//! `max_i s_i(w) < B − neg − SLACK` over the rescored cached tuples: then
//! no outside tuple can score at or below any cached one, so the cached
//! set is exactly the top-k and the rescored `(score, id)` sort reproduces
//! the traversal's order. [`SLACK`] (1e-12) absorbs f64 evaluation noise
//! (≤ ~1e-14 here), keeping the accept decision sound against the actual
//! floating-point scores the traversal computes.
//!
//! The 2-d interval is the same argument solved analytically: order
//! constraints (adjacent cached scores are linear in `w₁`, so each pair
//! crossing bounds the interval) intersected with the barrier constraint
//! `s_i(w₁) < B − |w₁ − w₀₁| − SLACK` in closed form.
//!
//! # Invalidation contract
//!
//! Entries are stamped with the cache's generation counter;
//! [`ResultCache::invalidate_all`] bumps it in O(1) and stale entries are
//! treated as misses (and preferentially evicted). A cache attached to a
//! [`DynamicIndex`](crate::DynamicIndex) is bumped by every mutation —
//! insert, replayed insert, delete, compaction/rebuild — and by the
//! attachment itself, so recovery via `from_state` plus WAL replay can
//! never serve answers from a previous life of the index. One cache
//! serves exactly one logical index: attaching it elsewhere (or sharing
//! it between an index and its clone) would let entries from one index
//! answer queries on another.
//!
//! # Concurrency
//!
//! The table is a fixed array of `RwLock`-protected shards selected by
//! key hash: lookups take a read lock (read-mostly fast path — a batch of
//! workers hitting the same hot cells never serializes), stores take the
//! write lock of one shard, invalidation is a single atomic bump.

use crate::index::DualLayerIndex;
use crate::query::{QueryScratch, TopkResult};
use crate::zero::Zero2d;
use drtopk_common::{Cost, TupleId, Weights};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::RwLock;

/// Soundness margin subtracted from every certificate threshold. The
/// certificate compares quantities the traversal computes in f64; the
/// accumulated rounding of a d ≤ 8 dot product over `[0,1]` values is
/// below 1e-14, so a 1e-12 margin keeps "provably undisplaced" true for
/// the *floating-point* scores while rejecting only a measure-zero sliver
/// of weight space near answer boundaries.
pub const SLACK: f64 = 1e-12;

/// Sizing and keying knobs for a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Lock shards (rounded up to a power of two, min 1). More shards =
    /// less write contention under concurrent batch workers.
    pub shards: usize,
    /// Total entry budget across all shards; each shard evicts its oldest
    /// entry once it holds `capacity / shards`.
    pub capacity: usize,
    /// Entries retained per key (a hot cell can hold answers for several
    /// distinct weight vectors and several k values map to distinct keys).
    /// Must cover the number of *distinct* recurring weights a single hot
    /// cell serves — below that, round-robin repetition evicts every
    /// entry before its weight recurs and the hit rate collapses. Cell
    /// lookups scan these entries at O(1) each, so a generous cap costs
    /// little; certificate lookups pay O(k·d) per scanned entry, which
    /// `max_k` bounds.
    pub entries_per_key: usize,
    /// Quantization grid per weight coordinate for the d ≥ 3 key
    /// (clamped to `2..=4096`). Coarser grids put more weights in one
    /// bucket — more certificate attempts, more replacement churn.
    pub quant: u32,
    /// Queries with `min(k, n)` above this bypass the cache entirely
    /// (entries store k+1 rows of coordinates; unbounded k would make
    /// them arbitrarily large).
    pub max_k: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity: 4096,
            entries_per_key: 64,
            quant: 64,
            max_k: 128,
        }
    }
}

/// Monotone counters describing a cache's behaviour (per-instance; the
/// same events also feed the process-wide `drtopk_obs` registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (2-d cell hits + certified hits).
    pub hits: u64,
    /// Lookups that fell back to the traversal.
    pub misses: u64,
    /// Candidate entries whose certificate failed to prove the cached set
    /// undisplaced (each also surfaces as part of a miss).
    pub cert_rejects: u64,
    /// Generation bumps ([`ResultCache::invalidate_all`] calls).
    pub invalidations: u64,
    /// Entries written after a miss.
    pub stores: u64,
    /// Entries discarded to per-key or per-shard limits.
    pub evictions: u64,
}

/// How a [`ResultCache`] query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// 2-d facet-cell hit: stored ids returned verbatim (cost 0).
    Hit2d,
    /// Certificate-validated hit: cached tuples rescored under the new
    /// weights (cost k).
    HitCertified,
    /// No provably-valid entry; answered by the traversal (and stored).
    Miss,
    /// The cache did not apply (k = 0, k above `max_k`, empty index).
    Bypass,
}

/// Result of a cached top-k query against a static index.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedTopk {
    /// Answer tuple ids, ascending by `(score, id)` — bit-identical to
    /// the uncached [`DualLayerIndex::topk`] answer.
    pub ids: Vec<TupleId>,
    /// Reported cost: `0` on a 2-d cell hit, `k` rescores on a certified
    /// hit, the `k+1`-fetch traversal's cost on a miss, the plain
    /// traversal's cost on a bypass.
    pub cost: Cost,
    /// How the answer was produced.
    pub outcome: CacheOutcome,
}

impl CachedTopk {
    /// Whether the answer came from the cache.
    pub fn is_hit(&self) -> bool {
        matches!(
            self.outcome,
            CacheOutcome::Hit2d | CacheOutcome::HitCertified
        )
    }

    /// Drops the outcome, leaving the plain query result.
    pub fn into_result(self) -> TopkResult {
        TopkResult {
            ids: self.ids,
            cost: self.cost,
        }
    }
}

/// Cache key: the weight-space cell a query falls in, plus its k.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CacheKey {
    /// Exact 2-d facet-slope cell index from [`Zero2d::select`].
    Cell { cell: u32, k: u32 },
    /// Quantized weight direction (one `u16` per coordinate).
    Quant { dir: Box<[u16]>, k: u32 },
}

/// One cached answer: the ids in answer order, their attribute rows
/// (copied at fill time so validation never touches the relation), the
/// (k+1)-th score bound, and — for 2-d cell entries — the certified `w₁`
/// validity interval.
#[derive(Debug, Clone)]
struct Entry {
    generation: u64,
    stamp: u64,
    w0: Box<[f64]>,
    ids: Box<[u64]>,
    coords: Box<[f64]>,
    barrier: f64,
    /// Open `(lo, hi)` interval of `w₁` on which `ids` is provably the
    /// exact answer list; `None` for quantized-direction entries.
    interval: Option<(f64, f64)>,
}

/// Outcome of a raw lookup (ids are `u64` so the same machinery serves
/// static `TupleId`s and dynamic `Handle`s).
#[derive(Debug)]
pub(crate) enum CacheLookup {
    /// 2-d interval hit: the stored answer list, verbatim.
    Hit2d(Vec<u64>),
    /// Certified hit: ids re-sorted under the new weights, plus the
    /// number of rescoring evaluations performed.
    HitCertified(Vec<u64>, u64),
    /// No valid entry.
    Miss,
}

type Shard = HashMap<CacheKey, Vec<Entry>>;

/// A sharded, generation-stamped weight-space result cache. See the
/// [module docs](self) for the hit/certificate/invalidation contract.
///
/// ```
/// use drtopk_common::{Distribution, Weights, WorkloadSpec};
/// use drtopk_core::{CacheConfig, DlOptions, DualLayerIndex, ResultCache};
///
/// let rel = WorkloadSpec::new(Distribution::Independent, 2, 400, 7).generate();
/// let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
/// let cache = ResultCache::new(CacheConfig::default());
/// let w = Weights::new(vec![0.3, 0.7]).unwrap();
/// let miss = cache.topk(&idx, &w, 10);
/// let hit = cache.topk(&idx, &w, 10);
/// assert_eq!(miss.ids, idx.topk(&w, 10).ids);
/// assert_eq!(hit.ids, miss.ids);
/// assert!(hit.is_hit());
/// assert_eq!(hit.cost.total(), 0, "2-d cell hits score nothing");
/// ```
#[derive(Debug)]
pub struct ResultCache {
    cfg: CacheConfig,
    shards: Box<[RwLock<Shard>]>,
    generation: AtomicU64,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    cert_rejects: AtomicU64,
    invalidations: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl ResultCache {
    /// An empty cache with the given configuration.
    pub fn new(mut cfg: CacheConfig) -> Self {
        cfg.shards = cfg.shards.clamp(1, 1024).next_power_of_two();
        cfg.capacity = cfg.capacity.max(cfg.shards);
        cfg.entries_per_key = cfg.entries_per_key.max(1);
        cfg.quant = cfg.quant.clamp(2, 4096);
        let shards = (0..cfg.shards)
            .map(|_| RwLock::new(Shard::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ResultCache {
            cfg,
            shards,
            generation: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cert_rejects: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The active configuration (after clamping).
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The current generation stamp.
    pub fn generation(&self) -> u64 {
        self.generation.load(Relaxed)
    }

    /// Invalidates every entry in O(1) by bumping the generation; stale
    /// entries are treated as misses and preferentially evicted.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Relaxed);
        self.invalidations.fetch_add(1, Relaxed);
        drtopk_obs::metrics().cache_invalidate();
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().unwrap().clear();
        }
    }

    /// Live entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the per-instance counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            cert_rejects: self.cert_rejects.load(Relaxed),
            invalidations: self.invalidations.load(Relaxed),
            stores: self.stores.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
        }
    }

    /// Answers `topk(w, k)` through the cache with an internal scratch.
    pub fn topk(&self, idx: &DualLayerIndex, w: &Weights, k: usize) -> CachedTopk {
        let mut scratch = QueryScratch::for_index(idx);
        self.topk_with_scratch(idx, w, k, &mut scratch)
    }

    /// Answers `topk(w, k)` through the cache, reusing the caller's
    /// scratch for the fallback traversal. The returned ids are
    /// bit-identical to `idx.topk(w, k).ids`.
    pub fn topk_with_scratch(
        &self,
        idx: &DualLayerIndex,
        w: &Weights,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> CachedTopk {
        let n = idx.len();
        let k_eff = k.min(n);
        if k_eff == 0 || k_eff > self.cfg.max_k {
            let r = idx.topk_with_scratch(w, k, scratch);
            return CachedTopk {
                ids: r.ids,
                cost: r.cost,
                outcome: CacheOutcome::Bypass,
            };
        }
        let key = self.key_for_parts(idx.dims(), idx.zero2d(), w, k_eff as u32);
        let generation = self.generation();
        match self.lookup_raw(&key, w, idx.dims(), generation) {
            CacheLookup::Hit2d(ids) => CachedTopk {
                ids: ids.into_iter().map(|i| i as TupleId).collect(),
                cost: Cost::new(),
                outcome: CacheOutcome::Hit2d,
            },
            CacheLookup::HitCertified(ids, evals) => CachedTopk {
                ids: ids.into_iter().map(|i| i as TupleId).collect(),
                cost: Cost {
                    evaluated: evals,
                    pseudo_evaluated: 0,
                },
                outcome: CacheOutcome::HitCertified,
            },
            CacheLookup::Miss => {
                // Fetch one extra answer: it is the new entry's barrier.
                let fetch = (k_eff + 1).min(n);
                let r = idx.topk_with_scratch(w, fetch, scratch);
                let barrier = if r.ids.len() > k_eff {
                    w.score(idx.relation().tuple(r.ids[k_eff]))
                } else {
                    f64::INFINITY
                };
                let answer: Vec<TupleId> = r.ids[..k_eff].to_vec();
                let dims = idx.dims();
                let mut coords = Vec::with_capacity(k_eff * dims);
                for &t in &answer {
                    coords.extend_from_slice(idx.relation().tuple(t));
                }
                let ids: Vec<u64> = answer.iter().map(|&t| t as u64).collect();
                self.store_raw(key, generation, w.as_slice(), ids, coords, barrier);
                CachedTopk {
                    ids: answer,
                    cost: r.cost,
                    outcome: CacheOutcome::Miss,
                }
            }
        }
    }

    /// Hit-only probe: returns the answer if a provably-valid entry
    /// exists, without falling back or storing. Budget-guarded callers
    /// use this — a hit is always a *complete* answer that cost at most
    /// k evaluations, a miss proceeds under the budget unchanged.
    pub fn probe(&self, idx: &DualLayerIndex, w: &Weights, k: usize) -> Option<CachedTopk> {
        let n = idx.len();
        let k_eff = k.min(n);
        if k_eff == 0 || k_eff > self.cfg.max_k {
            return None;
        }
        let key = self.key_for_parts(idx.dims(), idx.zero2d(), w, k_eff as u32);
        match self.lookup_raw(&key, w, idx.dims(), self.generation()) {
            CacheLookup::Hit2d(ids) => Some(CachedTopk {
                ids: ids.into_iter().map(|i| i as TupleId).collect(),
                cost: Cost::new(),
                outcome: CacheOutcome::Hit2d,
            }),
            CacheLookup::HitCertified(ids, evals) => Some(CachedTopk {
                ids: ids.into_iter().map(|i| i as TupleId).collect(),
                cost: Cost {
                    evaluated: evals,
                    pseudo_evaluated: 0,
                },
                outcome: CacheOutcome::HitCertified,
            }),
            CacheLookup::Miss => None,
        }
    }

    /// The key for a query: the exact facet cell when the 2-d zero layer
    /// exists, the quantized direction otherwise.
    pub(crate) fn key_for_parts(
        &self,
        dims: usize,
        zero2d: Option<&Zero2d>,
        w: &Weights,
        k: u32,
    ) -> CacheKey {
        if dims == 2 {
            if let Some(z) = zero2d {
                return CacheKey::Cell {
                    cell: z.select(w) as u32,
                    k,
                };
            }
        }
        let q = f64::from(self.cfg.quant);
        let top = (self.cfg.quant - 1) as u16;
        let dir: Box<[u16]> = w
            .as_slice()
            .iter()
            .map(|&x| (((x * q) as u32).min(u32::from(top))) as u16)
            .collect();
        CacheKey::Quant { dir, k }
    }

    /// Looks `key` up and validates candidates against `w`; counts the
    /// outcome. Ids come back as raw `u64` (static `TupleId`s or dynamic
    /// `Handle`s, whatever the caller stored).
    pub(crate) fn lookup_raw(
        &self,
        key: &CacheKey,
        w: &Weights,
        dims: usize,
        generation: u64,
    ) -> CacheLookup {
        let m = drtopk_obs::metrics();
        let shard = self.shards[self.shard_of(key)].read().unwrap();
        let mut rejects = 0u64;
        let result = (|| {
            let entries = shard.get(key)?;
            // Oldest first: under a skewed workload the most popular
            // weights miss — and therefore store — earliest, so a forward
            // scan finds hot entries in the first few probes. Stale
            // entries are skipped by the generation check either way, and
            // every valid entry certifies the same answer, so scan order
            // never changes results, only hit latency.
            for e in entries.iter() {
                if e.generation != generation {
                    continue;
                }
                match e.interval {
                    Some((lo, hi)) => {
                        let w1 = w.as_slice()[0];
                        if lo < w1 && w1 < hi {
                            return Some(CacheLookup::Hit2d(e.ids.to_vec()));
                        }
                    }
                    None => match certify(e, w, dims) {
                        Some(ids) => {
                            let evals = e.ids.len() as u64;
                            return Some(CacheLookup::HitCertified(ids, evals));
                        }
                        None => rejects += 1,
                    },
                }
            }
            None
        })();
        drop(shard);
        if rejects > 0 {
            self.cert_rejects.fetch_add(rejects, Relaxed);
            m.cache_cert_reject(rejects);
        }
        match result {
            Some(hit) => {
                self.hits.fetch_add(1, Relaxed);
                m.cache_hit();
                hit
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                m.cache_miss();
                CacheLookup::Miss
            }
        }
    }

    /// Inserts a freshly-computed answer. `coords` is `ids.len()` rows in
    /// answer order; `barrier` is the (k+1)-th score under `w0` (`+∞`
    /// when the answer exhausts the data).
    pub(crate) fn store_raw(
        &self,
        key: CacheKey,
        generation: u64,
        w0: &[f64],
        ids: Vec<u64>,
        coords: Vec<f64>,
        barrier: f64,
    ) {
        let interval = match key {
            CacheKey::Cell { .. } => {
                let iv = interval_2d(w0[0], &coords, barrier);
                if iv.0 >= iv.1 {
                    // Degenerate (a tie exactly at w0): the entry could
                    // never hit, so don't spend a slot on it.
                    return;
                }
                Some(iv)
            }
            CacheKey::Quant { .. } => None,
        };
        let entry = Entry {
            generation,
            stamp: self.tick.fetch_add(1, Relaxed),
            w0: w0.into(),
            ids: ids.into_boxed_slice(),
            coords: coords.into_boxed_slice(),
            barrier,
            interval,
        };
        let per_shard_cap = (self.cfg.capacity / self.cfg.shards).max(1);
        let mut evicted = 0u64;
        let mut shard = self.shards[self.shard_of(&key)].write().unwrap();
        let shard_len: usize = shard.values().map(Vec::len).sum();
        if shard_len >= per_shard_cap {
            evicted += evict_oldest(&mut shard, generation);
        }
        let slot = shard.entry(key).or_default();
        if slot.len() >= self.cfg.entries_per_key {
            // Prefer dropping a stale entry, else the oldest.
            let victim = slot
                .iter()
                .position(|e| e.generation != generation)
                .or_else(|| {
                    slot.iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.stamp)
                        .map(|(i, _)| i)
                });
            if let Some(i) = victim {
                slot.remove(i);
                evicted += 1;
            }
        }
        slot.push(entry);
        drop(shard);
        self.stores.fetch_add(1, Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Relaxed);
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (self.cfg.shards - 1)
    }
}

/// Removes the oldest (stale-first) entry from a shard; returns how many
/// were dropped (0 only when the shard is empty).
fn evict_oldest(shard: &mut Shard, generation: u64) -> u64 {
    let victim = shard
        .iter()
        .flat_map(|(k, v)| v.iter().map(move |e| (k, e)))
        .min_by_key(|(_, e)| (e.generation == generation, e.stamp))
        .map(|(k, e)| (k.clone(), e.stamp));
    let Some((key, stamp)) = victim else {
        return 0;
    };
    let mut removed = 0;
    if let Some(v) = shard.get_mut(&key) {
        if let Some(i) = v.iter().position(|e| e.stamp == stamp) {
            v.remove(i);
            removed = 1;
        }
        if v.is_empty() {
            shard.remove(&key);
        }
    }
    removed
}

/// The d ≥ 3 certificate (module docs): rescores the cached tuples under
/// `w` and accepts iff every one scores strictly below the displaced
/// bound `B − neg − SLACK`. Returns the ids in the exact `(score, id)`
/// order the traversal would emit.
fn certify(e: &Entry, w: &Weights, dims: usize) -> Option<Vec<u64>> {
    let ws = w.as_slice();
    let mut neg = 0.0f64;
    for (w0j, wj) in e.w0.iter().zip(&ws[..dims]) {
        let d = w0j - wj;
        if d > 0.0 {
            neg += d;
        }
    }
    let bound = e.barrier - neg - SLACK;
    let mut scored: Vec<(f64, u64)> = Vec::with_capacity(e.ids.len());
    let mut max = f64::NEG_INFINITY;
    for (i, &id) in e.ids.iter().enumerate() {
        let s = w.score(&e.coords[i * dims..(i + 1) * dims]);
        if s > max {
            max = s;
        }
        scored.push((s, id));
    }
    // A NaN max must reject: only a proven `max < bound` accepts.
    if max.partial_cmp(&bound) != Some(std::cmp::Ordering::Less) {
        return None;
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    Some(scored.into_iter().map(|(_, id)| id).collect())
}

/// Closed-form 2-d validity interval: the open range of `w₁` on which the
/// answer list in `coords` (answer order, rows of `[x, y]`) provably
/// remains the exact `(score, id)`-ordered top-k.
///
/// With `w₂ = 1 − w₁`, every score is the line `s(w₁) = y + w₁·(x − y)`.
/// Two families of constraints bound the interval around `w₀₁`:
///
/// * **order**: adjacent answers must not swap — each non-parallel pair
///   contributes its crossing point (shrunk by `SLACK / |Δslope|` so the
///   float-evaluated separation stays above noise);
/// * **barrier**: every cached line must stay below
///   `B − |w₁ − w₀₁| − SLACK`, the bound no outside tuple can cross
///   (solved separately left and right of `w₀₁`; slopes of `[0,1]²`
///   tuples lie in `[−1, 1]`, so the degenerate `±1` slopes reduce to
///   `w₁`-independent checks).
///
/// Parallel cached lines never constrain: equal lines tie everywhere and
/// keep their id order; distinct parallel lines keep their score order.
fn interval_2d(w0_1: f64, coords: &[f64], barrier: f64) -> (f64, f64) {
    let k = coords.len() / 2;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for i in 0..k.saturating_sub(1) {
        let (ca, ma) = (coords[2 * i + 1], coords[2 * i] - coords[2 * i + 1]);
        let (cb, mb) = (coords[2 * i + 3], coords[2 * i + 2] - coords[2 * i + 3]);
        let dm = ma - mb;
        if dm == 0.0 {
            continue;
        }
        let x = (cb - ca) / dm;
        let margin = SLACK / dm.abs();
        if dm > 0.0 {
            hi = hi.min(x - margin);
        } else {
            lo = lo.max(x + margin);
        }
    }
    if barrier.is_finite() {
        for i in 0..k {
            let (c, m) = (coords[2 * i + 1], coords[2 * i] - coords[2 * i + 1]);
            let dr = m + 1.0;
            if dr > 0.0 {
                hi = hi.min((barrier + w0_1 - c - SLACK) / dr);
            } else if c + SLACK >= barrier + w0_1 {
                hi = hi.min(w0_1);
            }
            let dl = 1.0 - m;
            if dl > 0.0 {
                lo = lo.max((c + w0_1 - barrier + SLACK) / dl);
            } else if c + SLACK >= barrier - w0_1 {
                lo = lo.max(w0_1);
            }
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DlOptions;
    use drtopk_common::{topk_bruteforce, Distribution, WorkloadSpec, ZipfWeightWorkload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(d: usize, n: usize) -> DualLayerIndex {
        let rel = WorkloadSpec::new(Distribution::AntiCorrelated, d, n, 11 + d as u64).generate();
        DualLayerIndex::build(&rel, DlOptions::dl_plus())
    }

    #[test]
    fn repeat_queries_hit_and_stay_bit_identical() {
        for d in [2usize, 3, 5] {
            let idx = fixture(d, 400);
            let cache = ResultCache::default();
            let mut rng = StdRng::seed_from_u64(4 + d as u64);
            for q in 0..30 {
                let w = Weights::random(d, &mut rng);
                for pass in 0..2 {
                    let got = cache.topk(&idx, &w, 10);
                    let want = idx.topk(&w, 10);
                    assert_eq!(got.ids, want.ids, "d={d} q={q} pass={pass}");
                    if pass == 1 {
                        assert!(got.is_hit(), "d={d} q={q}: exact repeat must hit");
                        if d == 2 {
                            assert_eq!(got.outcome, CacheOutcome::Hit2d);
                            assert_eq!(got.cost.total(), 0, "2-d hits are free");
                        } else {
                            assert_eq!(got.outcome, CacheOutcome::HitCertified);
                            assert_eq!(got.cost.evaluated, 10, "certified hits rescore k");
                        }
                    }
                }
            }
            let s = cache.stats();
            assert!(s.hits >= 30, "d={d}: {s:?}");
        }
    }

    #[test]
    fn nearby_weights_hit_the_2d_interval_without_traversal() {
        let idx = fixture(2, 500);
        let cache = ResultCache::default();
        let w = Weights::new(vec![0.40, 0.60]).unwrap();
        assert_eq!(cache.topk(&idx, &w, 5).outcome, CacheOutcome::Miss);
        // A weight a hair away lands in the same certified interval.
        let w2 = Weights::new(vec![0.4000001, 0.5999999]).unwrap();
        let got = cache.topk(&idx, &w2, 5);
        assert_eq!(got.ids, idx.topk(&w2, 5).ids);
        assert_eq!(got.outcome, CacheOutcome::Hit2d, "{:?}", cache.stats());
    }

    #[test]
    fn sweep_never_diverges_from_bruteforce() {
        // A dense 2-d sweep crosses every interval boundary; a certified
        // hit must never survive past the point where the answer changes.
        let rel = WorkloadSpec::new(Distribution::Independent, 2, 300, 5).generate();
        let idx = DualLayerIndex::build(&rel, DlOptions::dl_plus());
        let cache = ResultCache::default();
        for k in [1usize, 4, 17] {
            for step in 1..400 {
                let w1 = step as f64 / 400.0;
                let w = Weights::new(vec![w1, 1.0 - w1]).unwrap();
                let got = cache.topk(&idx, &w, k);
                assert_eq!(got.ids, topk_bruteforce(&rel, &w, k), "k={k} w1={w1}");
            }
        }
        let s = cache.stats();
        assert!(s.hits > 0, "sweep must produce some interval hits: {s:?}");
        assert!(s.misses > 0, "sweep must cross cell boundaries: {s:?}");
    }

    #[test]
    fn quant_certificate_rejects_displacing_weights() {
        // d = 3: weights far apart land in different quant buckets, but
        // two weights in the SAME bucket with different answers must be
        // separated by the certificate, never by luck.
        let idx = fixture(3, 600);
        // One coarse bucket for everything: quant = 2 maximizes collisions.
        let cache = ResultCache::new(CacheConfig {
            quant: 2,
            ..CacheConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(99);
        for q in 0..200 {
            let w = Weights::random(3, &mut rng);
            let got = cache.topk(&idx, &w, 8);
            assert_eq!(got.ids, idx.topk(&w, 8).ids, "q={q}");
        }
        let s = cache.stats();
        assert!(
            s.cert_rejects > 0,
            "colliding bucket must exercise rejections: {s:?}"
        );
    }

    #[test]
    fn zipf_traffic_hits_across_dimensionalities() {
        for d in [2usize, 3] {
            let idx = fixture(d, 500);
            let cache = ResultCache::default();
            let workload = ZipfWeightWorkload::new(d, 8, 300, 1.0, 42).generate();
            for w in &workload {
                let got = cache.topk(&idx, w, 10);
                assert_eq!(got.ids, idx.topk(w, 10).ids);
            }
            let s = cache.stats();
            assert!(
                s.hits as f64 >= 0.8 * workload.len() as f64,
                "d={d}: zipf pool of 8 must mostly hit: {s:?}"
            );
        }
    }

    #[test]
    fn invalidation_turns_hits_back_into_misses() {
        let idx = fixture(3, 300);
        let cache = ResultCache::default();
        let w = Weights::uniform(3);
        assert_eq!(cache.topk(&idx, &w, 5).outcome, CacheOutcome::Miss);
        assert!(cache.topk(&idx, &w, 5).is_hit());
        cache.invalidate_all();
        let after = cache.topk(&idx, &w, 5);
        assert_eq!(after.outcome, CacheOutcome::Miss, "stale entry served");
        assert_eq!(after.ids, idx.topk(&w, 5).ids);
        assert!(cache.topk(&idx, &w, 5).is_hit(), "restored after refill");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn bypass_paths_and_k_variants() {
        let idx = fixture(2, 120);
        let cache = ResultCache::new(CacheConfig {
            max_k: 16,
            ..CacheConfig::default()
        });
        let w = Weights::uniform(2);
        assert_eq!(cache.topk(&idx, &w, 0).outcome, CacheOutcome::Bypass);
        assert_eq!(cache.topk(&idx, &w, 50).outcome, CacheOutcome::Bypass);
        assert_eq!(cache.topk(&idx, &w, 50).ids, idx.topk(&w, 50).ids);
        // k > n collapses to k_eff = n and still caches (fits max_k? no:
        // n = 120 > 16 — stays a bypass).
        assert_eq!(cache.topk(&idx, &w, 999).outcome, CacheOutcome::Bypass);
        // Distinct cacheable k values are distinct keys.
        for k in [1usize, 2, 7, 16] {
            assert_eq!(cache.topk(&idx, &w, k).outcome, CacheOutcome::Miss);
            let hit = cache.topk(&idx, &w, k);
            assert!(hit.is_hit(), "k={k}");
            assert_eq!(hit.ids, idx.topk(&w, k).ids, "k={k}");
        }
    }

    #[test]
    fn capacity_is_bounded_and_eviction_counted() {
        let idx = fixture(3, 400);
        let cache = ResultCache::new(CacheConfig {
            shards: 2,
            capacity: 32,
            entries_per_key: 2,
            quant: 4096,
            ..CacheConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..400 {
            let w = Weights::random(3, &mut rng);
            cache.topk(&idx, &w, 5);
        }
        assert!(
            cache.len() <= 32 + 2,
            "len {} exceeds capacity + one per-shard overshoot",
            cache.len()
        );
        assert!(cache.stats().evictions > 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn probe_never_stores() {
        let idx = fixture(2, 200);
        let cache = ResultCache::default();
        let w = Weights::uniform(2);
        assert!(cache.probe(&idx, &w, 5).is_none());
        assert!(cache.is_empty(), "probe must not populate");
        cache.topk(&idx, &w, 5);
        let hit = cache.probe(&idx, &w, 5).expect("filled entry must probe");
        assert_eq!(hit.ids, idx.topk(&w, 5).ids);
    }

    #[test]
    fn concurrent_lookups_and_stores_stay_correct() {
        let idx = fixture(3, 500);
        let cache = ResultCache::default();
        let workload = ZipfWeightWorkload::new(3, 12, 64, 1.0, 3).generate();
        let expected: Vec<Vec<TupleId>> = workload.iter().map(|w| idx.topk(w, 10).ids).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut scratch = QueryScratch::for_index(&idx);
                    for (w, want) in workload.iter().zip(&expected) {
                        let got = cache.topk_with_scratch(&idx, w, 10, &mut scratch);
                        assert_eq!(&got.ids, want);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * 64);
        assert!(s.hits > 0);
    }

    #[test]
    fn interval_2d_brackets_the_fill_weight() {
        // Two answers and a barrier, hand-checkable: lines y + w1(x-y).
        // b = (0.5, 0.2): s = 0.2 + 0.3 w1; a = (0.1, 0.5): s = 0.5 - 0.4 w1.
        // They cross at w1 = 3/7; b scores below a left of it, so the
        // answer order at the fill weight w1 = 0.2 is [b, a]. Barrier
        // B = 0.6.
        let coords = [0.5, 0.2, 0.1, 0.5];
        let (lo, hi) = interval_2d(0.2, &coords, 0.6);
        assert!(
            lo < 0.2 && 0.2 < hi,
            "interval ({lo}, {hi}) must bracket w0"
        );
        assert!(
            hi <= 3.0 / 7.0,
            "order constraint caps hi at the crossing: {hi}"
        );
        // lo comes from a's left barrier constraint:
        // (c + w0 - B) / (1 - m) = (0.5 + 0.2 - 0.6) / 1.4.
        assert!((lo - 0.1 / 1.4).abs() < 1e-9, "lo = {lo}");
        // Without a barrier the order constraint alone remains.
        let (lo_inf, hi_inf) = interval_2d(0.2, &coords, f64::INFINITY);
        assert!(lo_inf == 0.0 && (hi_inf - 3.0 / 7.0).abs() < 1e-9);
        // A barrier equal to the fill-time score produces an empty range.
        let (lo_e, hi_e) = interval_2d(0.2, &[0.1, 0.5], 0.5 - 0.4 * 0.2);
        assert!(lo_e >= hi_e, "tie at w0 must degenerate: ({lo_e}, {hi_e})");
    }
}
