//! Index construction (Algorithm 1 plus edge and zero-layer building).
//!
//! This is the optimized construction pipeline: an incremental sorted
//! skyline peel for the coarse layers, sort-merge ∀-edge generation with
//! per-dimension min/max block pruning, min-sum-pruned ∃-edge generation,
//! and scoped-thread fan-out over independent layer jobs. Every pruning
//! rule is *order-preserving*: it only skips work whose outcome is forced,
//! so the built index is bit-identical to the retained sequential
//! reference ([`DualLayerIndex::build_reference`]) at every thread count —
//! the differential suite in `tests/build_differential.rs` holds the two paths
//! to byte-equal snapshots.

use crate::index::{CoarseLayer, DualLayerIndex, NodeId};
use crate::options::{DlOptions, EdsPolicy, ZeroMode};
use crate::par::parallel_map;
use crate::profile::BuildProfile;
use crate::zero::Zero2d;
use drtopk_cluster::{cluster_min_corners, kmeans};
use drtopk_common::{dominates, Relation, TupleId};
use drtopk_geometry::csky::{convex_layers, ConvexLayer};
use drtopk_geometry::facet_is_eds;
use drtopk_skyline::{skyline_layers, skyline_layers_incremental, SkylineAlgo};
use std::time::Instant;

/// Sources per ∀-edge pruning block: for each block of the sum-sorted
/// source list the per-dimension min and max are precomputed, so whole
/// blocks are skipped (min-corner incomparable) or bulk-accepted
/// (max-corner dominated) without a single pairwise test.
const FORALL_BLOCK: usize = 64;

/// Facets per ∃-edge pruning block (same idea over facet min-corners and
/// minimum member sums).
const EXISTS_BLOCK: usize = 32;

/// Safety margin for the ∃-edge minimum-sum prune. A facet whose minimum
/// member sum is ≥ the target's sum cannot contain a dominating virtual
/// point (every convex combination's sum is ≥ the minimum member sum,
/// while domination forces a strictly smaller sum), so `facet_is_eds`
/// must return false for it — but that test computes the virtual point in
/// floating point, so the prune only fires with this much slack to stay
/// exactly equivalent even under worst-case rounding.
const EXISTS_SUM_MARGIN: f64 = 1e-7;

impl DualLayerIndex {
    /// Builds the dual-resolution layer index over `rel`.
    ///
    /// Construction follows Algorithm 1: peel skyline (coarse) layers,
    /// split each into convex-skyline (fine) sublayers, connect adjacent
    /// coarse layers with ∀-dominance edges and adjacent fine sublayers
    /// with facet-derived ∃-dominance edges, then attach the configured
    /// zero layer.
    pub fn build(rel: &Relation, opts: DlOptions) -> DualLayerIndex {
        Self::build_with_profile(rel, opts).0
    }

    /// Like [`DualLayerIndex::build`], additionally returning per-phase
    /// wall-clock and dominance-test counts (see [`BuildProfile`]).
    pub fn build_with_profile(rel: &Relation, opts: DlOptions) -> (DualLayerIndex, BuildProfile) {
        let build_start = Instant::now();
        let mut profile = BuildProfile::default();
        let n = rel.len();
        let d = rel.dims();
        let all: Vec<TupleId> = (0..n as TupleId).collect();
        let threads = if opts.parallel { opts.build_threads } else { 1 };

        // Phase 1: coarse layers (iterated skylines). The sort-based
        // algorithms peel incrementally — one sorted pass assigns every
        // tuple its layer; the nested-loop baselines keep the literal
        // peel-per-layer definition (they exist as ablation contrast).
        let t0 = Instant::now();
        let coarse = match opts.skyline_algo {
            SkylineAlgo::BSkyTree | SkylineAlgo::DivideConquer | SkylineAlgo::Sfs => {
                let (layers, tests) = skyline_layers_incremental(rel, &all, threads);
                profile.coarse_peel.dominance_tests = tests;
                layers
            }
            algo => skyline_layers(rel, &all, algo),
        };
        profile.coarse_peel.seconds = t0.elapsed().as_secs_f64();

        // Phase 2: fine sublayers (iterated convex skylines per layer).
        // Coarse layers are independent, so this parallelizes cleanly.
        let t0 = Instant::now();
        let split_one = |members: &Vec<TupleId>| -> (CoarseLayer, Vec<Vec<Vec<TupleId>>>) {
            if opts.split_fine {
                let mut peeled: Vec<ConvexLayer> = convex_layers(rel, members);
                if opts.max_fine_layers > 0 && peeled.len() > opts.max_fine_layers {
                    // Merge the tail into the last allowed sublayer.
                    let tail: Vec<TupleId> = peeled
                        .drain(opts.max_fine_layers - 1..)
                        .flat_map(|l| l.members)
                        .collect();
                    peeled.push(ConvexLayer {
                        members: tail,
                        facets: Vec::new(),
                    });
                }
                let facets = peeled.iter().map(|l| l.facets.clone()).collect();
                (
                    CoarseLayer {
                        fine: peeled.into_iter().map(|l| l.members).collect(),
                    },
                    facets,
                )
            } else {
                (
                    CoarseLayer {
                        fine: vec![members.clone()],
                    },
                    vec![Vec::new()],
                )
            }
        };
        let split: Vec<(CoarseLayer, Vec<Vec<Vec<TupleId>>>)> =
            parallel_map(&coarse, threads, &split_one);
        let mut layers: Vec<CoarseLayer> = Vec::with_capacity(coarse.len());
        let mut fine_facets: Vec<Vec<Vec<Vec<TupleId>>>> = Vec::with_capacity(coarse.len());
        for (layer, facets) in split {
            layers.push(layer);
            fine_facets.push(facets);
        }
        profile.fine_split.seconds = t0.elapsed().as_secs_f64();

        // Phase 3: ∀-dominance edges between adjacent coarse layers. Each
        // pair is independent; parallelized per pair.
        let t0 = Instant::now();
        let pairs: Vec<(Vec<TupleId>, Vec<TupleId>)> = layers
            .windows(2)
            .map(|w| (w[0].members().collect(), w[1].members().collect()))
            .collect();
        let forall_one = |(sources, targets): &(Vec<TupleId>, Vec<TupleId>)| {
            let mut edges = Vec::new();
            let tests = forall_edges_between(rel, sources, targets, &mut edges);
            (edges, tests)
        };
        let mut forall_edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (edges, tests) in parallel_map(&pairs, threads, &forall_one) {
            forall_edges.extend(edges);
            profile.forall_edges.dominance_tests += tests;
        }
        profile.forall_edges.seconds = t0.elapsed().as_secs_f64();

        // Phase 4: ∃-dominance edges between adjacent fine sublayers
        // (independent per fine pair).
        let t0 = Instant::now();
        let mut exists_edges: Vec<(NodeId, NodeId)> = Vec::new();
        if opts.split_fine {
            let fine_pairs: Vec<(usize, usize)> = layers
                .iter()
                .enumerate()
                .flat_map(|(ci, layer)| {
                    (0..layer.fine.len().saturating_sub(1)).map(move |j| (ci, j))
                })
                .collect();
            let exists_one = |&(ci, j): &(usize, usize)| {
                let mut edges = Vec::new();
                let tests = exists_edges_between(
                    rel,
                    &fine_facets[ci][j],
                    &layers[ci].fine[j + 1],
                    opts.eds_policy,
                    &mut edges,
                );
                (edges, tests)
            };
            for (edges, tests) in parallel_map(&fine_pairs, threads, &exists_one) {
                exists_edges.extend(edges);
                profile.exists_edges.dominance_tests += tests;
            }
        }
        profile.exists_edges.seconds = t0.elapsed().as_secs_f64();

        // Phase 5: zero layer (skipped for empty relations).
        let t0 = Instant::now();
        let zero = if n == 0 {
            ZeroMode::None
        } else {
            match opts.zero {
                ZeroMode::Auto => {
                    if d == 2 && opts.split_fine {
                        ZeroMode::Exact2d
                    } else {
                        ZeroMode::Clustered { clusters: 0 }
                    }
                }
                ZeroMode::Exact2d if d != 2 || !opts.split_fine => {
                    ZeroMode::Clustered { clusters: 0 }
                }
                other => other,
            }
        };
        let mut pseudo: Vec<f64> = Vec::new();
        let mut pseudo_count = 0usize;
        let mut pseudo_fine: Vec<Vec<u32>> = Vec::new();
        let mut zero2d: Option<Zero2d> = None;
        match zero {
            ZeroMode::None => {}
            ZeroMode::Exact2d => {
                zero2d = Some(Zero2d::build(rel, &layers[0].fine[0]));
            }
            ZeroMode::Clustered { clusters } => {
                // Sort so the clustering is independent of fine-sublayer
                // order: DL+ and DG+ then share identical pseudo-tuples,
                // which the Theorem-5-style cost inclusion relies on.
                let l1: Vec<TupleId> = {
                    let mut v: Vec<TupleId> = layers[0].members().collect();
                    v.sort_unstable();
                    v
                };
                let c = if clusters == 0 {
                    (l1.len() as f64).sqrt().ceil() as usize
                } else {
                    clusters
                }
                .clamp(1, l1.len());
                let clustering = kmeans(rel, &l1, c, opts.cluster_seed, 40);
                let corners = cluster_min_corners(rel, &l1, &clustering);
                pseudo_count = corners.len();
                for corner in &corners {
                    pseudo.extend_from_slice(corner);
                }
                // ∀ edges: each pseudo-tuple dominates (weakly) its cluster.
                for (pos, &cl) in clustering.assignment.iter().enumerate() {
                    forall_edges.push((n as NodeId + cl as NodeId, l1[pos] as NodeId));
                }
                if opts.split_fine {
                    // DL+: peel the pseudo-tuples into their own fine
                    // sublayers with ∃ edges, and connect the last pseudo
                    // sublayer's facets to L¹¹.
                    let prel = Relation::from_flat_unchecked(d, pseudo.clone());
                    let plocal: Vec<TupleId> = (0..pseudo_count as TupleId).collect();
                    let players = convex_layers(&prel, &plocal);
                    let to_node = |local: TupleId| -> NodeId { n as NodeId + local };
                    pseudo_fine = players.iter().map(|l| l.members.to_vec()).collect();
                    for j in 0..players.len().saturating_sub(1) {
                        let mut edges_local: Vec<(NodeId, NodeId)> = Vec::new();
                        profile.zero_layer.dominance_tests += exists_edges_between(
                            &prel,
                            &players[j].facets,
                            &players[j + 1].members,
                            opts.eds_policy,
                            &mut edges_local,
                        );
                        exists_edges.extend(
                            edges_local
                                .into_iter()
                                .map(|(s, t)| (to_node(s), to_node(t))),
                        );
                    }
                    // Boundary ∃ edges: last pseudo sublayer facets → L¹¹.
                    // EDS feasibility must be tested in one coordinate space,
                    // so build a throwaway relation holding pseudo corners
                    // followed by the L¹¹ tuples.
                    let last = players.len() - 1;
                    let l11 = &layers[0].fine[0];
                    let mut combined = pseudo.clone();
                    for &t in l11 {
                        combined.extend_from_slice(rel.tuple(t));
                    }
                    let crel = Relation::from_flat_unchecked(d, combined);
                    let facets: Vec<Vec<TupleId>> = players[last].facets.clone();
                    let ctargets: Vec<TupleId> = (0..l11.len())
                        .map(|i| (pseudo_count + i) as TupleId)
                        .collect();
                    let mut edges_local: Vec<(NodeId, NodeId)> = Vec::new();
                    profile.zero_layer.dominance_tests += exists_edges_between(
                        &crel,
                        &facets,
                        &ctargets,
                        opts.eds_policy,
                        &mut edges_local,
                    );
                    for (s, t) in edges_local {
                        let src = n as NodeId + s; // facet members are pseudo-locals
                        let dst = l11[t as usize - pseudo_count] as NodeId;
                        exists_edges.push((src, dst));
                    }
                } else {
                    pseudo_fine = vec![(0..pseudo_count as u32).collect()];
                }
            }
            ZeroMode::Auto => unreachable!("resolved above"),
        }
        profile.zero_layer.seconds = t0.elapsed().as_secs_f64();

        // Final assembly (shared with the reference build and snapshot
        // loading): traversal-order renumbering, edge arena, reverse CSRs,
        // seeds, stats, internal-order scoring columns.
        let t0 = Instant::now();
        let idx = crate::assemble::assemble(
            rel,
            opts,
            layers,
            &forall_edges,
            &exists_edges,
            pseudo,
            pseudo_count,
            pseudo_fine,
            zero2d,
        );
        profile.assemble_seconds = t0.elapsed().as_secs_f64();
        profile.total_seconds = build_start.elapsed().as_secs_f64();
        (idx, profile)
    }
}

/// Adds an edge `(s, t)` for every `s ∈ sources` dominating `t ∈ targets`;
/// returns the number of dominance tests performed.
///
/// Sources are sorted by attribute sum (dominance implies a strictly
/// smaller sum), so each target only considers the prefix of sources below
/// its own sum — found by binary search instead of a scan — and that
/// prefix is walked in [`FORALL_BLOCK`]-sized blocks with per-dimension
/// min/max summaries: a block whose min-corner fails to weakly dominate
/// the target is skipped whole, a block whose max-corner is weakly
/// dominated by the target is accepted whole (a smaller sum rules out
/// equality, so weak dominance is strict). Both rules force the outcome of
/// every test they skip, so the emitted edge sequence is exactly the
/// pairwise reference's.
fn forall_edges_between(
    rel: &Relation,
    sources: &[TupleId],
    targets: &[TupleId],
    edges: &mut Vec<(NodeId, NodeId)>,
) -> u64 {
    let d = rel.dims();
    // Collected and sorted exactly as the reference path does (same input
    // order, same sum-only comparator) so that equal-sum sources keep the
    // same relative order and edges come out in the same sequence.
    let mut by_sum: Vec<(f64, TupleId)> = sources
        .iter()
        .map(|&s| (rel.tuple(s).iter().sum::<f64>(), s))
        .collect();
    by_sum.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let blocks = by_sum.len().div_ceil(FORALL_BLOCK);
    let mut bmin = vec![f64::INFINITY; blocks * d];
    let mut bmax = vec![f64::NEG_INFINITY; blocks * d];
    for (i, &(_, s)) in by_sum.iter().enumerate() {
        let base = (i / FORALL_BLOCK) * d;
        for (k, &x) in rel.tuple(s).iter().enumerate() {
            if x < bmin[base + k] {
                bmin[base + k] = x;
            }
            if x > bmax[base + k] {
                bmax[base + k] = x;
            }
        }
    }

    let mut tests = 0u64;
    for &t in targets {
        let tv = rel.tuple(t);
        let t_sum: f64 = tv.iter().sum();
        // First source whose sum is not below the target's: sources from
        // here on can never dominate.
        let cut = by_sum.partition_point(|&(s_sum, _)| s_sum < t_sum);
        let mut i = 0;
        while i < cut {
            let b = i / FORALL_BLOCK;
            let end = ((b + 1) * FORALL_BLOCK).min(cut);
            // Block min/max summaries cover the whole block; the prefix
            // below `cut` inherits both bounds.
            let lo = &bmin[b * d..(b + 1) * d];
            if lo.iter().zip(tv).any(|(m, x)| m > x) {
                i = end;
                continue;
            }
            let hi = &bmax[b * d..(b + 1) * d];
            if hi.iter().zip(tv).all(|(m, x)| m <= x) {
                for &(_, s) in &by_sum[i..end] {
                    edges.push((s as NodeId, t as NodeId));
                }
                i = end;
                continue;
            }
            for &(_, s) in &by_sum[i..end] {
                tests += 1;
                if dominates(rel.tuple(s), tv) {
                    edges.push((s as NodeId, t as NodeId));
                }
            }
            i = end;
        }
    }
    tests
}

/// Adds ∃-dominance edges from facet members of the previous fine sublayer
/// to each covered target, under the given policy; returns the number of
/// `facet_is_eds` evaluations.
///
/// Facets are scanned in enumeration order (the `FirstFacet` policy is
/// order-sensitive) but a facet is only *tested* when its min-corner
/// weakly dominates the target and its minimum member sum is materially
/// below the target's sum (see [`EXISTS_SUM_MARGIN`]); block-level
/// summaries of both bounds skip entire facet runs. Every skipped facet is
/// one `facet_is_eds` must reject, so edges match the unpruned reference
/// exactly.
fn exists_edges_between(
    rel: &Relation,
    facets: &[Vec<TupleId>],
    targets: &[TupleId],
    policy: EdsPolicy,
    edges: &mut Vec<(NodeId, NodeId)>,
) -> u64 {
    if facets.is_empty() || targets.is_empty() {
        return 0;
    }
    let d = rel.dims();
    // Per-facet min-corner prefilter: a facet can only be an EDS of t' if
    // its corner weakly dominates t'.
    let corners: Vec<Vec<f64>> = facets
        .iter()
        .map(|f| {
            (0..d)
                .map(|i| {
                    f.iter()
                        .map(|&m| rel.tuple(m)[i])
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        })
        .collect();
    let min_sums: Vec<f64> = facets
        .iter()
        .map(|f| {
            f.iter()
                .map(|&m| rel.tuple(m).iter().sum::<f64>())
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let blocks = facets.len().div_ceil(EXISTS_BLOCK);
    let mut bcorner = vec![f64::INFINITY; blocks * d];
    let mut bsum = vec![f64::INFINITY; blocks];
    for fi in 0..facets.len() {
        let b = fi / EXISTS_BLOCK;
        for k in 0..d {
            if corners[fi][k] < bcorner[b * d + k] {
                bcorner[b * d + k] = corners[fi][k];
            }
        }
        if min_sums[fi] < bsum[b] {
            bsum[b] = min_sums[fi];
        }
    }

    let mut tests = 0u64;
    let mut members: Vec<TupleId> = Vec::new();
    for &t in targets {
        let tv = rel.tuple(t);
        let t_sum: f64 = tv.iter().sum();
        members.clear();
        let mut best: Option<(usize, f64)> = None;
        'scan: for b in 0..blocks {
            if bsum[b] >= t_sum + EXISTS_SUM_MARGIN {
                continue;
            }
            if bcorner[b * d..(b + 1) * d]
                .iter()
                .zip(tv)
                .any(|(c, x)| c > x)
            {
                continue;
            }
            let lo = b * EXISTS_BLOCK;
            let hi = ((b + 1) * EXISTS_BLOCK).min(facets.len());
            for fi in lo..hi {
                if min_sums[fi] >= t_sum + EXISTS_SUM_MARGIN {
                    continue;
                }
                if corners[fi].iter().zip(tv).any(|(c, x)| c > x) {
                    continue;
                }
                tests += 1;
                if !facet_is_eds(rel, &facets[fi], t) {
                    continue;
                }
                match policy {
                    EdsPolicy::FirstFacet => {
                        members.extend_from_slice(&facets[fi]);
                        break 'scan;
                    }
                    EdsPolicy::AllFacets => {
                        for &m in &facets[fi] {
                            if !members.contains(&m) {
                                members.push(m);
                            }
                        }
                    }
                    EdsPolicy::BestUniform => {
                        if best.is_none_or(|(_, s)| min_sums[fi] > s) {
                            best = Some((fi, min_sums[fi]));
                        }
                    }
                }
            }
        }
        if let Some((fi, _)) = best {
            members.extend_from_slice(&facets[fi]);
        }
        for &m in &members {
            edges.push((m as NodeId, t as NodeId));
        }
    }
    tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_reference::{exists_edges_reference, forall_edges_reference};
    use drtopk_common::{Distribution, Weights, WorkloadSpec};

    #[test]
    fn pruned_forall_edges_match_pairwise_reference() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            for d in [2, 3, 4] {
                let rel = WorkloadSpec::new(dist, d, 500, 13).generate();
                let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
                let layers = skyline_layers(&rel, &all, SkylineAlgo::BSkyTree);
                for w in layers.windows(2) {
                    let mut fast = Vec::new();
                    forall_edges_between(&rel, &w[0], &w[1], &mut fast);
                    let mut slow = Vec::new();
                    forall_edges_reference(&rel, &w[0], &w[1], &mut slow);
                    assert_eq!(fast, slow, "{dist:?} d={d}: edge sequences must match");
                }
            }
        }
    }

    #[test]
    fn pruned_exists_edges_match_pairwise_reference() {
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in [2, 3, 4] {
                let rel = WorkloadSpec::new(dist, d, 400, 31).generate();
                let all: Vec<TupleId> = (0..rel.len() as TupleId).collect();
                let peeled = convex_layers(&rel, &all);
                for policy in [
                    EdsPolicy::FirstFacet,
                    EdsPolicy::AllFacets,
                    EdsPolicy::BestUniform,
                ] {
                    for w in peeled.windows(2) {
                        let mut fast = Vec::new();
                        exists_edges_between(&rel, &w[0].facets, &w[1].members, policy, &mut fast);
                        let mut slow = Vec::new();
                        exists_edges_reference(
                            &rel,
                            &w[0].facets,
                            &w[1].members,
                            policy,
                            &mut slow,
                        );
                        assert_eq!(fast, slow, "{dist:?} d={d} {policy:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn exists_edges_degenerate_facets_match_reference() {
        // Hand-built 3-d fixture exercising the shapes convex peeling can
        // emit in degenerate inputs: a facet listing the same member twice,
        // facets with fewer than d vertices (segments and singletons), and
        // empty facet/target slices.
        let flat = vec![
            0.1, 0.1, 0.1, // 0: dominates most things
            0.1, 0.1, 0.1, // 1: exact duplicate of 0
            0.2, 0.6, 0.3, // 2
            0.6, 0.2, 0.4, // 3
            0.5, 0.5, 0.5, // 4: target
            0.7, 0.7, 0.7, // 5: target dominated by everything above
            0.05, 0.9, 0.9, // 6: incomparable-ish target
        ];
        let rel = Relation::from_flat_unchecked(3, flat);
        let facet_sets: Vec<Vec<Vec<TupleId>>> = vec![
            vec![vec![0, 0]],       // duplicate member in one facet
            vec![vec![0, 1]],       // duplicate *tuples* (distinct ids)
            vec![vec![2], vec![3]], // singleton facets (< d vertices)
            vec![vec![2, 3]],       // segment facet in 3-d (< d vertices)
            vec![vec![0, 2, 3], vec![1], vec![2, 2, 3]],
            vec![], // empty facet list
        ];
        let target_sets: Vec<Vec<TupleId>> = vec![vec![4, 5, 6], vec![5], vec![]];
        for facets in &facet_sets {
            for targets in &target_sets {
                for policy in [
                    EdsPolicy::FirstFacet,
                    EdsPolicy::AllFacets,
                    EdsPolicy::BestUniform,
                ] {
                    let mut fast = Vec::new();
                    exists_edges_between(&rel, facets, targets, policy, &mut fast);
                    let mut slow = Vec::new();
                    exists_edges_reference(&rel, facets, targets, policy, &mut slow);
                    assert_eq!(
                        fast, slow,
                        "facets={facets:?} targets={targets:?} {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in [2, 4] {
                let rel = WorkloadSpec::new(dist, d, 600, 21).generate();
                for base in [DlOptions::dl(), DlOptions::dl_plus(), DlOptions::dg_plus()] {
                    let seq = DualLayerIndex::build(&rel, base.clone());
                    for build_threads in [0, 3] {
                        let par = DualLayerIndex::build(
                            &rel,
                            DlOptions {
                                parallel: true,
                                build_threads,
                                ..base.clone()
                            },
                        );
                        assert_eq!(seq.stats(), par.stats(), "{dist:?} d={d}");
                        assert_eq!(
                            seq.to_snapshot(),
                            par.to_snapshot(),
                            "{dist:?} d={d} threads={build_threads}: snapshots must be identical"
                        );
                        let w = Weights::uniform(d);
                        let (a, b) = (seq.topk(&w, 25), par.topk(&w, 25));
                        assert_eq!(a.ids, b.ids);
                        assert_eq!(a.cost, b.cost, "parallel build must not change costs");
                    }
                }
            }
        }
    }

    #[test]
    fn profile_reports_phase_activity() {
        let rel = WorkloadSpec::new(Distribution::Independent, 3, 500, 9).generate();
        let (idx, profile) = DualLayerIndex::build_with_profile(&rel, DlOptions::dl_plus());
        assert!(idx.stats().coarse_layers > 1);
        assert!(profile.total_seconds > 0.0);
        assert!(
            profile.coarse_peel.dominance_tests > 0,
            "incremental peel counts"
        );
        assert!(profile.forall_edges.dominance_tests > 0);
        assert!(
            profile.exists_edges.dominance_tests > 0,
            "split_fine build runs EDS tests"
        );
        // DG builds do no EDS work at all.
        let (_, dg) = DualLayerIndex::build_with_profile(&rel, DlOptions::dg());
        assert_eq!(dg.exists_edges.dominance_tests, 0);
        assert_eq!(dg.zero_layer.dominance_tests, 0);
    }
}
