//! Index construction (Algorithm 1 plus edge and zero-layer building).

use crate::index::{CoarseLayer, Csr, DualLayerIndex, IndexStats, NodeId};
use crate::options::{DlOptions, EdsPolicy, ZeroMode};
use crate::par::parallel_map;
use crate::zero::Zero2d;
use drtopk_cluster::{cluster_min_corners, kmeans};
use drtopk_common::{dominates, Columns, Relation, TupleId};
use drtopk_geometry::csky::{convex_layers, ConvexLayer};
use drtopk_geometry::facet_is_eds;
use drtopk_skyline::skyline_layers;

impl DualLayerIndex {
    /// Builds the dual-resolution layer index over `rel`.
    ///
    /// Construction follows Algorithm 1: peel skyline (coarse) layers,
    /// split each into convex-skyline (fine) sublayers, connect adjacent
    /// coarse layers with ∀-dominance edges and adjacent fine sublayers
    /// with facet-derived ∃-dominance edges, then attach the configured
    /// zero layer.
    pub fn build(rel: &Relation, opts: DlOptions) -> DualLayerIndex {
        let n = rel.len();
        let d = rel.dims();
        let all: Vec<TupleId> = (0..n as TupleId).collect();

        // Phase 1: coarse layers (iterated skylines).
        let coarse = skyline_layers(rel, &all, opts.skyline_algo);

        // Phase 2: fine sublayers (iterated convex skylines per layer).
        // Coarse layers are independent, so this parallelizes cleanly.
        let split_one = |members: &Vec<TupleId>| -> (CoarseLayer, Vec<Vec<Vec<TupleId>>>) {
            if opts.split_fine {
                let mut peeled: Vec<ConvexLayer> = convex_layers(rel, members);
                if opts.max_fine_layers > 0 && peeled.len() > opts.max_fine_layers {
                    // Merge the tail into the last allowed sublayer.
                    let tail: Vec<TupleId> = peeled
                        .drain(opts.max_fine_layers - 1..)
                        .flat_map(|l| l.members)
                        .collect();
                    peeled.push(ConvexLayer {
                        members: tail,
                        facets: Vec::new(),
                    });
                }
                let facets = peeled.iter().map(|l| l.facets.clone()).collect();
                (
                    CoarseLayer {
                        fine: peeled.into_iter().map(|l| l.members).collect(),
                    },
                    facets,
                )
            } else {
                (
                    CoarseLayer {
                        fine: vec![members.clone()],
                    },
                    vec![Vec::new()],
                )
            }
        };
        let split: Vec<(CoarseLayer, Vec<Vec<Vec<TupleId>>>)> = if opts.parallel {
            parallel_map(&coarse, &split_one)
        } else {
            coarse.iter().map(split_one).collect()
        };
        let mut layers: Vec<CoarseLayer> = Vec::with_capacity(coarse.len());
        let mut fine_facets: Vec<Vec<Vec<Vec<TupleId>>>> = Vec::with_capacity(coarse.len());
        for (layer, facets) in split {
            layers.push(layer);
            fine_facets.push(facets);
        }

        // Phase 3: ∀-dominance edges between adjacent coarse layers. Each
        // pair is independent; parallelized per pair.
        let pairs: Vec<(Vec<TupleId>, Vec<TupleId>)> = layers
            .windows(2)
            .map(|w| (w[0].members().collect(), w[1].members().collect()))
            .collect();
        let forall_one = |(sources, targets): &(Vec<TupleId>, Vec<TupleId>)| {
            let mut edges = Vec::new();
            forall_edges_between(rel, sources, targets, &mut edges);
            edges
        };
        let mut forall_edges: Vec<(NodeId, NodeId)> = if opts.parallel {
            parallel_map(&pairs, &forall_one)
                .into_iter()
                .flatten()
                .collect()
        } else {
            pairs.iter().flat_map(forall_one).collect()
        };

        // Phase 4: ∃-dominance edges between adjacent fine sublayers
        // (independent per fine pair).
        let mut exists_edges: Vec<(NodeId, NodeId)> = Vec::new();
        if opts.split_fine {
            let fine_pairs: Vec<(usize, usize)> = layers
                .iter()
                .enumerate()
                .flat_map(|(ci, layer)| {
                    (0..layer.fine.len().saturating_sub(1)).map(move |j| (ci, j))
                })
                .collect();
            let exists_one = |&(ci, j): &(usize, usize)| {
                let mut edges = Vec::new();
                exists_edges_between(
                    rel,
                    &fine_facets[ci][j],
                    &layers[ci].fine[j + 1],
                    opts.eds_policy,
                    &mut edges,
                );
                edges
            };
            exists_edges = if opts.parallel {
                parallel_map(&fine_pairs, &exists_one)
                    .into_iter()
                    .flatten()
                    .collect()
            } else {
                fine_pairs.iter().flat_map(exists_one).collect()
            };
        }

        // Phase 5: zero layer (skipped for empty relations).
        let zero = if n == 0 {
            ZeroMode::None
        } else {
            match opts.zero {
                ZeroMode::Auto => {
                    if d == 2 && opts.split_fine {
                        ZeroMode::Exact2d
                    } else {
                        ZeroMode::Clustered { clusters: 0 }
                    }
                }
                ZeroMode::Exact2d if d != 2 || !opts.split_fine => {
                    ZeroMode::Clustered { clusters: 0 }
                }
                other => other,
            }
        };
        let mut pseudo: Vec<f64> = Vec::new();
        let mut pseudo_count = 0usize;
        let mut pseudo_fine: Vec<Vec<u32>> = Vec::new();
        let mut zero2d: Option<Zero2d> = None;
        match zero {
            ZeroMode::None => {}
            ZeroMode::Exact2d => {
                zero2d = Some(Zero2d::build(rel, &layers[0].fine[0]));
            }
            ZeroMode::Clustered { clusters } => {
                // Sort so the clustering is independent of fine-sublayer
                // order: DL+ and DG+ then share identical pseudo-tuples,
                // which the Theorem-5-style cost inclusion relies on.
                let l1: Vec<TupleId> = {
                    let mut v: Vec<TupleId> = layers[0].members().collect();
                    v.sort_unstable();
                    v
                };
                let c = if clusters == 0 {
                    (l1.len() as f64).sqrt().ceil() as usize
                } else {
                    clusters
                }
                .clamp(1, l1.len());
                let clustering = kmeans(rel, &l1, c, opts.cluster_seed, 40);
                let corners = cluster_min_corners(rel, &l1, &clustering);
                pseudo_count = corners.len();
                for corner in &corners {
                    pseudo.extend_from_slice(corner);
                }
                // ∀ edges: each pseudo-tuple dominates (weakly) its cluster.
                for (pos, &cl) in clustering.assignment.iter().enumerate() {
                    forall_edges.push((n as NodeId + cl as NodeId, l1[pos] as NodeId));
                }
                if opts.split_fine {
                    // DL+: peel the pseudo-tuples into their own fine
                    // sublayers with ∃ edges, and connect the last pseudo
                    // sublayer's facets to L¹¹.
                    let prel = Relation::from_flat_unchecked(d, pseudo.clone());
                    let plocal: Vec<TupleId> = (0..pseudo_count as TupleId).collect();
                    let players = convex_layers(&prel, &plocal);
                    let to_node = |local: TupleId| -> NodeId { n as NodeId + local };
                    pseudo_fine = players.iter().map(|l| l.members.to_vec()).collect();
                    for j in 0..players.len().saturating_sub(1) {
                        let mut edges_local: Vec<(NodeId, NodeId)> = Vec::new();
                        exists_edges_between(
                            &prel,
                            &players[j].facets,
                            &players[j + 1].members,
                            opts.eds_policy,
                            &mut edges_local,
                        );
                        exists_edges.extend(
                            edges_local
                                .into_iter()
                                .map(|(s, t)| (to_node(s), to_node(t))),
                        );
                    }
                    // Boundary ∃ edges: last pseudo sublayer facets → L¹¹.
                    // EDS feasibility must be tested in one coordinate space,
                    // so build a throwaway relation holding pseudo corners
                    // followed by the L¹¹ tuples.
                    let last = players.len() - 1;
                    let l11 = &layers[0].fine[0];
                    let mut combined = pseudo.clone();
                    for &t in l11 {
                        combined.extend_from_slice(rel.tuple(t));
                    }
                    let crel = Relation::from_flat_unchecked(d, combined);
                    let facets: Vec<Vec<TupleId>> = players[last].facets.clone();
                    let ctargets: Vec<TupleId> = (0..l11.len())
                        .map(|i| (pseudo_count + i) as TupleId)
                        .collect();
                    let mut edges_local: Vec<(NodeId, NodeId)> = Vec::new();
                    exists_edges_between(
                        &crel,
                        &facets,
                        &ctargets,
                        opts.eds_policy,
                        &mut edges_local,
                    );
                    for (s, t) in edges_local {
                        let src = n as NodeId + s; // facet members are pseudo-locals
                        let dst = l11[t as usize - pseudo_count] as NodeId;
                        exists_edges.push((src, dst));
                    }
                } else {
                    pseudo_fine = vec![(0..pseudo_count as u32).collect()];
                }
            }
            ZeroMode::Auto => unreachable!("resolved above"),
        }

        // Assemble CSRs over the unified node space.
        let total = n + pseudo_count;
        let (forall, forall_indeg) = Csr::from_edges(total, &mut forall_edges);
        let (exists, exists_indeg) = Csr::from_edges(total, &mut exists_edges);

        // Seeds: nodes free at query start. Chain members are excluded in
        // 2-d exact mode (seeded per query by weight-range lookup).
        let chain_member: Vec<bool> = {
            let mut v = vec![false; total];
            if let Some(z) = &zero2d {
                for &c in &z.chain {
                    v[c as usize] = true;
                }
            }
            v
        };
        let mut seeds: Vec<NodeId> = Vec::new();
        for node in 0..total as NodeId {
            if forall_indeg[node as usize] == 0
                && exists_indeg[node as usize] == 0
                && !chain_member[node as usize]
            {
                seeds.push(node);
            }
        }

        let stats = IndexStats {
            n,
            dims: d,
            coarse_layers: layers.len(),
            fine_layers: layers.iter().map(|l| l.fine.len()).sum(),
            forall_edges: forall.edge_count(),
            exists_edges: exists.edge_count(),
            pseudo_tuples: pseudo_count,
            seeds: seeds.len(),
            first_layer_size: layers.first().map_or(0, |l| l.len()),
            first_fine_size: layers
                .first()
                .and_then(|l| l.fine.first())
                .map_or(0, |f| f.len()),
        };

        let columns = Columns::from_relation_with_extra(rel, &pseudo);
        DualLayerIndex {
            rel: rel.clone(),
            opts,
            layers,
            forall,
            forall_indeg,
            exists,
            exists_indeg,
            pseudo,
            pseudo_count,
            pseudo_fine,
            zero2d,
            seeds,
            columns,
            stats,
        }
    }
}

/// Adds an edge `(s, t)` for every `s ∈ sources` dominating `t ∈ targets`.
///
/// Sources are pre-sorted by attribute sum: dominance implies a strictly
/// smaller sum, so each target only scans the prefix of sources whose sum
/// is below its own.
fn forall_edges_between(
    rel: &Relation,
    sources: &[TupleId],
    targets: &[TupleId],
    edges: &mut Vec<(NodeId, NodeId)>,
) {
    let mut by_sum: Vec<(f64, TupleId)> = sources
        .iter()
        .map(|&s| (rel.tuple(s).iter().sum::<f64>(), s))
        .collect();
    by_sum.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for &t in targets {
        let tv = rel.tuple(t);
        let t_sum: f64 = tv.iter().sum();
        for &(s_sum, s) in &by_sum {
            if s_sum >= t_sum {
                break;
            }
            if dominates(rel.tuple(s), tv) {
                edges.push((s as NodeId, t as NodeId));
            }
        }
    }
}

/// Adds ∃-dominance edges from facet members of the previous fine sublayer
/// to each covered target, under the given policy.
fn exists_edges_between(
    rel: &Relation,
    facets: &[Vec<TupleId>],
    targets: &[TupleId],
    policy: EdsPolicy,
    edges: &mut Vec<(NodeId, NodeId)>,
) {
    if facets.is_empty() || targets.is_empty() {
        return;
    }
    let d = rel.dims();
    // Per-facet min-corner prefilter: a facet can only be an EDS of t' if
    // its corner weakly dominates t'.
    let corners: Vec<Vec<f64>> = facets
        .iter()
        .map(|f| {
            (0..d)
                .map(|i| {
                    f.iter()
                        .map(|&m| rel.tuple(m)[i])
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        })
        .collect();
    let min_sums: Vec<f64> = facets
        .iter()
        .map(|f| {
            f.iter()
                .map(|&m| rel.tuple(m).iter().sum::<f64>())
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut members: Vec<TupleId> = Vec::new();
    for &t in targets {
        let tv = rel.tuple(t);
        members.clear();
        let mut best: Option<(usize, f64)> = None;
        for (fi, facet) in facets.iter().enumerate() {
            let corner_ok = corners[fi].iter().zip(tv).all(|(c, x)| c <= x);
            if !corner_ok || !facet_is_eds(rel, facet, t) {
                continue;
            }
            match policy {
                EdsPolicy::FirstFacet => {
                    members.extend_from_slice(facet);
                    break;
                }
                EdsPolicy::AllFacets => {
                    for &m in facet {
                        if !members.contains(&m) {
                            members.push(m);
                        }
                    }
                }
                EdsPolicy::BestUniform => {
                    if best.is_none_or(|(_, s)| min_sums[fi] > s) {
                        best = Some((fi, min_sums[fi]));
                    }
                }
            }
        }
        if let Some((fi, _)) = best {
            members.extend_from_slice(&facets[fi]);
        }
        for &m in &members {
            edges.push((m as NodeId, t as NodeId));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtopk_common::{Distribution, Weights, WorkloadSpec};

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            for d in [2, 4] {
                let rel = WorkloadSpec::new(dist, d, 600, 21).generate();
                for base in [DlOptions::dl(), DlOptions::dl_plus(), DlOptions::dg_plus()] {
                    let seq = DualLayerIndex::build(&rel, base.clone());
                    let par = DualLayerIndex::build(
                        &rel,
                        DlOptions {
                            parallel: true,
                            ..base.clone()
                        },
                    );
                    assert_eq!(seq.stats(), par.stats(), "{dist:?} d={d}");
                    let w = Weights::uniform(d);
                    let (a, b) = (seq.topk(&w, 25), par.topk(&w, 25));
                    assert_eq!(a.ids, b.ids);
                    assert_eq!(a.cost, b.cost, "parallel build must not change costs");
                }
            }
        }
    }
}
